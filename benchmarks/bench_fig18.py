"""Figure 18: range-scan I/O performance on a multi-disk array.

Claims checked (paper Section 4.3.2): tiny ranges are a wash; larger ranges
give the fpB+-Tree a significant win (paper: 1.9x at 10^4 entries, 6.2-6.9x
at 10^6-10^7); the speedup grows close to linearly with the number of
disks.
"""

from repro.bench.figures import fig18

from conftest import record


def test_fig18_range_scan_io(benchmark):
    result = benchmark.pedantic(
        lambda: fig18(
            num_keys=120_000,
            spans=(100, 2_000, 20_000),
            disk_counts=(1, 4, 10),
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    def elapsed(panel, x, index):
        return result.filter(panel=panel, x=x, index=index)[0]["elapsed_ms"]

    # Panel (a): small ranges indistinguishable, large ranges a big win.
    assert elapsed("a", 100, "fp-disk") <= elapsed("a", 100, "disk") * 1.2
    assert elapsed("a", 20_000, "disk") / elapsed("a", 20_000, "fp-disk") > 3.0

    # Panels (b)/(c): speedup grows with the number of disks.
    speedups = [
        result.filter(panel="b", x=disks, index="fp-disk")[0]["speedup"]
        for disks in (1, 4, 10)
    ]
    assert speedups[0] < speedups[1] < speedups[2]
    assert speedups[2] > 3.0
    assert speedups[0] < 1.6  # one disk: nothing to overlap
