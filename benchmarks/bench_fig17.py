"""Figure 17: search I/O performance (buffer-pool misses per search).

Claims checked (paper Section 4.3.1): disk-first fpB+-Trees read within a
few percent of the baseline's page count; cache-first reads noticeably more
pages (leaf parents living in overflow pages) — the reason the paper
recommends disk-first when I/O matters.
"""

from repro.bench.figures import fig17

from conftest import record


def test_fig17_search_io(benchmark):
    result = benchmark.pedantic(
        lambda: fig17(num_keys=150_000, searches=800, page_sizes=(4096, 16384)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    for scenario in ("bulkload", "mature"):
        for page_size in (4096, 16384):
            rows = {
                r["index"]: r["reads_per_search"]
                for r in result.filter(scenario=scenario, page_size=page_size)
            }
            # Disk-first: within a few percent of the baseline.
            assert rows["fp-disk"] <= rows["disk"] * 1.08, (scenario, page_size, rows)
            # Cache-first: measurably more reads, but bounded.
            assert rows["fp-cache"] <= rows["disk"] * 1.5, (scenario, page_size, rows)
            assert rows["fp-cache"] >= rows["disk"] * 0.95, (scenario, page_size, rows)
            # The paper's recommendation rationale: disk-first has the
            # smaller I/O impact of the two fpB+-Tree designs.
            assert rows["fp-disk"] <= rows["fp-cache"], (scenario, page_size, rows)
