#!/usr/bin/env python
"""Thin CLI over :mod:`repro.bench.determinism` for the CI smoke cells.

Usage (from the repo root, ``PYTHONPATH=src`` or the package installed)::

    python benchmarks/determinism_gate.py rerun --artifact out.json -- \
        python benchmarks/bench_serve.py --smoke --out {out}
    python benchmarks/determinism_gate.py jobs -- \
        python -m repro.bench shard --set duration_s=0.3

``rerun`` executes the command twice (each with its own ``{out}`` temp
file) and fails unless both the files and the wall-clock-normalized
stdout are byte-identical; ``jobs`` appends ``--jobs 1`` / ``--jobs 2``
and diffs stdout.  Exit status 0 on identical, 1 with the first
diverging line otherwise.
"""

import sys

from repro.bench.determinism import main

if __name__ == "__main__":
    sys.exit(main())
