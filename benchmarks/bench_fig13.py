"""Figure 13: insertion performance.

Claims checked (paper Section 4.2.2):

* panels (a)/(d): on non-full trees, fpB+-Trees beat the baseline by a large
  factor (paper: 14-20x at the full scale; several-fold when scaled down)
  because data movement happens inside one small node;
* micro-indexing performs almost as poorly as the baseline;
* panel (a) at 100%: page splits shrink the fp advantage but the fp trees
  stay ahead (paper: over 1.9x);
* the fp curves are flat from 60-90% full while the baseline's grow.
"""

from repro.bench.figures import fig13

from conftest import record


def test_fig13_insertions(benchmark):
    result = benchmark.pedantic(
        lambda: fig13(
            num_keys=60_000,
            inserts=150,
            bulkload_factors=(0.6, 0.9, 1.0),
            sizes=(30_000,),
            page_sizes=(8192, 32768),
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    # Panel (a), non-full trees: big fp wins, micro ~ baseline.
    for fill in (0.6, 0.9):
        rows = {r["index"]: r["cycles_per_insert"] for r in result.filter(panel="a", x=fill)}
        for kind in ("fp-disk", "fp-cache"):
            assert rows["disk"] / rows[kind] > 3.0, (fill, kind, rows)
        assert rows["disk"] / rows["micro"] < 1.6, rows

    # Panel (a), 100% full: page splits shrink but do not erase the win.
    rows = {r["index"]: r["cycles_per_insert"] for r in result.filter(panel="a", x=1.0)}
    assert rows["disk"] / rows["fp-disk"] > 1.1, rows

    # fp curves are flat from 60-90% while the baseline's cost grows.
    fp60 = result.filter(panel="a", x=0.6, index="fp-disk")[0]["cycles_per_insert"]
    fp90 = result.filter(panel="a", x=0.9, index="fp-disk")[0]["cycles_per_insert"]
    disk60 = result.filter(panel="a", x=0.6, index="disk")[0]["cycles_per_insert"]
    disk90 = result.filter(panel="a", x=0.9, index="disk")[0]["cycles_per_insert"]
    assert fp90 / fp60 < disk90 / disk60 * 1.2

    # Panel (d), 70% full: the baseline explodes with page size; fp does not.
    disk_small = result.filter(panel="d", x=8192, index="disk")[0]["cycles_per_insert"]
    disk_large = result.filter(panel="d", x=32768, index="disk")[0]["cycles_per_insert"]
    fp_small = result.filter(panel="d", x=8192, index="fp-disk")[0]["cycles_per_insert"]
    fp_large = result.filter(panel="d", x=32768, index="fp-disk")[0]["cycles_per_insert"]
    assert disk_large / disk_small > 1.5
    assert fp_large / fp_small < 1.8
    # The headline: large pages, non-full trees -> order-of-magnitude win.
    assert disk_large / fp_large > 6.0
