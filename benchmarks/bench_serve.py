"""Serving layer: the throughput/latency hockey-stick under open-loop load.

Claims checked on the ``serve`` sweep (offered load rising past the
disk-array service limit):

(a) below the knee the server keeps up — zero shedding and completed
    throughput within 10% of offered;
(b) beyond the knee throughput *plateaus* at the service limit (the two
    most-overloaded points differ by < 25% while offered load differs by
    >= 1.5x) while p99 latency has risen by >= 2x over the unloaded
    baseline — queueing, not service, dominates;
(c) once the admission queue bound is hit the excess is shed
    (shed count > 0 at the top load, and the overload rows stop accepting
    more than the plateau);
(d) accounting is conserved on every row (issued == completed + shed on a
    drained run) and fixed-seed runs are bit-for-bit identical.

Runs standalone too — ``python benchmarks/bench_serve.py --smoke`` does a
scaled-down pass of the same assertions (the CI serve-smoke job), and
``--out FILE`` writes a canonical JSON payload (rows + the smoke run's
latency histogram) whose bytes double as the CI determinism gate.
"""

import json
import sys

from repro.bench.serving import serve_sweep
from repro.dbms.engine import MiniDbms
from repro.serve import DbmsServer, OpenLoopLoadGenerator
from repro.workloads import OpMix

SMOKE_SCALE = dict(
    num_rows=6_000,
    offered_loads=(200, 1200, 2400),
    duration_s=0.5,
)


def check_claims(result):
    """Assert the saturation-curve claims on a serve_sweep() FigureResult."""
    rows = sorted(result.rows, key=lambda r: r["offered_ops_s"])
    assert len(rows) >= 3, "need at least 3 offered loads to see a knee"
    for row in rows:
        # Drained open-loop run: every issued request completed or was shed.
        assert row["issued"] == row["completed"] + row["shed"], row

    low, second_top, top = rows[0], rows[-2], rows[-1]
    # (a) under light load the server keeps up and sheds nothing.
    assert low["shed"] == 0, low
    assert low["throughput_ops_s"] >= 0.9 * low["offered_ops_s"], low

    # (b) overload: throughput plateaus while p99 rises.
    assert top["offered_ops_s"] >= 1.5 * second_top["offered_ops_s"]
    plateau_ratio = top["throughput_ops_s"] / second_top["throughput_ops_s"]
    assert 0.8 <= plateau_ratio <= 1.25, (second_top, top)
    assert top["throughput_ops_s"] <= 0.8 * top["offered_ops_s"], top
    assert top["p99_ms"] >= 2.0 * low["p99_ms"], (low, top)

    # (c) the admission queue bound converts the excess into sheds.
    assert top["shed"] > 0, top
    assert top["shed"] > second_top["shed"] or second_top["shed"] > 0


def smoke_histogram(seed: int = 11):
    """One deterministic overloaded run; returns its latency histogram."""
    scale = SMOKE_SCALE
    db = MiniDbms(
        num_rows=scale["num_rows"], num_disks=8, page_size=4096, seed=seed, mature=False
    )
    server = DbmsServer(
        db, max_concurrency=16, queue_depth=48, pool_frames=64, seed=seed
    )
    generator = OpenLoopLoadGenerator(
        server,
        rate_ops_s=max(scale["offered_loads"]),
        duration_s=scale["duration_s"],
        mix=OpMix(),
        seed=seed,
    )
    stats = generator.run()
    assert stats.conserved()
    return {
        "summary": stats.snapshot(),
        "latency_histogram_us": stats.latency_histogram("all").snapshot(),
    }


def payload(smoke: bool):
    result = serve_sweep(**SMOKE_SCALE) if smoke else serve_sweep()
    check_claims(result)
    return result, {
        "name": result.name,
        "smoke": smoke,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
        "histogram_run": smoke_histogram(),
    }


def test_serve_sweep(benchmark):
    from conftest import record

    result = benchmark.pedantic(serve_sweep, kwargs=SMOKE_SCALE, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows.
    assert serve_sweep(**SMOKE_SCALE).rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    out_path = None
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    result, data = payload(smoke)
    print(result.format_table())
    rerun_result, rerun_data = payload(smoke)
    assert rerun_data == data, "serving run is not deterministic"
    text = json.dumps(data, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}")
    print("all serving claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
