"""Serving layer: the throughput/latency hockey-stick under open-loop load.

Claims checked on the ``serve`` sweep (offered load rising past the
disk-array service limit):

(a) below the knee the server keeps up — zero shedding and completed
    throughput within 10% of offered;
(b) beyond the knee throughput *plateaus* at the service limit (the two
    most-overloaded points differ by < 25% while offered load differs by
    >= 1.5x) while p99 latency has risen by >= 2x over the unloaded
    baseline — queueing, not service, dominates;
(c) once the admission queue bound is hit the excess is shed
    (shed count > 0 at the top load, and the overload rows stop accepting
    more than the plateau);
(d) accounting is conserved on every row (issued == completed + shed on a
    drained run) and fixed-seed runs are bit-for-bit identical.

Claims checked on the ``serve-batch`` race (batched vs individual lookup
admission over identical arrival streams, lookup-heavy mix):

(e) batch mode completes >= 1.5x the lookup throughput of individual
    admission at every offered load — one admission token carries a whole
    batch, shared upper pages are read once, and sorted per-level
    prefetch waves land leaf reads near-sequentially;
(f) the win comes from genuine batching (batches formed, mean size > 1,
    prefetch waves issued) while individual mode forms none.

Runs standalone too — ``python benchmarks/bench_serve.py --smoke`` does a
scaled-down pass of the same assertions (the CI serve-smoke and
batch-smoke jobs), and ``--out FILE`` writes a canonical JSON payload
(sweep + race rows + the smoke run's latency histogram) whose bytes
double as the CI determinism gate.
"""

import json
import sys

from repro.bench.serving import serve_batch_race, serve_sweep
from repro.dbms.engine import MiniDbms
from repro.serve import DbmsServer, OpenLoopLoadGenerator
from repro.workloads import OpMix

SMOKE_SCALE = dict(
    num_rows=6_000,
    offered_loads=(200, 1200, 2400),
    duration_s=0.5,
)

BATCH_SMOKE_SCALE = dict(
    offered_loads=(1600,),
    duration_s=0.5,
)


def check_claims(result):
    """Assert the saturation-curve claims on a serve_sweep() FigureResult."""
    rows = sorted(result.rows, key=lambda r: r["offered_ops_s"])
    assert len(rows) >= 3, "need at least 3 offered loads to see a knee"
    for row in rows:
        # Drained open-loop run: every issued request completed or was shed.
        assert row["issued"] == row["completed"] + row["shed"], row

    low, second_top, top = rows[0], rows[-2], rows[-1]
    # (a) under light load the server keeps up and sheds nothing.
    assert low["shed"] == 0, low
    assert low["throughput_ops_s"] >= 0.9 * low["offered_ops_s"], low

    # (b) overload: throughput plateaus while p99 rises.
    assert top["offered_ops_s"] >= 1.5 * second_top["offered_ops_s"]
    plateau_ratio = top["throughput_ops_s"] / second_top["throughput_ops_s"]
    assert 0.8 <= plateau_ratio <= 1.25, (second_top, top)
    assert top["throughput_ops_s"] <= 0.8 * top["offered_ops_s"], top
    assert top["p99_ms"] >= 2.0 * low["p99_ms"], (low, top)

    # (c) the admission queue bound converts the excess into sheds.
    assert top["shed"] > 0, top
    assert top["shed"] > second_top["shed"] or second_top["shed"] > 0


def check_batch_claims(result):
    """Assert the batched-admission claims on a serve_batch_race() FigureResult."""
    by_load = {}
    for row in result.rows:
        by_load.setdefault(row["offered_ops_s"], {})[row["mode"]] = row
    assert by_load, "race produced no rows"
    for load, modes in sorted(by_load.items()):
        fifo, batch = modes["fifo"], modes["batch"]
        # (f) the modes really differ: individual admission never batches,
        # batch admission forms multi-op batches and issues prefetch waves.
        assert fifo["batches"] == 0 and fifo["prefetch_waves"] == 0, fifo
        assert batch["batches"] > 0 and batch["mean_batch_size"] > 1.0, batch
        assert batch["prefetch_waves"] > 0, batch
        # (e) the headline claim: batched execution completes >= 1.5x the
        # lookup throughput of individual admission on the same arrivals.
        assert (
            batch["lookup_throughput_ops_s"]
            >= 1.5 * fifo["lookup_throughput_ops_s"]
        ), (fifo, batch)
        assert batch["lookups_completed"] >= 1.5 * fifo["lookups_completed"], (
            fifo,
            batch,
        )


def smoke_histogram(seed: int = 11):
    """One deterministic overloaded run; returns its latency histogram."""
    scale = SMOKE_SCALE
    db = MiniDbms(
        num_rows=scale["num_rows"], num_disks=8, page_size=4096, seed=seed, mature=False
    )
    server = DbmsServer(
        db, max_concurrency=16, queue_depth=48, pool_frames=64, seed=seed
    )
    generator = OpenLoopLoadGenerator(
        server,
        rate_ops_s=max(scale["offered_loads"]),
        duration_s=scale["duration_s"],
        mix=OpMix(),
        seed=seed,
    )
    stats = generator.run()
    assert stats.conserved()
    return {
        "summary": stats.snapshot(),
        "latency_histogram_us": stats.latency_histogram("all").snapshot(),
    }


def payload(smoke: bool):
    result = serve_sweep(**SMOKE_SCALE) if smoke else serve_sweep()
    check_claims(result)
    race = serve_batch_race(**BATCH_SMOKE_SCALE) if smoke else serve_batch_race()
    check_batch_claims(race)
    return result, race, {
        "name": result.name,
        "smoke": smoke,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
        "batch_race": {
            "name": race.name,
            "columns": list(race.columns),
            "rows": race.rows,
            "notes": race.notes,
        },
        "histogram_run": smoke_histogram(),
    }


def test_serve_sweep(benchmark):
    from conftest import record

    result = benchmark.pedantic(serve_sweep, kwargs=SMOKE_SCALE, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows.
    assert serve_sweep(**SMOKE_SCALE).rows == result.rows


def test_serve_batch_race(benchmark):
    from conftest import record

    race = benchmark.pedantic(
        serve_batch_race, kwargs=BATCH_SMOKE_SCALE, rounds=1, iterations=1
    )
    record(benchmark, race)
    check_batch_claims(race)
    # Fixed seed => bit-for-bit reproducible rows.
    assert serve_batch_race(**BATCH_SMOKE_SCALE).rows == race.rows


def main(argv):
    smoke = "--smoke" in argv
    out_path = None
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    result, race, data = payload(smoke)
    print(result.format_table())
    print(race.format_table())
    for note in race.notes:
        print(f"  {note}")
    rerun_result, rerun_race, rerun_data = payload(smoke)
    assert rerun_data == data, "serving run is not deterministic"
    text = json.dumps(data, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}")
    print("all serving claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
