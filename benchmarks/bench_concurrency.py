"""Contended serving: page-level latches beat one coarse tree latch.

Claims checked on the ``concurrency`` sweep (same closed-loop write-heavy
workload on split-prone 512-byte pages, served under a coarse tree-wide
latch and under page-level optimistic reads + latch-crabbing writes, two
fixed seeds each):

(a) every cell survives with accounting conserved, zero acknowledged
    inserts lost, and a history the Wing–Gong checker accepts (a rejected
    history aborts the run and archives a replayable JSON artifact);
(b) per seed, page mode beats the coarse latch on p99 *lookup* latency
    under write load — readers stop paying for splits they never touch —
    while completing at least as many operations;
(c) the page-mode machinery demonstrably engaged: optimistic validation
    failures > 0 (the load genuinely conflicts) and the coarse cell shows
    write-latch waits (the big lock genuinely queued);
(d) fixed-seed runs are bit-for-bit identical.

Runs standalone too — ``python benchmarks/bench_concurrency.py --smoke``
does a scaled-down pass of the same assertions (the CI concurrency-smoke
job), and ``--out FILE`` writes a canonical JSON payload whose bytes
double as the CI determinism gate.
"""

import json
import sys

from repro.bench.concurrency import concurrency_sweep

SMOKE_SCALE = dict(
    num_rows=400,
    sessions=5,
    ops_per_session=18,
    seeds=(5, 13),
)


def check_claims(result):
    """Assert the concurrency claims on a concurrency_sweep() FigureResult."""
    cells = {(row["mode"], row["seed"]): row for row in result.rows}
    seeds = sorted({seed for __, seed in cells})
    assert len(cells) == 2 * len(seeds), sorted(cells)

    # (a) every cell is sound: linearizable history, nothing lost.
    for row in result.rows:
        assert row["linearizable"] == 1, row
        assert row["failed"] == 0, row

    for seed in seeds:
        coarse, page = cells[("coarse", seed)], cells[("page", seed)]
        # (b) page-level CC wins on tail lookup latency under write load.
        assert page["p99_lookup_ms"] < coarse["p99_lookup_ms"], (
            seed, coarse["p99_lookup_ms"], page["p99_lookup_ms"],
        )
        assert page["ok_ops"] >= coarse["ok_ops"], (seed, coarse["ok_ops"], page["ok_ops"])
        # (c) the machinery engaged on both sides.
        assert coarse["write_waits"] > 0, coarse
        assert page["validation_failures"] > 0, page


def payload(smoke: bool):
    result = concurrency_sweep(**SMOKE_SCALE) if smoke else concurrency_sweep()
    check_claims(result)
    return result, {
        "name": result.name,
        "smoke": smoke,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
    }


def test_concurrency_sweep(benchmark):
    from conftest import record

    result = benchmark.pedantic(
        concurrency_sweep, kwargs=SMOKE_SCALE, rounds=1, iterations=1
    )
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows.
    assert concurrency_sweep(**SMOKE_SCALE).rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    out_path = None
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    result, data = payload(smoke)
    print(result.format_table())
    rerun_result, rerun_data = payload(smoke)
    assert rerun_data == data, "concurrency run is not deterministic"
    text = json.dumps(data, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}")
    print("all concurrency claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
