"""Table 2: optimal node-width selections.

The enumeration itself is the measured operation (it runs at index-creation
time); the assertions pin the selected widths against the paper's table.
"""

from repro.bench.figures import table2
from repro.core import optimize_cache_first, optimize_disk_first

from conftest import record


def test_table2_width_selection(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    record(benchmark, result)

    by_key = {(row["page_size"], row["scheme"]): row for row in result.rows}
    # Exact matches with the paper's disk-first column.
    assert by_key[(4096, "disk-first")]["page_fanout"] == 470
    assert by_key[(8192, "disk-first")]["page_fanout"] == 961
    assert by_key[(32768, "disk-first")]["page_fanout"] == 4017
    # Exact matches with the paper's cache-first column.
    assert by_key[(4096, "cache-first")]["page_fanout"] == 497
    assert by_key[(8192, "cache-first")]["page_fanout"] == 994
    assert by_key[(32768, "cache-first")]["page_fanout"] == 4029
    # Everything selected is within the 10% cost window.
    for row in result.rows:
        assert row["cost_ratio"] <= 1.10


def test_optimizer_is_fast_enough_for_index_creation(benchmark):
    """Section 3.1.1: 'the cost of enumeration is small'."""
    benchmark(lambda: (optimize_disk_first(16384), optimize_cache_first(16384)))
