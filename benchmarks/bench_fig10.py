"""Figure 10: search performance for 100% bulkload.

Claims checked (paper Section 4.2.1): all three cache-sensitive schemes
beat the disk-optimized baseline at every page size, with speedups in the
1.1-1.8x band, and the three are "more or less similar" to one another.
"""

from repro.bench.cache_runner import build_tree
from repro.bench.figures import fig10
from repro.mem import MemorySystem
from repro.workloads import KeyWorkload

from conftest import record


def test_fig10_search_speedups(benchmark):
    result = benchmark.pedantic(
        lambda: fig10(page_sizes=(8192, 16384), sizes=(30_000, 100_000), searches=150),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    for page_size in (8192, 16384):
        for num_keys in (30_000, 100_000):
            rows = {
                r["index"]: r["cycles_per_search"]
                for r in result.filter(page_size=page_size, num_keys=num_keys)
            }
            base = rows["disk"]
            for kind in ("micro", "fp-disk", "fp-cache"):
                speedup = base / rows[kind]
                assert speedup > 1.05, (page_size, num_keys, kind, speedup)
                assert speedup < 3.0, (page_size, num_keys, kind, speedup)
            # The three cache-sensitive schemes are similar (within ~45%).
            sensitive = [rows[k] for k in ("micro", "fp-disk", "fp-cache")]
            assert max(sensitive) / min(sensitive) < 1.45


def test_fig10_search_operation(benchmark):
    """Wall-clock benchmark of the traced fpB+-Tree search itself."""
    w = KeyWorkload(30_000)
    keys, tids = w.bulkload_arrays()
    mem = MemorySystem()
    tree = build_tree("fp-disk", keys, tids, page_size=16384, mem=mem)
    picks = [int(k) for k in w.search_keys(50)]

    def run():
        for key in picks:
            tree.search(key)

    benchmark(run)
