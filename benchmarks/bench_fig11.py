"""Figure 11: optimal node-width selection quality (16KB pages).

Claim checked (paper Section 4.2.1): the optimizer's selected widths give
search performance within a few percent of the best width in the sweep —
"within 2% of the best" for disk-first, "within 5%" for cache-first.
"""

from repro.bench.figures import fig11

from conftest import record


def test_fig11_selected_widths_near_best(benchmark):
    result = benchmark.pedantic(
        lambda: fig11(num_keys=60_000, searches=150), rounds=1, iterations=1
    )
    record(benchmark, result)

    for variant, tolerance in (("disk-first", 1.10), ("cache-first", 1.12)):
        rows = result.filter(variant=variant)
        best = min(row["cycles_per_search"] for row in rows)
        selected = [row for row in rows if row["selected"]]
        assert selected, f"no selected width recorded for {variant}"
        assert selected[0]["cycles_per_search"] <= best * tolerance, (variant, selected, best)
