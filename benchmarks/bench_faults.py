"""Fault resilience: scan throughput under injected storage faults.

The repo's first robustness curve.  Claims checked: (a) under a uniform
corruption/timeout error rate, hedged reads beat retry-only recovery and
every injected corruption is caught at the buffer-pool boundary (zero
silent corruptions — row counts match the fault-free run); (b) against a
10x-latency limping disk, hedging recovers at least twice the throughput
that retry-only recovery leaves on the table; (c) fixed-seed fault
injection is bit-for-bit deterministic.

Runs standalone too — ``python benchmarks/bench_faults.py --smoke`` does a
tiny-config pass of the same assertions (the CI faults-smoke job).
"""

import sys

from repro.bench.figures import fault_resilience

SMOKE_SCALE = dict(
    num_rows=20_000,
    num_disks=8,
    error_rates=(0.0, 0.05),
    limp_factors=(10.0,),
)


def check_claims(result):
    """Assert the robustness claims on a fault_resilience() FigureResult."""

    def row(panel, x, mode):
        return result.filter(panel=panel, x=x, mode=mode)[0]

    rows = result.rows
    # Zero silent corruptions: every run returns the fault-free row count.
    counts = {r["row_count"] for r in rows}
    assert len(counts) == 1, f"row counts diverged under faults: {counts}"
    # ...and the injected corruptions were actually caught, not just absent.
    top_rate = max(r["x"] for r in rows if r["panel"] == "a")
    assert row("a", top_rate, "retry only")["checksum_failures"] > 0

    # Panel (a): hedging never loses to retry-only, and wins under faults.
    for rate in sorted({r["x"] for r in rows if r["panel"] == "a"}):
        assert row("a", rate, "hedged")["pages_per_s"] >= 0.9 * row("a", rate, "retry only")["pages_per_s"]

    # Panel (b) headline: against the worst limping disk, retry-only loses
    # at least 2x the throughput that hedged reads lose.
    clean = row("b", 1.0, "clean")["pages_per_s"]
    worst = max(r["x"] for r in rows if r["panel"] == "b")
    loss_retry = clean - row("b", worst, "retry only")["pages_per_s"]
    loss_hedge = clean - row("b", worst, "hedged")["pages_per_s"]
    assert loss_retry > 0, "limping disk cost nothing; scale the scan up"
    assert loss_retry >= 2.0 * loss_hedge, (loss_retry, loss_hedge)


def test_fault_resilience(benchmark):
    from conftest import record

    result = benchmark.pedantic(fault_resilience, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows.
    assert fault_resilience().rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    result = fault_resilience(**SMOKE_SCALE) if smoke else fault_resilience()
    print(result.format_table())
    check_claims(result)
    rerun = fault_resilience(**SMOKE_SCALE) if smoke else fault_resilience()
    assert rerun.rows == result.rows, "fault injection is not deterministic"
    print("all fault-resilience claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
