"""Chaos serving: client-side resilience pays for itself under a fault storm.

Claims checked on the ``chaos`` sweep (same seeded fault schedule —
array-wide corruption, a limping disk, a dead disk, a mid-run crash —
served to a bare client fleet and to a resilient one):

(a) both modes survive the storm with accounting conserved, the crash
    actually fired (crashes >= 1), and zero acknowledged inserts were
    lost across WAL recovery;
(b) the resilient mode completes strictly more operations *and* delivers
    strictly higher goodput than the baseline under the identical
    schedule — retries rescue transient failures the bare clients abandon;
(c) the resilience machinery demonstrably engaged: client retries > 0,
    the breaker tripped at least once and closed again (>= 3 transitions),
    and the brownout ladder stepped down at least one rung;
(d) fixed-seed runs are bit-for-bit identical, crash and all.

Runs standalone too — ``python benchmarks/bench_chaos.py --smoke`` does a
scaled-down pass of the same assertions (the CI chaos-smoke job), and
``--out FILE`` writes a canonical JSON payload whose bytes double as the
CI determinism gate.
"""

import json
import sys

from repro.bench.chaos import chaos_sweep

SMOKE_SCALE = dict(
    num_rows=3_000,
    sessions=4,
    ops_per_session=15,
    schedule_text=(
        "corrupt rate=0.25; limp disk=2 x8 @0.03s; kill disk=0 @0.1s; crash wal=8"
    ),
)


def check_claims(result):
    """Assert the resilience claims on a chaos_sweep() FigureResult."""
    rows = {row["mode"]: row for row in result.rows}
    assert set(rows) == {"baseline", "resilient"}, sorted(rows)
    base, res = rows["baseline"], rows["resilient"]

    # (a) both modes survive: conservation holds, the crash fired, and no
    # acknowledged insert was lost across recovery.
    for row in (base, res):
        assert row["conserved"] == 1, row
        assert row["crashes"] >= 1, row
        assert row["lost_inserts"] == 0, row

    # (b) resilience wins on completed work and on goodput.
    assert res["ok_ops"] > base["ok_ops"], (base["ok_ops"], res["ok_ops"])
    assert res["goodput_ops_s"] > base["goodput_ops_s"], (
        base["goodput_ops_s"], res["goodput_ops_s"],
    )

    # (c) the machinery actually engaged.
    assert base["retries"] == 0 and base["fast_fails"] == 0, base
    assert res["retries"] > 0, res
    assert res["breaker_trips"] >= 1, res
    assert res["fast_fails"] > 0, res
    assert res["brownout_level"] >= 1, res


def payload(smoke: bool):
    result = chaos_sweep(**SMOKE_SCALE) if smoke else chaos_sweep()
    check_claims(result)
    return result, {
        "name": result.name,
        "smoke": smoke,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
    }


def test_chaos_sweep(benchmark):
    from conftest import record

    result = benchmark.pedantic(chaos_sweep, kwargs=SMOKE_SCALE, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows, crash and all.
    assert chaos_sweep(**SMOKE_SCALE).rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    out_path = None
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    result, data = payload(smoke)
    print(result.format_table())
    rerun_result, rerun_data = payload(smoke)
    assert rerun_data == data, "chaos run is not deterministic"
    text = json.dumps(data, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}")
    print("all chaos claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
