"""Figure 15: range-scan cache performance.

Claims checked (paper Section 4.2.4): both fpB+-Trees dramatically beat the
disk-optimized baseline on large scans (paper: 4.2x disk-first, 3.5x
cache-first) thanks to jump-pointer prefetching of the leaf nodes.
"""

from repro.bench.figures import fig15

from conftest import record


def test_fig15_range_scan(benchmark):
    result = benchmark.pedantic(
        lambda: fig15(num_keys=100_000, scans=3), rounds=1, iterations=1
    )
    record(benchmark, result)

    rows = {r["index"]: r for r in result.rows}
    assert rows["disk"]["speedup_vs_disk"] == 1.0
    assert rows["fp-disk"]["speedup_vs_disk"] > 2.0
    assert rows["fp-cache"]["speedup_vs_disk"] > 2.0
