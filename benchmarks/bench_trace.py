"""Trace smoke: a fully-traced scan exports valid, deterministic JSON.

Claims checked: (a) every reconciliation row in the ``traced-scan``
experiment agrees — the trace recovers exactly the counters QueryStats
reports; (b) the exported Chrome-trace JSON passes schema validation, so
it loads in chrome://tracing / ui.perfetto.dev; (c) two runs from the
same seed export *byte-identical* JSON — the determinism contract of
``repro.obs``; (d) tracing is a pure observer — a traced scan and an
untraced scan of the same workload report the same simulated elapsed
time.

Runs standalone too — ``python benchmarks/bench_trace.py --smoke`` does a
tiny-config pass of the same assertions (the CI trace-smoke job).
"""

import sys

from repro.bench.figures import traced_scan
from repro.obs import validate_chrome_trace

SMOKE_SCALE = dict(num_rows=8_000, inserts=10)


def check_claims(result):
    """Assert the tracing claims on a traced_scan() FigureResult."""
    for row in result.rows:
        assert row["agree"], f"trace/stats reconciliation failed: {row}"

    trace = result.trace
    assert trace is not None, "traced-scan must attach its QueryTrace"
    payload = trace.to_json()
    errors = validate_chrome_trace(payload)
    assert not errors, f"exported trace is not valid Chrome-trace JSON: {errors}"
    assert len(trace.tracer.records) > 0 and trace.tracer.dropped == 0


def test_traced_scan(benchmark):
    from conftest import record

    result = benchmark.pedantic(traced_scan, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => byte-identical export.
    assert traced_scan().trace.to_json() == result.trace.to_json()


def main(argv):
    smoke = "--smoke" in argv
    kwargs = SMOKE_SCALE if smoke else {}
    result = traced_scan(**kwargs)
    print(result.format_table())
    check_claims(result)
    rerun = traced_scan(**kwargs)
    assert rerun.trace.to_json() == result.trace.to_json(), (
        "trace export is not byte-identical across same-seed runs"
    )
    print(result.trace.timeline())
    print("all tracing claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
