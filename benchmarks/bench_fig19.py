"""Figure 19: jump-pointer-array prefetching in the mini DBMS (DB2 stand-in).

Claims checked (paper Section 4.3.3): prefetching gives a 2.5-5x speedup
over the plain scan; performance improves with the number of I/O prefetcher
processes until it approaches the in-memory ceiling; increasing the SMP
degree helps, with the prefetched curve tracking the in-memory curve.
"""

from repro.bench.figures import fig19

from conftest import record


def test_fig19_dbms_prefetching(benchmark):
    result = benchmark.pedantic(
        lambda: fig19(
            num_rows=60_000,
            num_disks=40,
            prefetcher_counts=(1, 4, 8, 12),
            smp_degrees=(1, 3, 6, 9),
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    def value(panel, x, mode):
        return result.filter(panel=panel, x=x, mode=mode)[0]["elapsed_s"]

    # Panel (a): more prefetchers -> monotonically closer to the floor.
    plain = value("a", 8, "no prefetch")
    warm = value("a", 8, "in memory")
    few = value("a", 1, "with prefetch")
    many = value("a", 12, "with prefetch")
    assert many < few
    assert plain / many > 1.5
    assert many >= warm

    # Panel (b): SMP parallelism helps every mode.
    for mode in ("no prefetch", "with prefetch", "in memory"):
        assert value("b", 9, mode) < value("b", 1, mode)
    # The paper's headline: a 2.5-5x speedup from prefetching.  It shows up
    # at low SMP degrees, where the prefetchers supply all the parallelism.
    best = max(
        value("b", degree, "no prefetch") / value("b", degree, "with prefetch")
        for degree in (1, 3)
    )
    assert 2.5 < best < 7.0, best
    # With prefetchers, the scan tracks the in-memory curve (paper: the
    # bottom two curves nearly overlap at low SMP degrees).
    assert value("b", 1, "with prefetch") < value("b", 1, "in memory") * 1.15
