"""Figure 3(b): search-time breakdown, disk-optimized B+-Tree vs pB+-Tree.

Claims checked: the disk-optimized baseline spends far more time on data
cache stalls than the cache-optimized pB+-Tree, and its busy time carries
the buffer-pool instruction overhead.
"""

from repro.bench.figures import fig03

from conftest import record


def test_fig03_breakdown(benchmark):
    result = benchmark.pedantic(
        lambda: fig03(num_keys=80_000, searches=300), rounds=1, iterations=1
    )
    record(benchmark, result)

    disk = next(r for r in result.rows if "disk" in r["index"])
    pb = next(r for r in result.rows if r["index"] == "pB+tree")
    assert disk["total"] == 100.0
    assert pb["total"] < disk["total"]
    # Data-cache stalls are where the baseline loses (paper Section 3).
    assert disk["dcache_stalls"] > pb["dcache_stalls"] * 2
    # The baseline's busy time includes buffer-pool management overhead.
    assert disk["busy"] > pb["busy"]
