"""Sharded serving: fleet throughput scaling and boundary-placement quality.

Claims checked on the ``shard`` sweep (key-range fleets of 1/2/4 shards,
equal-width vs optimized boundaries, block-Zipf key popularity, every
fleet built from the *same per-shard hardware*):

(a) horizontal scaling — at an offered load that saturates one shard, the
    4-shard fleet completes >= 2.5x the single-shard lookup throughput
    (same offered load, same per-shard disks/tokens/pool);
(b) boundary placement matters — at 4 shards on Zipf keys, optimized cuts
    dispatch strictly fewer scan fragments than equal-width cuts, and
    split at most 0.75x as many scans across shards (the excess-fragment
    count is the scatter–gather overhead the planner minimizes);
(c) the router plane is exactly conserved on every row
    (issued == completed + shed + failed on a drained run), and the
    mid-run conservation probe saw the identity hold with requests
    genuinely in flight on the loaded cells;
(d) fixed-seed fleets are bit-for-bit reproducible: the whole payload —
    sweep rows plus a fleet-stats snapshot with merged per-shard latency
    histograms — is byte-identical across runs (the CI determinism gate).

Runs standalone too — ``python benchmarks/bench_shard.py --smoke`` does a
scaled-down pass of the same assertions (the CI shard-smoke job), and
``--out FILE`` writes the canonical JSON payload.
"""

import json
import sys

from repro.bench.sharding import shard_sweep
from repro.serve import OpenLoopLoadGenerator
from repro.shard import BoundaryPlanner, build_fleet
from repro.workloads import KeyWorkload, OpMix, sample_ops

SMOKE_SCALE = dict(
    num_rows=3_000,
    shard_counts=(1, 4),
    offered_loads=(1500, 3000),
    duration_s=0.4,
)

def _rows_at(rows, **conditions):
    return [
        row for row in rows
        if all(row[key] == value for key, value in conditions.items())
    ]


def check_claims(result):
    """Assert the sharding claims on a shard_sweep() FigureResult."""
    rows = result.rows
    assert rows, "sweep produced no rows"
    shard_counts = sorted({row["shard_count"] for row in rows})
    assert 1 in shard_counts and max(shard_counts) >= 4, shard_counts
    top_load = max(row["offered_ops_s"] for row in rows)

    # (c) router-plane conservation on every drained row; the mid-run
    # probe (asserted inside the sweep itself) saw in-flight requests.
    for row in rows:
        assert row["issued"] == row["completed"] + row["shed"] + row["failed"], row
    assert any(row["probe_in_flight"] > 0 for row in rows), rows

    # (a) the scaling claim: 4 shards vs 1 at the same (saturating)
    # offered load, same per-shard hardware, optimized boundaries.
    base = _rows_at(rows, shard_count=1, placement="equal_width", offered_ops_s=top_load)[0]
    wide = _rows_at(rows, shard_count=max(shard_counts), placement="optimized",
                    offered_ops_s=top_load)[0]
    assert base["shed"] > 0, f"single shard is not saturated: {base}"
    ratio = wide["lookup_tput_ops_s"] / base["lookup_tput_ops_s"]
    assert ratio >= 2.5, (
        f"4-shard fleet scaled only {ratio:.2f}x over one shard "
        f"(claim needs >= 2.5x): {base} vs {wide}"
    )

    # (b) boundary placement: optimized cuts split fewer Zipf scans.
    for load in sorted({row["offered_ops_s"] for row in rows}):
        ew = _rows_at(rows, shard_count=max(shard_counts),
                      placement="equal_width", offered_ops_s=load)[0]
        opt = _rows_at(rows, shard_count=max(shard_counts),
                       placement="optimized", offered_ops_s=load)[0]
        # Same seed => same op stream => same scan population: fragment
        # counts differ exactly by how many scans each placement splits.
        assert opt["scan_fragments"] < ew["scan_fragments"], (ew, opt)
        assert ew["cross_shard_scans"] > 0, ew
        assert opt["cross_shard_scans"] <= 0.75 * ew["cross_shard_scans"], (ew, opt)


def fleet_snapshot(smoke: bool, seed: int = 11):
    """One deterministic 4-shard run; returns its merged fleet snapshot.

    Exercises the pieces the sweep's row format flattens away: the
    fleet-wide ServerStats merge (router + every shard, histograms
    bucket-wise) and the per-shard conservation planes.
    """
    num_rows = SMOKE_SCALE["num_rows"] if smoke else 4_000
    mix = OpMix()
    universe = KeyWorkload(num_rows, seed=7)
    sample = sample_ops(universe.keys.size, mix, distribution="zipf", seed=3)
    plan = BoundaryPlanner(universe.keys, 4).optimized(sample)
    router = build_fleet(num_rows, plan, num_disks=4, max_concurrency=8,
                         queue_depth=32, seed=seed)
    generator = OpenLoopLoadGenerator(
        router, rate_ops_s=2000, duration_s=0.4, mix=mix, seed=seed,
        distribution="zipf",
    )
    generator.start()
    router.run()
    router.check_conservation()
    fleet = router.fleet_stats()
    assert fleet.conserved()
    assert fleet.issued == router.stats.issued + sum(
        shard.stats.issued for shard in router.shards
    )
    return {
        "plan_cuts": list(plan.cuts),
        "router": router.stats.snapshot(),
        "per_shard_issued": [shard.stats.issued for shard in router.shards],
        "fleet": fleet.snapshot(),
        "fleet_latency_histogram_us": fleet.latency_histogram("all").snapshot(),
    }


def payload(smoke: bool):
    result = shard_sweep(**SMOKE_SCALE) if smoke else shard_sweep()
    check_claims(result)
    return result, {
        "name": result.name,
        "smoke": smoke,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
        "fleet_run": fleet_snapshot(smoke),
    }


def test_shard_sweep(benchmark):
    from conftest import record

    result = benchmark.pedantic(shard_sweep, kwargs=SMOKE_SCALE, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # Fixed seed => bit-for-bit reproducible rows.
    assert shard_sweep(**SMOKE_SCALE).rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    out_path = None
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    result, data = payload(smoke)
    print(result.format_table())
    __, rerun_data = payload(smoke)
    assert rerun_data == data, "sharded serving run is not deterministic"
    text = json.dumps(data, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}")
    print("all sharding claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
