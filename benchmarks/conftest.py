"""Shared fixtures and helpers for the per-figure benchmarks.

Every ``bench_figNN.py`` regenerates (a scaled-down version of) one table or
figure from the paper, checks the qualitative claims — who wins, by roughly
what factor — and records the reproduced series in
``benchmark.extra_info`` so ``pytest benchmarks/ --benchmark-only`` output
doubles as an experiment log.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.bench.cache_runner import build_tree, measure_operations
from repro.mem import MemorySystem
from repro.workloads import KeyWorkload

#: Default scale for cache experiments (the paper uses up to 10M keys).
CACHE_KEYS = 60_000
PAGE_SIZE = 16 * 1024


@pytest.fixture(scope="session")
def workload():
    return KeyWorkload(CACHE_KEYS)


def build_measured(kind, workload, fill=1.0, page_size=PAGE_SIZE):
    """(tree, mem) pair bulkloaded at the session scale."""
    mem = MemorySystem()
    keys, tids = workload.bulkload_arrays()
    tree = build_tree(kind, keys, tids, fill=fill, page_size=page_size, mem=mem)
    return tree, mem


def search_cycles(kind, workload, fill=1.0, page_size=PAGE_SIZE, searches=150):
    tree, mem = build_measured(kind, workload, fill, page_size)
    picks = [int(k) for k in workload.search_keys(searches)]
    phase = measure_operations(mem, tree.search, picks)
    return phase.cycles_per_op


def record(benchmark, result):
    """Attach a FigureResult's rows to the benchmark report."""
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["rows"] = result.rows
