"""Figure 16: space overhead.

Claims checked (paper Section 4.3): disk-first fpB+-Trees cost less than
~9% extra space in both scenarios; cache-first is cheap after bulkload but
grows substantially (paper: up to 36%) in mature trees because node
placement decays under churn; disk-first overhead shrinks as pages grow.
"""

from repro.bench.figures import fig16

from conftest import record


def test_fig16_space_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: fig16(num_keys=60_000, page_sizes=(4096, 16384)), rounds=1, iterations=1
    )
    record(benchmark, result)

    for row in result.filter(index="fp-disk"):
        assert row["space_overhead_pct"] < 12.0, row

    bulk_cf = result.filter(scenario="bulkload", index="fp-cache")
    for row in bulk_cf:
        assert row["space_overhead_pct"] < 12.0, row

    # Mature cache-first trees pay noticeably more than bulkloaded ones.
    for page_size in (4096, 16384):
        bulk = result.filter(scenario="bulkload", page_size=page_size, index="fp-cache")[0]
        mature = result.filter(scenario="mature", page_size=page_size, index="fp-cache")[0]
        assert mature["space_overhead_pct"] > bulk["space_overhead_pct"]

    # Disk-first overhead decreases with page size after bulkload.
    small = result.filter(scenario="bulkload", page_size=4096, index="fp-disk")[0]
    large = result.filter(scenario="bulkload", page_size=16384, index="fp-disk")[0]
    assert large["space_overhead_pct"] <= small["space_overhead_pct"] + 1.0
