"""Figure 12: search performance across bulkload factors (16KB pages).

Claim checked (paper Section 4.2.1): the cache-sensitive schemes achieve
speedups between roughly 1.37 and 1.60 over the baseline at every bulkload
factor from 60% to 100% — we assert a slightly wider band for the scaled
runs.
"""

from repro.bench.figures import fig12

from conftest import record


def test_fig12_bulkload_factor_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: fig12(num_keys=60_000, searches=150, bulkload_factors=(0.6, 0.8, 1.0)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    for fill in (0.6, 0.8, 1.0):
        rows = {r["index"]: r["cycles_per_search"] for r in result.filter(fill=fill)}
        base = rows["disk"]
        for kind in ("micro", "fp-disk", "fp-cache"):
            speedup = base / rows[kind]
            assert 1.05 < speedup < 3.0, (fill, kind, speedup)
