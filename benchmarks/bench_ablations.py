"""Ablations of the design choices DESIGN.md calls out.

* Overshoot avoidance (Section 2.2): searching the end key up front saves
  wasted page reads at the end of every range.
* Two in-page node sizes (Section 3.1.1): allowing leaf and non-leaf nodes
  to differ buys page fan-out at equal search cost.
* Prefetch depth: the jump-pointer array must run far enough ahead to cover
  the disk latency; improvement saturates once the array is covered.
"""

from repro.bench.figures import (
    ablation_jpa_on_standard_btree,
    ablation_overshoot,
    ablation_prefetch_depth,
    ablation_uniform_node_size,
)
from repro.bench.multipage import ablation_multipage_nodes

from conftest import record


def test_overshoot_avoidance(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_overshoot(num_keys=60_000, span=1_000), rounds=1, iterations=1
    )
    record(benchmark, result)
    careful = result.filter(mode="avoid overshoot")[0]
    sloppy = result.filter(mode="overshooting")[0]
    assert careful["overshoot_reads"] == 0
    assert sloppy["overshoot_reads"] > 0
    assert sloppy["disk_reads"] > careful["disk_reads"]


def test_two_node_sizes_beat_uniform(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_uniform_node_size(num_keys=60_000, searches=150),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)
    two = result.filter(variant="two sizes (paper)")[0]
    uniform = result.filter(variant="uniform size")[0]
    # Same cost class, but distinct sizes pack more entries per page.
    assert two["page_fanout"] > uniform["page_fanout"]
    assert two["cycles_per_search"] < uniform["cycles_per_search"] * 1.15


def test_jump_pointer_prefetch_helps_standard_btrees(benchmark):
    """Section 2.2: the technique is not specific to fractal trees."""
    result = benchmark.pedantic(
        lambda: ablation_jpa_on_standard_btree(num_keys=80_000, span=8_000),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)
    fetched = result.filter(mode="with jump-pointer prefetch")[0]
    assert fetched["speedup"] > 1.5


def test_multipage_nodes_tradeoff(benchmark):
    """Section 2.1: wide nodes win latency, lose OLTP throughput."""
    result = benchmark.pedantic(
        lambda: ablation_multipage_nodes(
            num_keys=5_000_000, node_sizes=(1, 4), stream_counts=(1, 12),
            searches_per_stream=10,
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)
    single = {r["pages_per_node"]: r["latency_ms"] for r in result.filter(streams=1)}
    oltp = {r["pages_per_node"]: r["throughput_per_s"] for r in result.filter(streams=12)}
    assert single[4] <= single[1]  # latency: wide nodes win
    assert oltp[1] > oltp[4]  # throughput: wide nodes lose


def test_prefetch_depth_saturates(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_prefetch_depth(num_keys=60_000, span=2_000, depths=(1, 4, 16, 64)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)
    times = {row["depth"]: row["elapsed_ms"] for row in result.rows}
    assert times[16] < times[1]  # deeper prefetch hides more latency
    assert abs(times[64] - times[16]) < times[16] * 0.35  # saturation
