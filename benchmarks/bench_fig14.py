"""Figure 14: deletion performance (lazy deletions).

Claims checked (paper Section 4.2.3): fpB+-Trees beat the baseline by
3.2-20x because deletion's data movement is confined to one node; the
baseline's cost grows with bulkload factor and page size while the fp
trees' barely changes; micro-indexing tracks the baseline.
"""

from repro.bench.figures import fig14

from conftest import record


def test_fig14_deletions(benchmark):
    result = benchmark.pedantic(
        lambda: fig14(
            num_keys=60_000,
            deletions=150,
            bulkload_factors=(0.6, 1.0),
            page_sizes=(8192, 32768),
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, result)

    for fill in (0.6, 1.0):
        rows = {r["index"]: r["cycles_per_delete"] for r in result.filter(panel="a", x=fill)}
        for kind in ("fp-disk", "fp-cache"):
            assert rows["disk"] / rows[kind] > 3.0, (fill, kind, rows)
        assert rows["disk"] / rows["micro"] < 1.5, rows

    # Baseline deletion cost grows with page size; fp stays nearly flat.
    disk_small = result.filter(panel="b", x=8192, index="disk")[0]["cycles_per_delete"]
    disk_large = result.filter(panel="b", x=32768, index="disk")[0]["cycles_per_delete"]
    fp_small = result.filter(panel="b", x=8192, index="fp-disk")[0]["cycles_per_delete"]
    fp_large = result.filter(panel="b", x=32768, index="fp-disk")[0]["cycles_per_delete"]
    assert disk_large > disk_small * 1.5
    assert fp_large < fp_small * 1.5
    assert disk_large / fp_large > 5.0
