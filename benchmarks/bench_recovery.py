"""Crash consistency: WAL logging overhead and redo recovery time.

Claims checked on the ``recovery`` experiment: (a) logging the update path
costs a bounded, deterministic number of WAL appends (at least
BEGIN + one page image + COMMIT per update) and checkpointing shifts
write cost into the runtime — the tightest interval forces the most
pages; (b) after a crash at ~90% of the log, redo recovery always
succeeds, and more frequent checkpoints strictly reduce the records that
must be replayed (and never make recovery slower); (c) the whole
experiment is bit-for-bit deterministic.

Runs standalone too — ``python benchmarks/bench_recovery.py --smoke`` does
a tiny-config pass of the same assertions (the CI recovery-smoke job).
"""

import sys

from repro.bench.figures import recovery_overhead

SMOKE_SCALE = dict(
    num_keys=3_000,
    num_updates=400,
    checkpoint_intervals=(0, 25, 100),
)


def check_claims(result, num_updates=2_000):
    """Assert the crash-consistency claims on a recovery_overhead() result."""

    def row(panel, interval):
        return result.filter(panel=panel, checkpoint_interval=interval)[0]

    intervals = sorted({r["checkpoint_interval"] for r in result.rows})
    tightest = min(i for i in intervals if i)

    # (a) Logging overhead is bounded and visible: every update logs at
    # least BEGIN + one page image + COMMIT, and the log device charged
    # simulated disk-write time for them.
    for interval in intervals:
        runtime = row("a", interval)
        assert runtime["wal_appends"] >= 3 * num_updates, runtime
        assert runtime["write_us_per_op"] > 0, runtime
    # Checkpointing trades runtime writes for recovery speed: the tightest
    # interval forces the most pages and pays at least as much write time.
    never, tight = row("a", 0), row("a", tightest)
    assert tight["pages_flushed"] > never["pages_flushed"], (tight, never)
    assert tight["checkpoints"] > 0 and never["checkpoints"] == 0
    assert tight["write_us_per_op"] >= never["write_us_per_op"], (tight, never)

    # (b) Redo work shrinks with checkpoint frequency.
    replayed = {i: row("b", i)["records_replayed"] for i in intervals}
    assert replayed[tightest] < replayed[0], replayed
    assert row("b", tightest)["recovery_us"] <= row("b", 0)["recovery_us"]
    for interval in intervals:
        assert row("b", interval)["recovery_us"] > 0


def test_recovery_overhead(benchmark):
    from conftest import record

    result = benchmark.pedantic(recovery_overhead, rounds=1, iterations=1)
    record(benchmark, result)
    check_claims(result)
    # (c) Fixed workload => bit-for-bit reproducible rows.
    assert recovery_overhead().rows == result.rows


def main(argv):
    smoke = "--smoke" in argv
    kwargs = SMOKE_SCALE if smoke else {}
    num_updates = kwargs.get("num_updates", 2_000)
    result = recovery_overhead(**kwargs)
    print(result.format_table())
    check_claims(result, num_updates=num_updates)
    rerun = recovery_overhead(**kwargs)
    assert rerun.rows == result.rows, "crash recovery is not deterministic"
    print("all crash-consistency claims hold" + (" (smoke scale)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
