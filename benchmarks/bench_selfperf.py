"""Simulator self-performance: batched trace engine vs. the frozen baseline.

Races the two memory-trace engines on the *same* recorded search workload:

1. Build a disk-first fpB+-Tree and record every trace op a batch of
   searches produces (via :class:`repro.btree.trace.RecordingTracer`).
2. Compile the recorded ops into per-engine call lists, each using the
   engine's native entry points — the batched engine gets one
   ``probe_run``/``read_run``/``prefetch_run`` call per op, the frozen
   pre-change engine (:mod:`repro.mem.legacy`) gets the old tracer's
   scalar expansion (``read`` + ``probe_penalty`` per probe).  Compiling
   to bound methods up front keeps dispatch overhead out of the race.
3. Time several interleaved repetitions of each list with GC paused and
   take the per-engine minimum (the least-interference estimate on a
   shared machine).
4. Assert golden equivalence on the raced trace — both engines must end
   with field-identical MemoryStats and clocks — then write both
   wall-clock numbers, the speedup, and throughput (simulated accesses/sec
   and trace ops/sec) to ``BENCH_selfperf.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_selfperf.py [--smoke] [--out FILE]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time
from collections import deque
from dataclasses import fields

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.btree.context import TreeEnvironment
from repro.btree.trace import RecordingTracer
from repro.core.disk_first import DiskFirstFpTree
from repro.mem.hierarchy import MemorySystem
from repro.mem.legacy import LegacyMemorySystem
from repro.mem.stats import MemoryStats

#: Default workload: the paper's search experiment at the 32 KB page point
#: (fig10's geometry), scaled to ~64k trace ops.
DEFAULT = dict(page_size=32_768, num_keys=100_000, searches=2_000, reps=7)
SMOKE = dict(page_size=32_768, num_keys=10_000, searches=200, reps=2)
KEY_SPACE = 10_000_000
SEED = 42


def record_search_ops(page_size: int, num_keys: int, searches: int) -> list[tuple]:
    """Record the trace-op stream of a search batch on a bulkloaded tree."""
    rng = random.Random(SEED)
    keys = rng.sample(range(KEY_SPACE), num_keys)
    mem = MemorySystem()
    env = TreeEnvironment(mem=mem, page_size=page_size)
    tree = DiskFirstFpTree(env=env)
    recorder = RecordingTracer(mem)
    env.tracer = recorder
    tree.tracer = recorder  # trees cache the tracer at construction
    for key in sorted(keys):
        tree.insert(key, key)
    recorder.ops.clear()  # keep only the search phase
    mem.clear_caches()
    for key in rng.sample(keys, searches):
        tree.search(key)
    return recorder.ops


def compile_batched(mem: MemorySystem, ops: list[tuple]) -> list[tuple]:
    """One bound batched entry point per recorded op."""
    compiled = []
    for op in ops:
        kind = op[0]
        if kind == "probe":
            compiled.append((mem.probe_run, (op[1], op[2])))
        elif kind == "read":
            compiled.append((mem.read_run, (op[1], op[2])))
        elif kind == "prefetch":
            compiled.append((mem.prefetch_run, (op[1], op[2])))
        elif kind == "write":
            compiled.append((mem.write_run, (op[1], op[2])))
        elif kind == "busy":
            compiled.append((mem.busy, (op[1],)))
        elif kind == "visit_node":
            compiled.append((mem.busy, (mem.cpu.node_visit,)))
        elif kind == "call_overhead":
            compiled.append((mem.busy, (mem.cpu.function_call,)))
        else:
            raise ValueError(f"unhandled trace op {kind!r}")
    return compiled


def compile_legacy(mem: LegacyMemorySystem, ops: list[tuple]) -> list[tuple]:
    """The pre-change tracer's scalar expansion of each recorded op."""
    compiled = []
    for op in ops:
        kind = op[0]
        if kind == "probe":
            compiled.append((mem.read, (op[1], op[2])))
            compiled.append((mem.probe_penalty, ()))
        elif kind == "read":
            compiled.append((mem.read, (op[1], op[2])))
        elif kind == "prefetch":
            compiled.append((mem.prefetch, (op[1], op[2])))
        elif kind == "write":
            compiled.append((mem.write, (op[1], op[2])))
        elif kind == "busy":
            compiled.append((mem.busy, (op[1],)))
        elif kind == "visit_node":
            compiled.append((mem.busy, (mem.cpu.node_visit,)))
        elif kind == "call_overhead":
            compiled.append((mem.busy, (mem.cpu.function_call,)))
        else:
            raise ValueError(f"unhandled trace op {kind!r}")
    return compiled


def final_state(mem) -> dict:
    """Every MemoryStats field plus the clock — the equivalence fingerprint."""
    state = {
        f.name: getattr(mem.stats, f.name)
        for f in fields(MemoryStats)
        if f.name != "extra"
    }
    state["now"] = mem.now
    return state


def timed_replay(make_engine, compiler, ops: list[tuple]):
    """One timed replay on a fresh engine (GC paused during the loop)."""
    mem = make_engine()
    compiled = compiler(mem, ops)
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    # deque(genexp, maxlen=0) drives the calls from C — the cheapest
    # per-entry dispatch available, so the measurement is dominated by the
    # engines rather than the driver loop.  Both engines use the same loop.
    deque((fn(*fn_args) for fn, fn_args in compiled), maxlen=0)
    elapsed = time.perf_counter() - start
    gc.enable()
    return elapsed, mem


def race(ops: list[tuple], reps: int) -> dict:
    """Interleaved min-of-reps race; returns the result record."""
    # Warm-up (bytecode caches, allocator) — untimed.
    timed_replay(LegacyMemorySystem, compile_legacy, ops)
    timed_replay(MemorySystem, compile_batched, ops)
    best_legacy = best_batched = None
    for __ in range(reps):
        t_legacy, legacy_mem = timed_replay(LegacyMemorySystem, compile_legacy, ops)
        t_batched, batched_mem = timed_replay(MemorySystem, compile_batched, ops)
        if best_legacy is None or t_legacy < best_legacy:
            best_legacy = t_legacy
        if best_batched is None or t_batched < best_batched:
            best_batched = t_batched
    legacy_state = final_state(legacy_mem)
    batched_state = final_state(batched_mem)
    if legacy_state != batched_state:
        diffs = {
            key: (legacy_state[key], batched_state[key])
            for key in legacy_state
            if legacy_state[key] != batched_state[key]
        }
        raise AssertionError(f"engines diverged on the raced trace: {diffs}")
    accesses = batched_state["accesses"]
    return {
        "legacy_wall_s": round(best_legacy, 6),
        "batched_wall_s": round(best_batched, 6),
        "speedup": round(best_legacy / best_batched, 3),
        "trace_ops": len(ops),
        "simulated_accesses": accesses,
        "legacy_accesses_per_s": round(accesses / best_legacy),
        "batched_accesses_per_s": round(accesses / best_batched),
        "legacy_ops_per_s": round(len(ops) / best_legacy),
        "batched_ops_per_s": round(len(ops) / best_batched),
        "stats_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload + 2 reps (CI wiring check, not a measurement)",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed repetitions per engine")
    parser.add_argument("--out", default="BENCH_selfperf.json", help="result file")
    args = parser.parse_args(argv)

    params = dict(SMOKE if args.smoke else DEFAULT)
    if args.reps is not None:
        params["reps"] = args.reps

    print(
        f"recording search workload: page_size={params['page_size']} "
        f"num_keys={params['num_keys']} searches={params['searches']}"
    )
    ops = record_search_ops(params["page_size"], params["num_keys"], params["searches"])
    print(f"recorded {len(ops)} trace ops; racing {params['reps']} reps per engine")
    result = race(ops, params["reps"])
    result["workload"] = {
        "tree": "fp-disk",
        "page_size": params["page_size"],
        "num_keys": params["num_keys"],
        "searches": params["searches"],
        "key_space": KEY_SPACE,
        "seed": SEED,
        "reps": params["reps"],
        "smoke": bool(args.smoke),
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"legacy {result['legacy_wall_s'] * 1000:.1f} ms  "
        f"batched {result['batched_wall_s'] * 1000:.1f} ms  "
        f"speedup {result['speedup']:.2f}x  (stats identical)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
