"""Simulator self-performance: batched trace engine vs. the frozen baseline.

Races the two memory-trace engines on the *same* recorded search workload:

1. Build a disk-first fpB+-Tree and record every trace op a batch of
   searches produces (via :class:`repro.btree.trace.RecordingTracer`).
2. Compile the recorded ops into per-engine call lists, each using the
   engine's native entry points — the batched engine gets one
   ``probe_run``/``read_run``/``prefetch_run`` call per op, the frozen
   pre-change engine (:mod:`repro.mem.legacy`) gets the old tracer's
   scalar expansion (``read`` + ``probe_penalty`` per probe).  Compiling
   to bound methods up front keeps dispatch overhead out of the race.
3. Time several interleaved repetitions of each list with GC paused and
   take the per-engine minimum (the least-interference estimate on a
   shared machine).
4. Assert golden equivalence on the raced trace — both engines must end
   with field-identical MemoryStats and clocks — then write both
   wall-clock numbers, the speedup, and throughput (simulated accesses/sec
   and trace ops/sec) to ``BENCH_selfperf.json``.

A second race covers the serving tree's batched in-page search: the
vectorized ``route_batch_in_page``/``search_leaf_page_batch`` helpers vs
the scalar ``_route_in_page``/``_search_leaf_page`` walks, over every
page of a built MiniDbms index and a mixed hit/miss probe batch.  Results
are asserted identical before timing; the record lands under
``inpage_route`` in the same JSON file.

Usage::

    PYTHONPATH=src python benchmarks/bench_selfperf.py [--smoke] [--out FILE]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time
from collections import deque
from dataclasses import fields

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.btree.batch import (
    page_separator_arrays,
    route_batch_in_page,
    search_leaf_page_batch,
)
from repro.btree.cc import _route_in_page, _search_leaf_page
from repro.btree.context import TreeEnvironment
from repro.btree.trace import RecordingTracer
from repro.core.disk_first import DiskFirstFpTree
from repro.mem.hierarchy import MemorySystem
from repro.dbms.engine import MiniDbms
from repro.mem.legacy import LegacyMemorySystem
from repro.mem.stats import MemoryStats

#: Default workload: the paper's search experiment at the 32 KB page point
#: (fig10's geometry), scaled to ~64k trace ops.
DEFAULT = dict(page_size=32_768, num_keys=100_000, searches=2_000, reps=7)
SMOKE = dict(page_size=32_768, num_keys=10_000, searches=200, reps=2)
KEY_SPACE = 10_000_000
SEED = 42

#: In-page routing race: every index page of a built serving tree, probed
#: with a sorted mixed hit/miss batch (the level-wise executor's unit of
#: work).
INPAGE_DEFAULT = dict(num_rows=8_000, page_size=4096, probes=1_000, reps=5)
INPAGE_SMOKE = dict(num_rows=2_000, page_size=1024, probes=200, reps=2)


def record_search_ops(page_size: int, num_keys: int, searches: int) -> list[tuple]:
    """Record the trace-op stream of a search batch on a bulkloaded tree."""
    rng = random.Random(SEED)
    keys = rng.sample(range(KEY_SPACE), num_keys)
    mem = MemorySystem()
    env = TreeEnvironment(mem=mem, page_size=page_size)
    tree = DiskFirstFpTree(env=env)
    recorder = RecordingTracer(mem)
    env.tracer = recorder
    tree.tracer = recorder  # trees cache the tracer at construction
    for key in sorted(keys):
        tree.insert(key, key)
    recorder.ops.clear()  # keep only the search phase
    mem.clear_caches()
    for key in rng.sample(keys, searches):
        tree.search(key)
    return recorder.ops


def compile_batched(mem: MemorySystem, ops: list[tuple]) -> list[tuple]:
    """One bound batched entry point per recorded op."""
    compiled = []
    for op in ops:
        kind = op[0]
        if kind == "probe":
            compiled.append((mem.probe_run, (op[1], op[2])))
        elif kind == "read":
            compiled.append((mem.read_run, (op[1], op[2])))
        elif kind == "prefetch":
            compiled.append((mem.prefetch_run, (op[1], op[2])))
        elif kind == "write":
            compiled.append((mem.write_run, (op[1], op[2])))
        elif kind == "busy":
            compiled.append((mem.busy, (op[1],)))
        elif kind == "visit_node":
            compiled.append((mem.busy, (mem.cpu.node_visit,)))
        elif kind == "call_overhead":
            compiled.append((mem.busy, (mem.cpu.function_call,)))
        else:
            raise ValueError(f"unhandled trace op {kind!r}")
    return compiled


def compile_legacy(mem: LegacyMemorySystem, ops: list[tuple]) -> list[tuple]:
    """The pre-change tracer's scalar expansion of each recorded op."""
    compiled = []
    for op in ops:
        kind = op[0]
        if kind == "probe":
            compiled.append((mem.read, (op[1], op[2])))
            compiled.append((mem.probe_penalty, ()))
        elif kind == "read":
            compiled.append((mem.read, (op[1], op[2])))
        elif kind == "prefetch":
            compiled.append((mem.prefetch, (op[1], op[2])))
        elif kind == "write":
            compiled.append((mem.write, (op[1], op[2])))
        elif kind == "busy":
            compiled.append((mem.busy, (op[1],)))
        elif kind == "visit_node":
            compiled.append((mem.busy, (mem.cpu.node_visit,)))
        elif kind == "call_overhead":
            compiled.append((mem.busy, (mem.cpu.function_call,)))
        else:
            raise ValueError(f"unhandled trace op {kind!r}")
    return compiled


def final_state(mem) -> dict:
    """Every MemoryStats field plus the clock — the equivalence fingerprint."""
    state = {
        f.name: getattr(mem.stats, f.name)
        for f in fields(MemoryStats)
        if f.name != "extra"
    }
    state["now"] = mem.now
    return state


def timed_replay(make_engine, compiler, ops: list[tuple]):
    """One timed replay on a fresh engine (GC paused during the loop)."""
    mem = make_engine()
    compiled = compiler(mem, ops)
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    # deque(genexp, maxlen=0) drives the calls from C — the cheapest
    # per-entry dispatch available, so the measurement is dominated by the
    # engines rather than the driver loop.  Both engines use the same loop.
    deque((fn(*fn_args) for fn, fn_args in compiled), maxlen=0)
    elapsed = time.perf_counter() - start
    gc.enable()
    return elapsed, mem


def race(ops: list[tuple], reps: int) -> dict:
    """Interleaved min-of-reps race; returns the result record."""
    # Warm-up (bytecode caches, allocator) — untimed.
    timed_replay(LegacyMemorySystem, compile_legacy, ops)
    timed_replay(MemorySystem, compile_batched, ops)
    best_legacy = best_batched = None
    for __ in range(reps):
        t_legacy, legacy_mem = timed_replay(LegacyMemorySystem, compile_legacy, ops)
        t_batched, batched_mem = timed_replay(MemorySystem, compile_batched, ops)
        if best_legacy is None or t_legacy < best_legacy:
            best_legacy = t_legacy
        if best_batched is None or t_batched < best_batched:
            best_batched = t_batched
    legacy_state = final_state(legacy_mem)
    batched_state = final_state(batched_mem)
    if legacy_state != batched_state:
        diffs = {
            key: (legacy_state[key], batched_state[key])
            for key in legacy_state
            if legacy_state[key] != batched_state[key]
        }
        raise AssertionError(f"engines diverged on the raced trace: {diffs}")
    accesses = batched_state["accesses"]
    return {
        "legacy_wall_s": round(best_legacy, 6),
        "batched_wall_s": round(best_batched, 6),
        "speedup": round(best_legacy / best_batched, 3),
        "trace_ops": len(ops),
        "simulated_accesses": accesses,
        "legacy_accesses_per_s": round(accesses / best_legacy),
        "batched_accesses_per_s": round(accesses / best_batched),
        "legacy_ops_per_s": round(len(ops) / best_legacy),
        "batched_ops_per_s": round(len(ops) / best_batched),
        "stats_identical": True,
    }


def build_inpage_workload(num_rows: int, page_size: int, probes: int):
    """Every index page of a built MiniDbms plus a sorted probe batch."""
    db = MiniDbms(
        num_rows=num_rows, num_disks=4, page_size=page_size, seed=SEED, mature=False
    )
    tree = db.index
    interior, leaves = [], []
    frontier = [tree.root_pid]
    while frontier:
        next_frontier = []
        for pid in frontier:
            page = tree.store.page(pid)
            if page.level > 0:
                interior.append(page)
                __, ptrs = page_separator_arrays(page)
                next_frontier.extend(int(p) for p in ptrs)
            else:
                leaves.append(page)
        frontier = next_frontier
    rng = random.Random(SEED)
    keys = [int(k) for k in db._workload.keys]
    # Hits, near-miss gap keys, and out-of-range probes in one sorted batch.
    pool = keys + [k + 1 for k in keys] + [keys[0] - 3, keys[-1] + 9]
    batch = np.asarray(sorted(rng.choice(pool) for __ in range(probes)), dtype=np.int64)
    return interior, leaves, batch


def inpage_race(interior: list, leaves: list, batch: np.ndarray, reps: int) -> dict:
    """Vectorized vs scalar in-page routing over the same pages and probes."""
    keys_list = [int(k) for k in batch]

    def scalar_pass() -> list[list[int]]:
        out = []
        for page in interior:
            out.append([_route_in_page(page, key) for key in keys_list])
        for page in leaves:
            out.append([_search_leaf_page(page, key) or 0 for key in keys_list])
        return out

    def vector_pass() -> list[list[int]]:
        out = []
        for page in interior:
            out.append([int(p) for p in route_batch_in_page(page, batch)])
        for page in leaves:
            out.append([int(t) for t in search_leaf_page_batch(page, batch)])
        return out

    if scalar_pass() != vector_pass():
        raise AssertionError("vectorized in-page routing diverged from the scalar walk")

    def timed(fn) -> float:
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        gc.enable()
        return elapsed

    timed(scalar_pass)  # warm-up, untimed
    timed(vector_pass)
    best_scalar = best_vector = None
    for __ in range(reps):
        t_scalar = timed(scalar_pass)
        t_vector = timed(vector_pass)
        if best_scalar is None or t_scalar < best_scalar:
            best_scalar = t_scalar
        if best_vector is None or t_vector < best_vector:
            best_vector = t_vector
    routings = (len(interior) + len(leaves)) * len(keys_list)
    return {
        "scalar_wall_s": round(best_scalar, 6),
        "vectorized_wall_s": round(best_vector, 6),
        "speedup": round(best_scalar / best_vector, 3),
        "interior_pages": len(interior),
        "leaf_pages": len(leaves),
        "probe_keys": len(keys_list),
        "routings": routings,
        "scalar_routings_per_s": round(routings / best_scalar),
        "vectorized_routings_per_s": round(routings / best_vector),
        "results_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload + 2 reps (CI wiring check, not a measurement)",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed repetitions per engine")
    parser.add_argument("--out", default="BENCH_selfperf.json", help="result file")
    args = parser.parse_args(argv)

    params = dict(SMOKE if args.smoke else DEFAULT)
    if args.reps is not None:
        params["reps"] = args.reps

    print(
        f"recording search workload: page_size={params['page_size']} "
        f"num_keys={params['num_keys']} searches={params['searches']}"
    )
    ops = record_search_ops(params["page_size"], params["num_keys"], params["searches"])
    print(f"recorded {len(ops)} trace ops; racing {params['reps']} reps per engine")
    result = race(ops, params["reps"])
    inpage_params = dict(INPAGE_SMOKE if args.smoke else INPAGE_DEFAULT)
    interior, leaves, batch = build_inpage_workload(
        inpage_params["num_rows"], inpage_params["page_size"], inpage_params["probes"]
    )
    print(
        f"in-page routing race: {len(interior)} interior + {len(leaves)} leaf "
        f"pages x {len(batch)} probes, {inpage_params['reps']} reps"
    )
    result["inpage_route"] = inpage_race(interior, leaves, batch, inpage_params["reps"])
    result["inpage_route"]["workload"] = dict(inpage_params, seed=SEED)
    result["workload"] = {
        "tree": "fp-disk",
        "page_size": params["page_size"],
        "num_keys": params["num_keys"],
        "searches": params["searches"],
        "key_space": KEY_SPACE,
        "seed": SEED,
        "reps": params["reps"],
        "smoke": bool(args.smoke),
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"legacy {result['legacy_wall_s'] * 1000:.1f} ms  "
        f"batched {result['batched_wall_s'] * 1000:.1f} ms  "
        f"speedup {result['speedup']:.2f}x  (stats identical)"
    )
    inpage = result["inpage_route"]
    print(
        f"in-page routing: scalar {inpage['scalar_wall_s'] * 1000:.1f} ms  "
        f"vectorized {inpage['vectorized_wall_s'] * 1000:.1f} ms  "
        f"speedup {inpage['speedup']:.2f}x  (results identical)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
