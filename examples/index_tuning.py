#!/usr/bin/env python
"""Node-size tuning: regenerate the paper's Table 2 and validate it.

Shows how the analytic optimizer (Section 3.1.1) picks in-page node widths
for any page size / memory system, then *measures* a width sweep on the
cache simulator to confirm the selected width is near-optimal — the
experiment behind the paper's Figure 11.

Run:  python examples/index_tuning.py [--page-size 16384]
"""

import argparse

from repro import DiskFirstFpTree, KeyWorkload, MemorySystem, TreeEnvironment
from repro.bench.figures import _disk_first_widths_for_nonleaf
from repro.core import optimize_cache_first, optimize_disk_first, optimize_micro_index


def print_table2():
    print("Optimal width selections (4-byte keys, T1=150, Tnext=10) — paper Table 2:")
    print(f"{'page':>7}  {'disk-first (nonleaf/leaf)':>26}  {'fanout':>6}  "
          f"{'cache-first':>11}  {'fanout':>6}  {'micro':>6}  {'fanout':>6}")
    for page_size in (4096, 8192, 16384, 32768):
        d = optimize_disk_first(page_size)
        c = optimize_cache_first(page_size)
        m = optimize_micro_index(page_size)
        print(
            f"{page_size:>7}  {f'{d.nonleaf_bytes}B / {d.leaf_bytes}B':>26}  {d.page_fanout:>6}  "
            f"{f'{c.node_bytes}B':>11}  {c.page_fanout:>6}  {f'{m.subarray_bytes}B':>6}  {m.page_fanout:>6}"
        )


def sweep_widths(page_size, num_keys=150_000, searches=300):
    print(f"\nMeasured width sweep at {page_size // 1024}KB pages "
          f"({num_keys:,} keys, {searches} searches) — paper Figure 11(a):")
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    picks = [int(k) for k in workload.search_keys(searches)]
    selected = optimize_disk_first(page_size)
    for nonleaf_bytes in (64, 128, 192, 256, 320, 384):
        widths = _disk_first_widths_for_nonleaf(page_size, nonleaf_bytes)
        mem = MemorySystem()
        tree = DiskFirstFpTree(TreeEnvironment(page_size=page_size, mem=mem), widths=widths)
        with mem.paused():
            tree.bulkload(keys, tids)
        mem.clear_caches()
        with mem.measure() as phase:
            for key in picks:
                tree.search(key)
        marker = "  <- selected by the optimizer" if nonleaf_bytes == selected.nonleaf_bytes else ""
        print(
            f"  nonleaf {nonleaf_bytes:>4}B  leaf {widths.leaf_bytes:>4}B  "
            f"fanout {widths.page_fanout:>5}  "
            f"{phase.total_cycles / searches:8,.0f} cycles/search{marker}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--page-size", type=int, default=16 * 1024)
    args = parser.parse_args()
    print_table2()
    sweep_widths(args.page_size)


if __name__ == "__main__":
    main()
