#!/usr/bin/env python
"""Range-scan I/O with jump-pointer-array prefetching (paper Figure 18).

Builds a *mature* disk-first fpB+-Tree (bulkload 90% + insert 10%, so leaf
pages are scattered on disk), then scans a large key range over a simulated
disk array, with and without prefetching, for 1..10 disks.  The prefetched
scan overlaps seeks across spindles and its speedup grows with the number
of disks — the paper's 12-disk SGI Origin result in miniature.

Run:  python examples/multidisk_scan.py
"""

from repro import DiskFirstFpTree, KeyWorkload, TreeEnvironment, build_mature_tree
from repro.bench.io_scan import leaf_pids_for_span
from repro.bench.io_scan import timed_range_scan
from repro.storage import DiskParameters

NUM_KEYS = 150_000
SPAN = 40_000


def main():
    print(f"Building a mature fpB+-Tree with {NUM_KEYS:,} keys ...")
    tree = DiskFirstFpTree(TreeEnvironment(page_size=16 * 1024, buffer_pages=16))
    workload = KeyWorkload(NUM_KEYS, seed=5)
    build_mature_tree(tree, workload, bulk_fraction=0.9)
    print(f"  {tree.num_pages} pages, {tree.page_splits} page splits during maturing")

    start_key, end_key = workload.range_scans(1, SPAN)[0]
    pids, __ = leaf_pids_for_span(tree, start_key, end_key)
    scattered = DiskParameters(sequential_window_blocks=0)
    print(f"Scanning {SPAN:,} entries across {len(pids)} leaf pages.\n")

    print(f"{'disks':>5}  {'plain scan':>12}  {'prefetched':>12}  {'speedup':>7}")
    for disks in (1, 2, 4, 6, 8, 10):
        plain = timed_range_scan(
            tree.store, pids, start_path=tree.page_path(start_key),
            num_disks=disks, use_prefetch=False, disk=scattered,
        )
        fetched = timed_range_scan(
            tree.store, pids,
            start_path=tree.page_path(start_key), end_path=tree.page_path(end_key),
            num_disks=disks, use_prefetch=True, prefetch_depth=3 * disks, disk=scattered,
        )
        print(
            f"{disks:>5}  {plain.elapsed_ms:>10.1f}ms  {fetched.elapsed_ms:>10.1f}ms  "
            f"{plain.elapsed_us / fetched.elapsed_us:>6.2f}x"
        )
    print("\nThe jump-pointer array turns disk latency into disk parallelism.")


if __name__ == "__main__":
    main()
