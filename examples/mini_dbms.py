#!/usr/bin/env python
"""The DB2 experiment in miniature (paper Figure 19 / Section 4.3.3).

Creates a mini database — a heap table with the paper's row shape
(int, int, char(20), int, char(512)) and a disk-first fpB+-Tree index —
and answers ``SELECT COUNT(*)`` with an index-only scan under three
execution modes: demand paging, jump-pointer-array prefetching with a pool
of I/O server processes, and a preloaded buffer pool (the attainable
floor).  Sweeps both the number of prefetchers and the SMP degree.

Run:  python examples/mini_dbms.py
"""

from repro import MiniDbms
from repro.storage import DiskParameters

ROWS = 80_000
DISKS = 40


def main():
    print(f"Populating {ROWS:,} rows across {DISKS} disks (this builds a mature index) ...")
    db = MiniDbms(
        num_rows=ROWS,
        num_disks=DISKS,
        page_size=4096,
        disk=DiskParameters(sequential_window_blocks=0),
    )
    print(
        f"  table: {db.table.num_pages} heap pages "
        f"({db.table.total_bytes / 1e6:.1f} MB simulated)"
    )
    print(f"  index: {db.index.num_pages} pages, {len(db.index.leaf_page_ids())} leaf pages")

    check = db.count_star(smp_degree=2, prefetchers=4)
    assert check.row_count == ROWS
    print(f"  SELECT COUNT(*) = {check.row_count:,} (correct)\n")

    print("Varying the number of I/O prefetchers (SMP degree 9):")
    plain = db.count_star(smp_degree=9, prefetchers=0)
    warm = db.count_star(smp_degree=9, in_memory=True)
    print(f"  {'no prefetch':>14}: {plain.elapsed_s * 1000:8.1f} ms")
    for n in (1, 2, 4, 8, 12):
        stats = db.count_star(smp_degree=9, prefetchers=n)
        print(f"  {n:>3} prefetchers: {stats.elapsed_s * 1000:8.1f} ms")
    print(f"  {'in memory':>14}: {warm.elapsed_s * 1000:8.1f} ms  (floor)\n")

    print("Varying SMP degree (8 prefetchers):")
    print(f"{'degree':>7}  {'no prefetch':>12}  {'with prefetch':>13}  {'in memory':>10}")
    for degree in (1, 2, 4, 6, 9):
        row = (
            db.count_star(smp_degree=degree, prefetchers=0).elapsed_s,
            db.count_star(smp_degree=degree, prefetchers=8).elapsed_s,
            db.count_star(smp_degree=degree, in_memory=True).elapsed_s,
        )
        print(f"{degree:>7}  {row[0] * 1000:>10.1f}ms  {row[1] * 1000:>11.1f}ms  {row[2] * 1000:>8.1f}ms")

    speedup = db.count_star(smp_degree=1, prefetchers=0).elapsed_s / db.count_star(
        smp_degree=1, prefetchers=8
    ).elapsed_s
    print(f"\nPrefetching speedup at SMP degree 1: {speedup:.1f}x (paper: 2.5-5x on DB2)")


if __name__ == "__main__":
    main()
