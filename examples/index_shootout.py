#!/usr/bin/env python
"""Four-way index shootout across page sizes (paper Figures 10/13/14 in one).

Compares the disk-optimized B+-Tree, micro-indexing, and both fpB+-Trees on
searches, insertions, and deletions, at 8KB and 32KB pages.  Reproduces the
paper's core observations:

* all cache-sensitive schemes search ~1.1-1.8x faster than the baseline;
* micro-indexing collapses on updates (it keeps the giant sorted arrays);
* fpB+-Trees win updates by an order of magnitude, and the gap *grows*
  with page size, where the baseline's data movement explodes.

Run:  python examples/index_shootout.py
"""

from repro import KeyWorkload, MemorySystem
from repro.bench.cache_runner import INDEX_KINDS, PAPER_INDEX_ORDER, build_tree, measure_operations

NUM_KEYS = 120_000
OPERATIONS = 250


def run_page_size(page_size):
    print(f"\n=== page size {page_size // 1024}KB, {NUM_KEYS:,} keys, 70% full ===")
    workload = KeyWorkload(NUM_KEYS)
    keys, tids = workload.bulkload_arrays()
    searches = [int(k) for k in workload.search_keys(OPERATIONS)]
    inserts = list(zip(*[arr.tolist() for arr in workload.insert_keys(OPERATIONS)]))
    deletes = [int(k) for k in workload.delete_keys(OPERATIONS)]

    print(f"{'index':<24} {'search':>9} {'insert':>9} {'delete':>9}   (cycles/op)")
    baseline = {}
    for kind in PAPER_INDEX_ORDER:
        mem = MemorySystem()
        tree = build_tree(kind, keys, tids, fill=0.7, page_size=page_size, mem=mem)
        search = measure_operations(mem, tree.search, searches).cycles_per_op
        insert = measure_operations(
            mem, lambda kv: tree.insert(kv[0], kv[1]), inserts
        ).cycles_per_op
        delete = measure_operations(mem, tree.delete, deletes).cycles_per_op
        if kind == "disk":
            baseline = {"search": search, "insert": insert, "delete": delete}
            print(f"{INDEX_KINDS[kind]:<24} {search:>9,.0f} {insert:>9,.0f} {delete:>9,.0f}")
        else:
            print(
                f"{INDEX_KINDS[kind]:<24} {search:>9,.0f} {insert:>9,.0f} {delete:>9,.0f}"
                f"   ({baseline['search'] / search:.2f}x / "
                f"{baseline['insert'] / insert:.1f}x / {baseline['delete'] / delete:.1f}x)"
            )


def main():
    for page_size in (8192, 32768):
        run_page_size(page_size)
    print("\nSpeedups shown as (search / insert / delete) vs the disk-optimized baseline.")


if __name__ == "__main__":
    main()
