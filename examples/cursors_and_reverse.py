#!/usr/bin/env python
"""Cursors and reverse scans: the DB2-integration API surface.

The paper's DB2 integration (Section 4.3.3) added sibling links "in both
directions, and at all levels of the tree" so the engine could run reverse
scans alongside the jump-pointer-prefetched forward scans.  This example
exercises that surface on this library:

* ``scan_items``   — a forward cursor yielding (key, tuple-id) pairs;
* ``range_scan_reverse`` — the same range walked right-to-left, with the
  identical result and a traced cost comparable to the forward scan;
* the external jump-pointer array a cache-first tree maintains.

Run:  python examples/cursors_and_reverse.py
"""

import itertools

from repro import CacheFirstFpTree, KeyWorkload, MemorySystem, TreeEnvironment

NUM_KEYS = 100_000


def main():
    mem = MemorySystem()
    tree = CacheFirstFpTree(
        TreeEnvironment(page_size=8192, mem=mem, buffer_pages=4096), num_keys_hint=NUM_KEYS
    )
    workload = KeyWorkload(NUM_KEYS, seed=3)
    keys, tids = workload.bulkload_arrays()
    with mem.paused():
        tree.bulkload(keys, tids)
    print(f"Cache-first fpB+-Tree with {NUM_KEYS:,} keys, {tree.num_pages} pages.")

    lo, hi = workload.range_scans(1, NUM_KEYS // 4)[0]
    print(f"\nScanning [{lo}, {hi}] in both directions:")
    mem.clear_caches()
    with mem.measure() as forward:
        forward_result = tree.range_scan(lo, hi)
    mem.clear_caches()
    with mem.measure() as backward:
        backward_result = tree.range_scan_reverse(lo, hi)
    assert forward_result == backward_result
    print(f"  forward : {forward_result.count:,} entries, {forward.total_cycles:,.0f} cycles")
    print(f"  reverse : {backward_result.count:,} entries, {backward.total_cycles:,.0f} cycles")
    print("  identical results, comparable cost — backward links pay off.")

    print("\nCursor over the first ten entries of the range:")
    with mem.paused():
        for key, tid in itertools.islice(tree.scan_items(lo, hi), 10):
            print(f"  key {key:>9,} -> tuple {tid}")

    jpa = tree.jump_pointers.to_list()
    print(f"\nExternal jump-pointer array tracks {len(jpa)} leaf pages "
          f"(first five: {jpa[:5]}).")
    assert jpa == tree.leaf_page_ids()
    print("It stays in lockstep with the leaf page chain — that is what the")
    print("range-scan I/O prefetcher walks ahead of the scan position.")


if __name__ == "__main__":
    main()
