#!/usr/bin/env python
"""Quickstart: build a disk-first fpB+-Tree and watch it beat the baseline.

Builds the paper's headline comparison in miniature: a disk-optimized
B+-Tree and a disk-first fpB+-Tree over the same 200K keys, measured on the
simulated memory hierarchy (Table 1 parameters).  Prints simulated cycles
per operation and the execution-time breakdown.

Run:  python examples/quickstart.py
"""

from repro import DiskBPlusTree, DiskFirstFpTree, KeyWorkload, MemorySystem, TreeEnvironment

NUM_KEYS = 200_000
PAGE_SIZE = 16 * 1024
OPERATIONS = 400


def measure(tree, mem, label, operation, arguments):
    mem.clear_caches()
    with mem.measure() as phase:
        for argument in arguments:
            operation(argument)
    cycles = phase.total_cycles / len(arguments)
    pct = phase.breakdown()
    print(
        f"  {label:10s} {cycles:10,.0f} cycles/op   "
        f"(busy {pct['busy']:4.0%}  dcache {pct['dcache_stalls']:4.0%}  "
        f"other {pct['other_stalls']:4.0%})"
    )
    return cycles


def main():
    workload = KeyWorkload(NUM_KEYS)
    keys, tids = workload.bulkload_arrays()

    mem = MemorySystem()
    baseline = DiskBPlusTree(TreeEnvironment(page_size=PAGE_SIZE, mem=mem))
    fp_tree = DiskFirstFpTree(TreeEnvironment(page_size=PAGE_SIZE, mem=mem))
    with mem.paused():  # bulkload untraced, as in the paper
        baseline.bulkload(keys, tids, fill=0.8)
        fp_tree.bulkload(keys, tids, fill=0.8)

    print(f"Built both trees with {NUM_KEYS:,} keys ({PAGE_SIZE // 1024}KB pages).")
    print(f"  baseline: {baseline.num_pages} pages, height {baseline.height}")
    print(
        f"  fpB+tree: {fp_tree.num_pages} pages, height {fp_tree.height}, "
        f"in-page nodes {fp_tree.layout.widths.nonleaf_bytes}B/"
        f"{fp_tree.layout.widths.leaf_bytes}B"
    )

    print("\nSearch (random hits):")
    picks = [int(k) for k in workload.search_keys(OPERATIONS)]
    slow = measure(baseline, mem, "baseline", baseline.search, picks)
    fast = measure(fp_tree, mem, "fpB+tree", fp_tree.search, picks)
    print(f"  -> fpB+tree is {slow / fast:.2f}x faster")

    print("\nInsertion (random new keys):")
    new_keys, new_tids = workload.insert_keys(OPERATIONS)
    pairs = list(zip(new_keys.tolist(), new_tids.tolist()))
    slow = measure(baseline, mem, "baseline", lambda kv: baseline.insert(*kv), pairs)
    fast = measure(fp_tree, mem, "fpB+tree", lambda kv: fp_tree.insert(*kv), pairs)
    print(f"  -> fpB+tree is {slow / fast:.1f}x faster")

    print("\nRange scan (5% of the key space):")
    ranges = workload.range_scans(3, NUM_KEYS // 20)
    slow = measure(baseline, mem, "baseline", lambda r: baseline.range_scan(*r), ranges)
    fast = measure(fp_tree, mem, "fpB+tree", lambda r: fp_tree.range_scan(*r), ranges)
    print(f"  -> fpB+tree is {slow / fast:.1f}x faster")

    # Both trees agree, of course.
    probe = picks[0]
    assert baseline.search(probe) == fp_tree.search(probe)
    print("\nResults agree between the two indexes. Done.")


if __name__ == "__main__":
    main()
