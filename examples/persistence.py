#!/usr/bin/env python
"""Persistence and introspection: save an index, restart, keep serving.

Builds a mature disk-first fpB+-Tree, prints its occupancy report, writes
it to a single image file, loads it back into a *fresh* environment (as a
restarted process would), verifies the disk layout survived byte-for-byte,
and keeps serving queries and updates from the loaded copy.

Run:  python examples/persistence.py
"""

import os
import tempfile

from repro import (
    DiskFirstFpTree,
    KeyWorkload,
    TreeEnvironment,
    build_mature_tree,
    inspect_tree,
    load_tree,
    save_tree,
)

NUM_KEYS = 50_000


def main():
    print(f"Building a mature fpB+-Tree with {NUM_KEYS:,} keys ...")
    tree = DiskFirstFpTree(TreeEnvironment(page_size=8192, buffer_pages=2048))
    workload = KeyWorkload(NUM_KEYS, seed=13)
    build_mature_tree(tree, workload, bulk_fraction=0.85)
    print(inspect_tree(tree).format())

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.fpbt")
        nbytes = save_tree(tree, path)
        raw = tree.num_pages * 8192
        print(
            f"\nSaved to {os.path.basename(path)}: {nbytes:,} bytes "
            f"({nbytes / raw:.0%} of the {raw:,}-byte page image)"
        )

        loaded = load_tree(path, buffer_pages=2048)
        print("Loaded into a fresh environment.")
        assert loaded.leaf_page_ids() == tree.leaf_page_ids(), "disk layout changed!"
        assert list(loaded.items()) == list(tree.items()), "contents changed!"
        loaded.validate()
        print("Layout and contents verified identical; structure validates.")

        probe = int(workload.keys[1234])
        print(f"\nServing from the loaded tree: search({probe}) = {loaded.search(probe)}")
        loaded.insert(3, 33)
        loaded.delete(probe)
        print("Updates applied post-load; final report:")
        print(inspect_tree(loaded).format())


if __name__ == "__main__":
    main()
