"""Tree images: serialize any index to bytes / a file and load it back.

A production index must survive a restart.  ``save_tree`` writes a compact,
versioned binary image of a tree — page table, node contents, sibling
links, and the per-kind metadata (node widths, counters) needed to rebuild
an identical structure — and ``load_tree`` reconstructs it page-for-page at
the *same page ids*, so disk-layout-sensitive experiments (striping, seek
distances) behave identically across a save/load cycle.

All four disk-resident structures are supported:

* disk-optimized B+-Tree and micro-indexing (sorted-array pages),
* disk-first fpB+-Trees (in-page trees at line-granularity slots),
* cache-first fpB+-Trees (node graphs with page/slot references; parent
  pointers, back pointers, sibling chains and the external jump-pointer
  array are reconstructed on load).

The format is self-describing (magic + version + kind) and raises
``ImageFormatError`` on anything it does not recognize.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

import numpy as np

from .baselines.disk_btree import DiskBPlusTree, DiskPage
from .baselines.micro_index import MicroIndexTree
from .btree.base import Index
from .btree.context import TreeEnvironment
from .btree.keys import KEY4, KEY8
from .core.inpage import LEAF, FpPage, InPageNode
from .core.cache_first import CacheFirstFpTree, CfNode, CfPage
from .core.disk_first import DiskFirstFpTree
from .core.optimizer import CacheFirstWidths, DiskFirstWidths

__all__ = [
    "save_tree",
    "load_tree",
    "dump_tree_bytes",
    "load_tree_bytes",
    "encode_page",
    "decode_page",
    "ImageFormatError",
]

MAGIC = b"FPBT"
VERSION = 1

KIND_DISK = 0
KIND_MICRO = 1
KIND_FP_DISK = 2
KIND_FP_CACHE = 3

_KIND_OF_TYPE = {
    MicroIndexTree: KIND_MICRO,  # before DiskBPlusTree: it is a subclass
    DiskBPlusTree: KIND_DISK,
    DiskFirstFpTree: KIND_FP_DISK,
    CacheFirstFpTree: KIND_FP_CACHE,
}

_NO_REF = (0xFFFFFFFF, 0xFFFF)


class ImageFormatError(ValueError):
    """The byte stream is not a valid tree image."""


def _kind_of(tree: Index) -> int:
    for tree_type, kind in _KIND_OF_TYPE.items():
        if isinstance(tree, tree_type):
            return kind
    raise TypeError(f"cannot serialize index type {type(tree).__name__}")


# -- low-level helpers ------------------------------------------------------------


def _write(out: BinaryIO, fmt: str, *values) -> None:
    out.write(struct.pack(fmt, *values))


def _read(src: BinaryIO, fmt: str):
    size = struct.calcsize(fmt)
    data = src.read(size)
    if len(data) != size:
        raise ImageFormatError("truncated image")
    return struct.unpack(fmt, data)


def _write_array(out: BinaryIO, array: np.ndarray, count: int) -> None:
    out.write(array[:count].tobytes())


def _read_array(src: BinaryIO, dtype: np.dtype, count: int, capacity: int) -> np.ndarray:
    nbytes = int(np.dtype(dtype).itemsize) * count
    data = src.read(nbytes)
    if len(data) != nbytes:
        raise ImageFormatError("truncated array")
    array = np.zeros(capacity, dtype=dtype)
    array[:count] = np.frombuffer(data, dtype=dtype)
    return array


# -- per-kind page codecs ----------------------------------------------------------


def _write_disk_page(out: BinaryIO, page: DiskPage) -> None:
    _write(out, "<BIII", page.level, page.count, page.next_leaf, page.prev_leaf)
    _write_array(out, page.keys, page.count)
    _write_array(out, page.ptrs, page.count)


def _read_disk_page(src: BinaryIO, tree: DiskBPlusTree) -> DiskPage:
    level, count, next_leaf, prev_leaf = _read(src, "<BIII")
    page = DiskPage(tree.layout, level, tree.keyspec.dtype)
    page.count = count
    page.next_leaf = next_leaf
    page.prev_leaf = prev_leaf
    page.keys = _read_array(src, tree.keyspec.dtype, count, tree.layout.capacity)
    page.ptrs = _read_array(src, np.uint32, count, tree.layout.capacity)
    return page


def _write_fp_page(out: BinaryIO, page: FpPage) -> None:
    nodes = sorted(page.nodes.values(), key=lambda node: node.line)
    _write(out, "<BIHIIH", page.level, page.total, page.root_line,
           page.next_page, page.prev_page, len(nodes))
    for node in nodes:
        _write(out, "<HBH", node.line, node.kind, node.count)
        _write_array(out, node.keys, node.count)
        _write_array(out, node.ptrs, node.count)


def _read_fp_page(src: BinaryIO, tree: DiskFirstFpTree) -> FpPage:
    level, total, root_line, next_page, prev_page, num_nodes = _read(src, "<BIHIIH")
    page = FpPage(level, tree.layout.total_lines)
    page.total = total
    page.root_line = root_line
    page.next_page = next_page
    page.prev_page = prev_page
    for __ in range(num_nodes):
        line, kind, count = _read(src, "<HBH")
        width = tree.layout.lines_needed(kind)
        capacity = tree.layout.leaf_capacity if kind == LEAF else tree.layout.nonleaf_capacity
        got = page.alloc.alloc(width, hint=line)
        if got != line:
            raise ImageFormatError(f"node lines collide at line {line}")
        node = InPageNode(kind, capacity, tree.keyspec.dtype, line, width)
        node.count = count
        node.keys = _read_array(src, tree.keyspec.dtype, count, capacity)
        node.ptrs = _read_array(src, np.uint32, count, capacity)
        page.nodes[line] = node
    return page


def _ref_of(node) -> tuple[int, int]:
    return (node.pid, node.slot) if node is not None else _NO_REF


def _write_cf_page(out: BinaryIO, page: CfPage, kind_codes: dict) -> None:
    _write(out, "<BIIIHH", kind_codes[page.kind], page.next_page, page.prev_page,
           *_ref_of(page.back_pointer), len(page.slots))
    for slot, node in enumerate(page.slots):
        if node is None:
            _write(out, "<B", 0)
            continue
        _write(out, "<BBHB", 1, int(node.is_leaf), node.count, node.in_page_level)
        _write_array(out, node.keys, node.count)
        if node.is_leaf:
            _write_array(out, node.tids, node.count)
            _write(out, "<IH", *_ref_of(node.next_leaf))
        else:
            for child in node.children:
                _write(out, "<IH", child.pid, child.slot)
            _write(out, "<IH", *_ref_of(node.next_parent))


# -- single-page codec (the WAL's page-image payload format) ---------------------------

PAGE_KIND_DISK = 0  # DiskPage (disk-optimized B+-Tree / micro-indexing)
PAGE_KIND_FP = 1  # FpPage (disk-first fpB+-Tree)
PAGE_KIND_HEAP = 2  # HeapPage (mini-DBMS heap table)


def encode_page(tree: Index, page) -> bytes:
    """Serialize one page to self-describing bytes (WAL page images).

    ``tree`` supplies the layout context; the page kind is dispatched on
    the page object's type, so a store mixing index and heap pages (the
    mini DBMS) round-trips every page through the same codec.
    """
    from .dbms.table import HeapPage  # local: avoids a package-init cycle

    out = io.BytesIO()
    if isinstance(page, FpPage):
        _write(out, "<B", PAGE_KIND_FP)
        _write_fp_page(out, page)
    elif isinstance(page, DiskPage):
        _write(out, "<B", PAGE_KIND_DISK)
        _write_disk_page(out, page)
    elif isinstance(page, HeapPage):
        _write(out, "<B", PAGE_KIND_HEAP)
        _write(out, "<II", page.count, page.capacity)
        for column in (page.k1, page.k2, page.k3):
            _write_array(out, column, page.count)
    else:
        raise TypeError(f"cannot encode page type {type(page).__name__}")
    return out.getvalue()


def decode_page(tree: Index, data: bytes):
    """Reconstruct a page object from :func:`encode_page` bytes."""
    from .dbms.table import HeapPage  # local: avoids a package-init cycle

    src = io.BytesIO(data)
    (kind,) = _read(src, "<B")
    if kind == PAGE_KIND_FP:
        if not isinstance(tree, DiskFirstFpTree):
            raise ImageFormatError("fp page image for a non-fp tree")
        return _read_fp_page(src, tree)
    if kind == PAGE_KIND_DISK:
        if not isinstance(tree, DiskBPlusTree):
            raise ImageFormatError("disk page image for a non-disk tree")
        return _read_disk_page(src, tree)
    if kind == PAGE_KIND_HEAP:
        count, capacity = _read(src, "<II")
        page = HeapPage(capacity)
        page.count = count
        page.k1 = _read_array(src, np.uint32, count, capacity)
        page.k2 = _read_array(src, np.uint32, count, capacity)
        page.k3 = _read_array(src, np.uint32, count, capacity)
        return page
    raise ImageFormatError(f"unknown page kind {kind}")


# -- tree-level save ------------------------------------------------------------------


def dump_tree_bytes(tree: Index) -> bytes:
    """Serialize a tree to a bytes object."""
    out = io.BytesIO()
    kind = _kind_of(tree)
    keyspec = tree.keyspec
    _write(out, "<4sHBIB", MAGIC, VERSION, kind, tree.env.page_size, keyspec.size)
    _write(out, "<IQ", tree.num_pages, tree.num_entries)

    if kind in (KIND_DISK, KIND_MICRO):
        _write(out, "<IIII", tree.root_pid, tree.height, tree.first_leaf_pid,
               tree.layout.capacity)
        if kind == KIND_MICRO:
            _write(out, "<I", tree.layout.subarray_keys * tree.layout.key_size)
        for pid in sorted(tree.store.page_ids()):
            _write(out, "<I", pid)
            _write_disk_page(out, tree.store.page(pid))
    elif kind == KIND_FP_DISK:
        widths = tree.layout.widths
        _write(out, "<III", tree.root_pid, tree.height, tree.first_leaf_pid)
        _write(out, "<IIIIIIIdd", widths.nonleaf_bytes, widths.leaf_bytes, widths.levels,
               widths.leaf_nodes, widths.nonleaf_capacity, widths.leaf_capacity,
               widths.page_fanout, widths.cost, widths.cost_ratio)
        for pid in sorted(tree.store.page_ids()):
            _write(out, "<I", pid)
            _write_fp_page(out, tree.store.page(pid))
    else:  # KIND_FP_CACHE
        widths = tree.widths
        _write(out, "<IH", *_ref_of(tree.root))
        _write(out, "<IH", *_ref_of(tree.first_leaf))
        _write(out, "<I", tree.height)
        _write(out, "<IIIIIIdd", widths.node_bytes, widths.nonleaf_capacity,
               widths.leaf_capacity, widths.nodes_per_page, widths.page_fanout,
               widths.levels, widths.cost, widths.cost_ratio)
        kind_codes = {"nonleaf": 0, "overflow": 1, "leaf": 2}
        for pid in sorted(tree.store.page_ids()):
            _write(out, "<I", pid)
            _write_cf_page(out, tree.store.page(pid), kind_codes)
    return out.getvalue()


def save_tree(tree: Index, path: str) -> int:
    """Write a tree image to ``path``; returns the byte count."""
    data = dump_tree_bytes(tree)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


# -- tree-level load --------------------------------------------------------------------


def load_tree_bytes(data: bytes, **env_kwargs) -> Index:
    """Reconstruct a tree from the bytes produced by :func:`dump_tree_bytes`.

    ``env_kwargs`` (e.g. ``mem=...``, ``buffer_pages=...``) configure the
    fresh :class:`TreeEnvironment` the loaded tree is attached to.
    """
    src = io.BytesIO(data)
    magic, version, kind, page_size, key_size = _read(src, "<4sHBIB")
    if magic != MAGIC:
        raise ImageFormatError("bad magic: not a tree image")
    if version != VERSION:
        raise ImageFormatError(f"unsupported image version {version}")
    keyspec = {4: KEY4, 8: KEY8}.get(key_size)
    if keyspec is None:
        raise ImageFormatError(f"unsupported key size {key_size}")
    num_pages, entries = _read(src, "<IQ")

    env_kwargs.setdefault("buffer_pages", 8192)
    env = TreeEnvironment(page_size=page_size, keyspec=keyspec, **env_kwargs)

    if kind in (KIND_DISK, KIND_MICRO):
        return _load_disk_like(src, kind, env, num_pages, entries)
    if kind == KIND_FP_DISK:
        return _load_fp_disk(src, env, num_pages, entries)
    if kind == KIND_FP_CACHE:
        return _load_fp_cache(src, env, num_pages, entries)
    raise ImageFormatError(f"unknown tree kind {kind}")


def load_tree(path: str, **env_kwargs) -> Index:
    """Load a tree image from a file."""
    with open(path, "rb") as handle:
        return load_tree_bytes(handle.read(), **env_kwargs)


def _fresh_store(tree: Index) -> None:
    """Drop the bootstrap page the tree constructor created."""
    for pid in list(tree.store.page_ids()):
        tree.store.free(pid)
        tree.pool.invalidate(pid)


def _load_disk_like(src, kind, env, num_pages, entries):
    root_pid, height, first_leaf, capacity = _read(src, "<IIII")
    if kind == KIND_MICRO:
        (subarray_bytes,) = _read(src, "<I")
        tree = MicroIndexTree(env, subarray_bytes=subarray_bytes)
    else:
        tree = DiskBPlusTree(env)
    if tree.layout.capacity != capacity:
        raise ImageFormatError("page capacity mismatch (different layout parameters)")
    _fresh_store(tree)
    for __ in range(num_pages):
        (pid,) = _read(src, "<I")
        tree.store.place(pid, _read_disk_page(src, tree))
    tree.store.rebuild_free_list()
    tree.root_pid = root_pid
    tree.height = height
    tree.first_leaf_pid = first_leaf
    tree._entries = entries
    return tree


def _load_fp_disk(src, env, num_pages, entries):
    root_pid, height, first_leaf = _read(src, "<III")
    values = _read(src, "<IIIIIIIdd")
    widths = DiskFirstWidths(*values)
    tree = DiskFirstFpTree(env, widths=widths)
    _fresh_store(tree)
    for __ in range(num_pages):
        (pid,) = _read(src, "<I")
        tree.store.place(pid, _read_fp_page(src, tree))
    tree.store.rebuild_free_list()
    tree.root_pid = root_pid
    tree.height = height
    tree.first_leaf_pid = first_leaf
    tree._entries = entries
    return tree


def _load_fp_cache(src, env, num_pages, entries):
    root_ref = tuple(_read(src, "<IH"))
    first_leaf_ref = tuple(_read(src, "<IH"))
    (height,) = _read(src, "<I")
    values = _read(src, "<IIIIIIdd")
    widths = CacheFirstWidths(*values)
    tree = CacheFirstFpTree(env, widths=widths)
    _fresh_store(tree)
    tree._overflow_pids = []

    kind_names = {0: "nonleaf", 1: "overflow", 2: "leaf"}
    pending: list[tuple[CfNode, str, tuple[int, int]]] = []  # deferred refs
    child_refs: dict[int, list[tuple[int, int]]] = {}

    for __ in range(num_pages):
        (pid,) = _read(src, "<I")
        kind_code, next_page, prev_page, bp_pid, bp_slot, slot_count = _read(src, "<BIIIHH")
        page = CfPage(kind_names[kind_code], slot_count)
        page.next_page = next_page
        page.prev_page = prev_page
        if (bp_pid, bp_slot) != _NO_REF:
            pending_back = (bp_pid, bp_slot)
        else:
            pending_back = None
        tree.store.place(pid, page)
        if page.kind == "overflow":
            tree._overflow_pids.append(pid)
        for slot in range(slot_count):
            (present,) = _read(src, "<B")
            if not present:
                continue
            is_leaf, count, in_page_level = _read(src, "<BHB")
            capacity = tree.leaf_capacity if is_leaf else tree.nonleaf_capacity
            node = CfNode(bool(is_leaf), capacity, tree.keyspec.dtype)
            node.count = count
            node.in_page_level = in_page_level
            node.keys = _read_array(src, tree.keyspec.dtype, count, capacity)
            if is_leaf:
                node.tids = _read_array(src, np.uint32, count, capacity)
                pending.append((node, "next_leaf", tuple(_read(src, "<IH"))))
            else:
                child_refs[id(node)] = [tuple(_read(src, "<IH")) for __ in range(count)]
                pending.append((node, "next_parent", tuple(_read(src, "<IH"))))
            node.pid = pid
            node.slot = slot
            page.slots[slot] = node
            page.used += 1
        if pending_back is not None:
            pending.append((page, "back_pointer", pending_back))

    tree.store.rebuild_free_list()

    def resolve(ref: tuple[int, int]):
        if ref == _NO_REF:
            return None
        pid, slot = ref
        node = tree.store.page(pid).slots[slot]
        if node is None:
            raise ImageFormatError(f"dangling reference to page {pid} slot {slot}")
        return node

    for owner, attribute, ref in pending:
        setattr(owner, attribute, resolve(ref))
    for pid in tree.store.page_ids():
        for node in tree.store.page(pid).nodes():
            if not node.is_leaf:
                node.children = [resolve(ref) for ref in child_refs[id(node)]]
                for child in node.children:
                    child.parent = node

    tree.root = resolve(root_ref)
    tree.root.parent = None
    tree.first_leaf = resolve(first_leaf_ref)
    tree.height = height
    tree._entries = entries
    tree.jump_pointers.build(tree.leaf_page_ids())
    return tree
