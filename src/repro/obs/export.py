"""Chrome-trace (Perfetto) export, validation, and query-level reporting.

The exporter turns a :class:`~repro.obs.trace.Tracer` into the Chrome
Trace Event JSON format (the ``traceEvents`` array form), loadable in
``chrome://tracing`` or https://ui.perfetto.dev.  Export is a pure function
of the recorded events: dict keys are emitted in a fixed order, tracks map
to thread ids in first-use order, and serialisation uses compact fixed
separators — so a deterministic simulation exports byte-identical JSON.

:class:`QueryTrace` bundles one query's tracer and metrics registry behind
the small API :class:`~repro.dbms.engine.QueryStats` exposes: write the
JSON, snapshot the metrics, count events, or render an ``explain()``-style
text timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from .metrics import MetricsRegistry
from .trace import PH_COMPLETE, PH_COUNTER, PH_INSTANT, Tracer

__all__ = [
    "chrome_trace_dict",
    "to_chrome_json",
    "validate_chrome_trace",
    "QueryTrace",
]

#: All phases the exporter can emit ("M" is trace metadata).
_VALID_PHASES = {PH_COMPLETE, PH_INSTANT, PH_COUNTER, "M"}

#: Single simulated process id used for every track.
_PID = 1


def chrome_trace_dict(tracer: Tracer, label: str = "repro") -> dict:
    """Render a tracer's ring buffer as a Chrome-trace object."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for track, tid in tracer.tracks.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid, "args": {"name": track}}
        )
    tracks = tracer.tracks
    for record in tracer.records:
        event: dict = {
            "name": record.name,
            "cat": record.cat,
            "ph": record.ph,
            "ts": record.ts,
            "pid": _PID,
            "tid": tracks[record.track],
        }
        if record.ph == PH_COMPLETE:
            event["dur"] = record.dur
        if record.args:
            event["args"] = record.args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "emitted": str(tracer.emitted),
            "dropped": str(tracer.dropped),
        },
    }


def to_chrome_json(tracer: Tracer, label: str = "repro") -> str:
    """Serialise deterministically (fixed key order, compact separators)."""
    return json.dumps(chrome_trace_dict(tracer, label=label), separators=(",", ":"))


def validate_chrome_trace(obj) -> list[str]:
    """Structural check against the Chrome-trace event schema.

    Returns a list of problems (empty when valid).  Checks the shape every
    consumer relies on: a ``traceEvents`` array of objects with ``name``,
    ``ph``, ``ts``, ``pid``/``tid``, a non-negative ``dur`` on complete
    events, and dict ``args`` when present.
    """
    problems: list[str] = []
    if isinstance(obj, str):
        try:
            obj = json.loads(obj)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' array"]
    for index, event in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty 'name'")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if phase == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0, got {dur!r}")
        if phase == PH_COUNTER and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs dict args")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


@dataclass
class QueryTrace:
    """One query's observability bundle: its tracer and metrics registry."""

    tracer: Tracer
    metrics: MetricsRegistry
    label: str = "query"

    # -- export --------------------------------------------------------------

    def chrome_dict(self) -> dict:
        return chrome_trace_dict(self.tracer, label=self.label)

    def to_json(self) -> str:
        return to_chrome_json(self.tracer, label=self.label)

    def write(self, path: str) -> str:
        """Write the Chrome-trace JSON to ``path``; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    # -- queries over the record stream --------------------------------------

    def count(self, name: str, ph: Optional[str] = None) -> int:
        """Number of records with ``name`` (optionally one phase only)."""
        return sum(
            1
            for r in self.tracer.records
            if r.name == name and (ph is None or r.ph == ph)
        )

    def counter_value(self, name: str):
        """Last sampled value of counter ``name`` (None if never sampled)."""
        value = None
        for r in self.tracer.records:
            if r.ph == PH_COUNTER and r.name == name:
                value = r.args["value"]
        return value

    # -- explain()-style rendering -------------------------------------------

    def timeline(self, width: int = 64) -> str:
        """Text summary: per-track span aggregates plus an activity strip.

        The strip divides the query's simulated duration into ``width``
        buckets and marks each bucket a track had a span covering it —
        a terminal-sized Gantt chart.
        """
        records = list(self.tracer.records)
        spans = [r for r in records if r.ph == PH_COMPLETE]
        end = max((r.ts + r.dur for r in spans), default=0.0)
        end = max(end, max((r.ts for r in records), default=0.0))
        lines = [
            f"trace {self.label!r}: {len(records)} records "
            f"({self.tracer.dropped} dropped), {end:.0f} us simulated"
        ]
        # Aggregate complete spans per (track, name).
        agg: dict[tuple[str, str], tuple[int, float]] = {}
        for r in spans:
            count, total = agg.get((r.track, r.name), (0, 0.0))
            agg[(r.track, r.name)] = (count + 1, total + r.dur)
        if agg:
            lines.append(f"  {'track':<12} {'span':<16} {'count':>7} {'total_us':>12} {'avg_us':>10}")
            for (track, name) in sorted(agg):
                count, total = agg[(track, name)]
                lines.append(
                    f"  {track:<12} {name:<16} {count:>7} {total:>12.1f} {total / count:>10.1f}"
                )
        instants: dict[tuple[str, str], int] = {}
        for r in records:
            if r.ph == PH_INSTANT:
                key = (r.track, r.name)
                instants[key] = instants.get(key, 0) + 1
        if instants:
            lines.append("  instants: " + ", ".join(
                f"{track}:{name} x{n}" for (track, name), n in sorted(instants.items())
            ))
        if end > 0 and spans:
            lines.append("  activity (one row per track, {:.0f} us/cell):".format(end / width))
            by_track: dict[str, list] = {}
            for r in spans:
                by_track.setdefault(r.track, []).append(r)
            for track in sorted(by_track):
                cells = [" "] * width
                for r in by_track[track]:
                    lo = min(int(r.ts / end * width), width - 1)
                    hi = min(int((r.ts + r.dur) / end * width), width - 1)
                    for i in range(lo, hi + 1):
                        cells[i] = "#"
                lines.append(f"  {track:<12} |{''.join(cells)}|")
        counters = [r for r in records if r.ph == PH_COUNTER]
        if counters:
            finals: dict[str, object] = {}
            for r in counters:
                finals[r.name] = r.args["value"]
            lines.append("  counters: " + ", ".join(
                f"{name}={finals[name]}" for name in sorted(finals)
            ))
        return "\n".join(lines)
