"""Typed span/event tracing on the DES clock.

A :class:`Tracer` records what happened *at* simulated times without ever
advancing them: every record carries a timestamp read from a clock callable
(usually ``lambda: env.now``), and recording is plain list bookkeeping — no
DES events, no timeouts, no RNG draws.  That is the no-drift contract: a
traced run and an untraced run of the same seeded workload produce
bit-identical simulated times.

Records live in a bounded ring buffer (oldest events drop first under
pressure; ``dropped`` says how many), and each names a *track* — a logical
timeline such as ``disk3``, ``reader``, ``scan0`` or ``wal``.  Tracks map
to Chrome-trace thread ids in first-use order, which is deterministic for a
deterministic simulation, so the exported JSON is byte-identical across
runs with the same seed and fault plan.

The module-level :data:`NULL_TRACER` is the off-by-default mode: a disabled
tracer whose methods return immediately, cheap enough to leave threaded
through every hot path.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]

#: Chrome-trace phases used by the exporter.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"


class TraceRecord:
    """One trace record: a complete span, an instant, or a counter sample."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "track", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: float,
        track: str,
        args: Optional[dict],
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.track = track
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"+{self.dur:g}" if self.ph == PH_COMPLETE else ""
        return f"<TraceRecord {self.ph} {self.track}:{self.name} @{self.ts:g}{span}>"


class Tracer:
    """Bounded, deterministic recorder of spans and instants.

    ``clock`` supplies timestamps (the DES ``env.now``); it may be attached
    after construction (``tracer.clock = ...``) by whichever component owns
    the relevant clock.  ``capacity`` bounds the ring buffer.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 65536,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self.enabled = True
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.emitted = 0
        self._tracks: dict[str, int] = {}

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Current timestamp (0.0 when no clock is attached)."""
        return self.clock() if self.clock is not None else 0.0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records lost to ring-buffer pressure."""
        return self.emitted - len(self.records)

    @property
    def tracks(self) -> dict[str, int]:
        """Track name -> thread id, in first-use order."""
        return dict(self._tracks)

    def _track_id(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    def _push(
        self, name: str, cat: str, ph: str, ts: float, dur: float, track: str, args: Optional[dict]
    ) -> None:
        self._track_id(track)
        self.records.append(TraceRecord(name, cat, ph, ts, dur, track, args))
        self.emitted += 1

    # -- recording API -------------------------------------------------------

    def instant(self, name: str, track: str = "main", cat: str = "event", **args) -> None:
        """Record a zero-duration event at the current clock reading."""
        if not self.enabled:
            return
        self._push(name, cat, PH_INSTANT, self.now(), 0.0, track, args or None)

    def complete(
        self, name: str, track: str, start: float, cat: str = "span", **args
    ) -> None:
        """Record a span that began at ``start`` and ends now."""
        if not self.enabled:
            return
        end = self.now()
        self._push(name, cat, PH_COMPLETE, start, max(end - start, 0.0), track, args or None)

    @contextmanager
    def span(self, name: str, track: str = "main", cat: str = "span", **args) -> Iterator[None]:
        """Context manager recording the enclosed block as a complete span.

        Works inside DES process generators: the block may suspend at
        ``yield`` points, and the end timestamp is read when it exits.  An
        exception escaping the block is recorded in the span's ``error``
        arg and re-raised.
        """
        if not self.enabled:
            yield
            return
        start = self.now()
        try:
            yield
        except BaseException as exc:
            failed = dict(args)
            failed["error"] = type(exc).__name__
            self.complete(name, track, start, cat=cat, **failed)
            raise
        self.complete(name, track, start, cat=cat, **args)

    def counter(self, name: str, value, track: str = "counters", cat: str = "counter") -> None:
        """Record a counter sample (rendered as a counter track)."""
        if not self.enabled:
            return
        self._push(name, cat, PH_COUNTER, self.now(), 0.0, track, {"value": value})

    def clear(self) -> None:
        """Drop all records and track assignments (keeps the clock)."""
        self.records.clear()
        self.emitted = 0
        self._tracks.clear()


def _make_null_tracer() -> Tracer:
    tracer = Tracer(capacity=1)
    tracer.enabled = False
    return tracer


#: Shared disabled tracer: the off-by-default mode for every component.
NULL_TRACER = _make_null_tracer()
