"""Named counters, gauges and histograms for the simulators.

A :class:`MetricsRegistry` is a flat namespace of metrics addressed by
dotted name (``disk0.read_latency_us``, ``reader.retries``).  Everything is
zero-dependency, deterministic, and purely observational: recording a value
never touches any simulation clock.

Components keep their historical counter attributes (``reader.retries``,
``pool.misses``, ``disk.busy_time_us``) through :class:`MetricAttr`, a
descriptor that stores the value in a registry :class:`Counter` while
leaving every existing call site — including ``+= 1`` increments and
``reset_stats()`` zeroing — untouched.  That is the "compatible facade":
the attribute *is* the metric.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricAttr",
    "bind_counters",
]

Number = Union[int, float]

#: Default histogram bucket upper bounds, in the storage layer's
#: microseconds: 64 us .. ~4.2 s in powers of four, plus +inf.
DEFAULT_BUCKETS_US: tuple[float, ...] = tuple(64.0 * 4**i for i in range(13))


class Counter:
    """A monotonically-written scalar (ints or float totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, delta: Number = 1) -> None:
        self.value += delta

    def merge_from(self, other: "Counter") -> None:
        """Fold another counter's total into this one."""
        self.value += other.value

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A scalar that goes up and down (queue depths, residency)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.max_value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, delta: Number = 1) -> None:
        self.set(self.value + delta)

    def merge_from(self, other: "Gauge") -> None:
        """Fold another gauge in: values add (a fleet's in-flight total is
        the sum of its members'), and ``max_value`` adds too — the true
        fleet-wide peak is unobservable after the fact, so the sum is kept
        as a conservative upper bound."""
        self.value += other.value
        self.max_value += other.max_value

    def snapshot(self) -> dict[str, Number]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket distribution with sum/count/min/max.

    ``bounds`` are inclusive upper edges; values above the last bound land
    in an implicit overflow bucket.  Bounds are fixed at construction, so
    two runs that record the same values produce identical snapshots.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = tuple(bounds if bounds is not None else DEFAULT_BUCKETS_US)
        if list(self.bounds) != sorted(self.bounds) or len(set(self.bounds)) != len(self.bounds):
            raise ValueError(f"histogram bounds must be strictly increasing, got {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's distribution into this one.

        Both histograms must share identical bucket bounds — merging
        differently-bucketed series would silently blur quantiles.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": {
                **{f"le_{bound:g}": n for bound, n in zip(self.bounds, self.counts)},
                "overflow": self.counts[-1],
            },
        }


class MetricsRegistry:
    """A flat, typed namespace of named metrics.

    Metrics are created on first use and memoized; asking for an existing
    name with a different type is an error (it would silently fork the
    series).  Snapshots iterate names in sorted order, so exporting a
    registry is deterministic.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind: type, *args) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif type(metric) is not Histogram:
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Histogram")
        return metric  # type: ignore[return-value]

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry by name.

        Counters and gauges add; histograms merge bucket-wise (identical
        bounds required).  Metrics absent here are created with the same
        type (and, for histograms, the same bounds) before merging, so a
        fresh registry accumulates any number of source registries — the
        aggregation primitive behind fleet-wide
        :meth:`~repro.serve.stats.ServerStats.merge`.
        """
        for name in other.names():
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                self.counter(name).merge_from(metric)
            elif isinstance(metric, Gauge):
                self.gauge(name).merge_from(metric)
            elif isinstance(metric, Histogram):
                self.histogram(name, metric.bounds).merge_from(metric)
            else:  # pragma: no cover - the registry only makes these three
                raise TypeError(f"metric {name!r} has unmergeable type {type(metric).__name__}")

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def value(self, name: str) -> Number:
        """Scalar value of a counter or gauge (0 if never created)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise TypeError(f"metric {name!r} has no scalar value")

    def snapshot(self) -> dict[str, object]:
        """Deterministic dict of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}


class MetricAttr:
    """Descriptor exposing a registry counter as a plain instance attribute.

    The owning class calls :func:`bind_counters` in ``__init__`` to map
    attribute names to registry counters; after that, ``obj.retries += 1``
    and ``obj.retries = 0`` read and write the counter's value directly, so
    pre-observability code and tests keep working unchanged.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._metric_counters[self.name].value

    def __set__(self, obj, value) -> None:
        obj._metric_counters[self.name].value = value


def bind_counters(obj, registry: MetricsRegistry, prefix: str, names: Iterable[str]) -> None:
    """Wire an object's :class:`MetricAttr` descriptors to ``registry``."""
    obj._metric_counters = {name: registry.counter(prefix + name) for name in names}
