"""Query-level observability: tracing + metrics for the simulators.

Two planes, one bundle:

* :class:`Tracer` (``trace.py``) — typed spans and instant events on the
  DES clock, in a bounded ring buffer, exported as Chrome-trace JSON
  (``export.py``).  Off by default via :data:`NULL_TRACER`; traces observe
  clocks, never advance them, and are deterministic per seed.
* :class:`MetricsRegistry` (``metrics.py``) — named counters, gauges and
  histograms.  Components expose their historical counter attributes
  through the :class:`MetricAttr` facade, so the registry replaces the
  hand-rolled counters without changing any call site.

:class:`Observability` bundles one tracer and one registry; every
instrumented component (disk array, buffer pool, page reader, WAL) accepts
an optional ``obs`` and shares the bundle it is given.
"""

from __future__ import annotations

from typing import Callable, Optional

from .export import QueryTrace, chrome_trace_dict, to_chrome_json, validate_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricAttr,
    MetricsRegistry,
    bind_counters,
)
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricAttr",
    "MetricsRegistry",
    "bind_counters",
    "NULL_TRACER",
    "TraceRecord",
    "Tracer",
    "QueryTrace",
    "chrome_trace_dict",
    "to_chrome_json",
    "validate_chrome_trace",
    "Observability",
    "attach_des_observer",
]


class Observability:
    """One tracer + one metrics registry, shared across a component stack.

    The default construction (``Observability()``) is the cheap path every
    component falls back to when no bundle is passed: a private registry
    (so the counter facade always works) and the shared disabled tracer.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def tracing(self) -> bool:
        """True when the bundle's tracer actually records."""
        return self.tracer.enabled


def attach_des_observer(env, tracer: Tracer, track: str = "des") -> None:
    """Wire DES kernel lifecycle events into a tracer (opt-in, verbose).

    Installs an observer on the environment; the kernel calls it with
    ``("step", event)`` per processed event and ``("process", process)``
    per spawned process.  Purely observational — the hook reads the clock
    and never schedules anything.
    """

    def observe(kind: str, event) -> None:
        tracer.instant(kind, track=track, cat="des", event=type(event).__name__)

    env.observer = observe
