"""Structural verification of an index — the post-recovery scrubber.

:func:`scrub_tree` generalizes the per-tree ``validate()`` methods into a
single verifier that any :class:`~repro.btree.base.Index` over page-id
storage can pass through after crash recovery:

* **page structure** — the tree's own ``validate()`` (node allocator
  consistency, per-node ordering, entry counters, sibling chains);
* **key ordering with separator/child agreement** — a bounded descent from
  the root: every child's keys must lie within the key range its parent
  separators promise (the leftmost routing chain is exempt below, acting
  as minus infinity, exactly as search routing treats it);
* **leaf chain** — walking the sibling chain visits the same pages as the
  tree walk, in order, with globally non-decreasing keys and a total entry
  count matching the tree's counter;
* **jump-pointer completeness** — for trees that expose an internal
  jump-pointer array (the fpB+-Tree's leaf-parent level, paper Section
  3.3), the array must enumerate exactly the leaf chain.

Failures raise :class:`~repro.btree.base.IndexCorruptionError`; success
returns a :class:`ScrubReport` naming what was checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from .btree.base import IndexCorruptionError
from .core.inpage import FpPage

__all__ = ["ScrubReport", "scrub_tree"]


@dataclass(frozen=True)
class ScrubReport:
    """What the scrubber examined on a passing tree."""

    pages_visited: int
    leaf_pages: int
    entries: int
    checks: tuple[str, ...]


def _page_entries(page) -> tuple[list[int], list[int]]:
    """(keys, pointers) of one page, in key order, for either page kind."""
    if isinstance(page, FpPage):
        keys: list[int] = []
        ptrs: list[int] = []
        for node in page.leaf_nodes_in_order():
            keys.extend(int(k) for k in node.keys[: node.count])
            ptrs.extend(int(p) for p in node.ptrs[: node.count])
        return keys, ptrs
    return (
        [int(k) for k in page.keys[: page.count]],
        [int(p) for p in page.ptrs[: page.count]],
    )


def scrub_tree(tree) -> ScrubReport:
    """Verify a tree's structure; raises ``IndexCorruptionError`` on damage."""
    checks = ["page-structure", "key-ordering", "separator-agreement", "leaf-chain"]
    tree.validate()

    store = tree.store
    visited = 0
    leaf_pids: list[int] = []
    total_entries = 0

    def walk(pid: int, level: int, lo, hi) -> None:
        """Descend with the key bounds the parent separators promise.

        ``lo=None`` marks the leftmost routing chain (minus infinity);
        ``hi`` is inclusive: a child's first key may equal the next
        separator when duplicates span the boundary.
        """
        nonlocal visited, total_entries
        if pid not in store:
            raise IndexCorruptionError(f"page {pid} referenced but not allocated")
        page = store.page(pid)
        if page.level != level:
            raise IndexCorruptionError(
                f"page {pid} at level {page.level}, parent expected {level}"
            )
        visited += 1
        keys, ptrs = _page_entries(page)
        for left, right in zip(keys, keys[1:]):
            if left > right:
                raise IndexCorruptionError(f"page {pid} keys out of order")
        if keys:
            if lo is not None and keys[0] < lo:
                raise IndexCorruptionError(
                    f"page {pid} holds key {keys[0]} below its separator {lo}"
                )
            if hi is not None and keys[-1] > hi:
                raise IndexCorruptionError(
                    f"page {pid} holds key {keys[-1]} above its next separator {hi}"
                )
        if level == 0:
            leaf_pids.append(pid)
            total_entries += len(keys)
            return
        for i, child in enumerate(ptrs):
            # Child 0 inherits the page's own bound: routing clamps to slot
            # 0, so it may legitimately hold keys below its recorded
            # (possibly stale) separator.
            child_lo = lo if i == 0 else keys[i]
            child_hi = keys[i + 1] if i + 1 < len(keys) else hi
            walk(child, level - 1, child_lo, child_hi)

    walk(tree.root_pid, tree.height - 1, None, None)

    if total_entries != tree.num_entries:
        raise IndexCorruptionError(
            f"entry count mismatch: walk found {total_entries}, "
            f"counter says {tree.num_entries}"
        )

    # Leaf chain: same pages as the tree walk, in order, globally sorted.
    chain = tree.leaf_page_ids()
    if chain != leaf_pids:
        raise IndexCorruptionError("leaf sibling chain disagrees with tree order")
    if leaf_pids and tree.first_leaf_pid != leaf_pids[0]:
        raise IndexCorruptionError("first_leaf_pid does not head the leaf chain")
    last_key = None
    for pid in chain:
        keys, __ = _page_entries(store.page(pid))
        if keys:
            if last_key is not None and keys[0] < last_key:
                raise IndexCorruptionError(f"leaf chain unsorted at page {pid}")
            last_key = keys[-1]

    # Jump-pointer completeness (trees that maintain one, i.e. the fpB+-Tree).
    if hasattr(tree, "leaf_pids_via_jump_pointers") and tree.height > 1:
        checks.append("jump-pointers")
        if tree.leaf_pids_via_jump_pointers() != chain:
            raise IndexCorruptionError("jump-pointer array disagrees with leaf chain")

    return ScrubReport(
        pages_visited=visited,
        leaf_pages=len(leaf_pids),
        entries=total_entries,
        checks=tuple(checks),
    )
