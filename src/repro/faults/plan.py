"""Declarative fault plans for the disk-array simulator.

A :class:`FaultPlan` describes *what can go wrong* — per-disk latent-sector
error rates, transient-timeout rates, a permanent failure time, and "limping
disk" latency multipliers — without saying anything about *when each fault
fires*.  The :class:`~repro.faults.injector.FaultInjector` turns a plan plus
a seed into a deterministic per-read fault stream, so every experiment is
bit-for-bit reproducible.

Rates are per-read probabilities; times are simulation microseconds (the
storage layer's unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, Mapping, Optional

__all__ = ["DiskFaultProfile", "FaultPlan"]


@dataclass(frozen=True)
class DiskFaultProfile:
    """Fault behaviour of one disk.

    ``corrupt_rate``
        Probability that a read completes but delivers corrupted data
        (a latent sector error surfacing).  Caught by the page checksum at
        the buffer-pool fill boundary.
    ``timeout_rate``
        Probability that a read stalls and is eventually declared lost by
        the device (a transient timeout).  Retrying is expected to succeed.
    ``fail_at_us``
        If set, the disk fails permanently at this simulation time; every
        later command is rejected with :class:`DiskFailedError`.
    ``limp_factor`` / ``limp_after_us``
        From ``limp_after_us`` onward, every service time on this disk is
        multiplied by ``limp_factor`` — the classic "limping" (fail-slow)
        disk that drags down an otherwise healthy array.
    """

    corrupt_rate: float = 0.0
    timeout_rate: float = 0.0
    fail_at_us: Optional[float] = None
    limp_factor: float = 1.0
    limp_after_us: float = 0.0

    def __post_init__(self) -> None:
        for name in ("corrupt_rate", "timeout_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.fail_at_us is not None and self.fail_at_us < 0:
            raise ValueError(f"fail_at_us must be >= 0, got {self.fail_at_us}")
        if self.limp_factor < 1.0:
            raise ValueError(f"limp_factor must be >= 1, got {self.limp_factor}")
        if self.limp_after_us < 0:
            raise ValueError(f"limp_after_us must be >= 0, got {self.limp_after_us}")

    @property
    def is_clean(self) -> bool:
        """True if this profile can never perturb a read."""
        return (
            self.corrupt_rate == 0.0
            and self.timeout_rate == 0.0
            and self.fail_at_us is None
            and self.limp_factor == 1.0
        )

    def limp_multiplier(self, now_us: float) -> float:
        """Service-time multiplier in effect at ``now_us``."""
        return self.limp_factor if now_us >= self.limp_after_us else 1.0

    def failed(self, now_us: float) -> bool:
        """True if the disk has permanently failed by ``now_us``."""
        return self.fail_at_us is not None and now_us >= self.fail_at_us


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, whole-array fault scenario.

    ``default`` applies to every disk without an entry in ``disks``.
    ``timeout_stall_multiplier`` controls how long a timed-out command
    occupies its spindle (relative to the nominal service time) before the
    device gives up — lost commands are not free.
    ``failed_response_us`` is how quickly a dead disk rejects a command.

    The four **crash points** drive the WAL / write-back layer
    (:mod:`repro.wal`); counts are 1-based over the run's lifetime:

    ``crash_after_wal_appends``
        The machine dies immediately after the Nth WAL record reaches the
        log (the record itself is durable).
    ``torn_wal_append``
        The Nth WAL append is torn: only the first half of the record's
        bytes land before the crash, so recovery must detect the invalid
        tail and truncate it.
    ``crash_after_page_writes``
        The machine dies immediately after the Nth data-page write (an
        eviction flush or checkpoint force) completes.
    ``torn_page_write``
        The Nth data-page write is torn: the durable image holds half the
        page's bytes under the full page's checksum, so recovery sees a
        checksum-failing page and must restore it from the log.
    ``crash_on_page_splits``
        The machine dies at the *start* of the Nth index page split —
        mid-transaction, with the split's page images not yet logged, and
        (under the concurrent serving layer) with every other in-flight
        writer's work torn down at the same instant.  Recovery must roll
        the unfinished split back entirely.
    """

    seed: int = 0
    default: DiskFaultProfile = field(default_factory=DiskFaultProfile)
    disks: Mapping[int, DiskFaultProfile] = field(default_factory=dict)
    timeout_stall_multiplier: float = 8.0
    failed_response_us: float = 500.0
    crash_after_wal_appends: Optional[int] = None
    torn_wal_append: Optional[int] = None
    crash_after_page_writes: Optional[int] = None
    torn_page_write: Optional[int] = None
    crash_on_page_splits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout_stall_multiplier < 1.0:
            raise ValueError(
                f"timeout_stall_multiplier must be >= 1, got {self.timeout_stall_multiplier}"
            )
        if self.failed_response_us < 0:
            raise ValueError(f"failed_response_us must be >= 0, got {self.failed_response_us}")
        for disk_id in self.disks:
            if disk_id < 0:
                raise ValueError(f"disk ids must be >= 0, got {disk_id}")
        for name in (
            "crash_after_wal_appends",
            "torn_wal_append",
            "crash_after_page_writes",
            "torn_page_write",
            "crash_on_page_splits",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (counts are 1-based), got {value}")

    #: The write-path crash-point fields, in declaration order.
    CRASH_POINT_FIELDS: ClassVar[tuple[str, ...]] = (
        "crash_after_wal_appends",
        "torn_wal_append",
        "crash_after_page_writes",
        "torn_page_write",
        "crash_on_page_splits",
    )

    def profile(self, disk_id: int) -> DiskFaultProfile:
        """Fault profile in effect for ``disk_id``."""
        return self.disks.get(disk_id, self.default)

    @property
    def has_crash_points(self) -> bool:
        """True if any write-path crash point is armed."""
        return any(getattr(self, name) is not None for name in self.CRASH_POINT_FIELDS)

    @property
    def is_clean(self) -> bool:
        """True if no fault can ever fire under this plan.

        Covers both the read path (per-disk profiles) and the write path
        (WAL / page-write crash points) — a crash-only plan is *not* clean,
        so callers keying injector wiring off this flag arm the write path.
        """
        return (
            self.default.is_clean
            and all(p.is_clean for p in self.disks.values())
            and not self.has_crash_points
        )

    def without_crash_points(self) -> "FaultPlan":
        """A copy with every crash point disarmed (read faults kept).

        Crash points are one-shot per injector; after a crash has fired and
        recovery has run, logging resumes under this stripped plan so the
        same count cannot crash the machine again.
        """
        return replace(
            self, **{name: None for name in self.CRASH_POINT_FIELDS}
        )

    # -- common scenarios ----------------------------------------------------

    @classmethod
    def uniform(
        cls,
        corrupt_rate: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Every disk shares the same error rates."""
        return cls(
            seed=seed,
            default=DiskFaultProfile(corrupt_rate=corrupt_rate, timeout_rate=timeout_rate),
        )

    @classmethod
    def limping_disk(
        cls,
        disk_id: int,
        factor: float = 10.0,
        after_us: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """One fail-slow disk in an otherwise healthy array."""
        return cls(
            seed=seed,
            disks={disk_id: DiskFaultProfile(limp_factor=factor, limp_after_us=after_us)},
        )

    @classmethod
    def disk_failure(cls, disk_id: int, at_us: float, seed: int = 0) -> "FaultPlan":
        """One disk fails permanently at ``at_us``."""
        return cls(seed=seed, disks={disk_id: DiskFaultProfile(fail_at_us=at_us)})

    @classmethod
    def crash_point(
        cls,
        wal_appends: Optional[int] = None,
        page_writes: Optional[int] = None,
        torn_wal: Optional[int] = None,
        torn_page: Optional[int] = None,
        page_splits: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """A deterministic crash/torn-write scenario (no read faults)."""
        return cls(
            seed=seed,
            crash_after_wal_appends=wal_appends,
            torn_wal_append=torn_wal,
            crash_after_page_writes=page_writes,
            torn_page_write=torn_page,
            crash_on_page_splits=page_splits,
        )
