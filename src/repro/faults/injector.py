"""Deterministic fault injection for the disk-array simulator.

The injector owns one seeded :class:`random.Random` stream per disk, drawn
from in the order that disk services requests.  Because the DES event loop
is itself deterministic (ties break on insertion order), the entire fault
history of a run is a pure function of ``(FaultPlan, workload)`` — no
wall-clock randomness anywhere, which is what makes chaos experiments
replayable bit for bit.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from .plan import DiskFaultProfile, FaultPlan

__all__ = ["ReadOutcome", "FaultDecision", "FaultInjector", "WriteOutcome", "CrashInjector"]


class ReadOutcome(enum.Enum):
    """What the injector decided a single read should experience."""

    OK = "ok"
    CORRUPT = "corrupt"  # read completes; delivered data fails its checksum
    TIMEOUT = "timeout"  # command stalls, then the device declares it lost
    DISK_FAILED = "disk-failed"  # spindle is permanently dead


@dataclass(frozen=True)
class FaultDecision:
    """Outcome plus the latency multiplier in effect for one read."""

    outcome: ReadOutcome
    latency_multiplier: float = 1.0


class FaultInjector:
    """Draws per-read fault decisions from a :class:`FaultPlan`.

    One independent stream per disk keeps the decision sequence for a disk
    a function of *that disk's* service order only, so adding load on one
    spindle never perturbs another spindle's fault history.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._streams: dict[int, random.Random] = {}
        self.injected_corruptions = 0
        self.injected_timeouts = 0
        self.injected_disk_failures = 0
        self.limped_reads = 0

    def _stream(self, disk_id: int) -> random.Random:
        stream = self._streams.get(disk_id)
        if stream is None:
            stream = random.Random((self.plan.seed << 20) ^ (disk_id + 1))
            self._streams[disk_id] = stream
        return stream

    def profile(self, disk_id: int) -> DiskFaultProfile:
        return self.plan.profile(disk_id)

    def decide(self, disk_id: int, now_us: float) -> FaultDecision:
        """Fault decision for the read starting service now on ``disk_id``."""
        profile = self.plan.profile(disk_id)
        if profile.failed(now_us):
            self.injected_disk_failures += 1
            return FaultDecision(ReadOutcome.DISK_FAILED)
        multiplier = profile.limp_multiplier(now_us)
        if multiplier > 1.0:
            self.limped_reads += 1
        if profile.timeout_rate or profile.corrupt_rate:
            # Always burn both draws so the stream stays aligned regardless
            # of which fault (if any) fires.
            stream = self._stream(disk_id)
            timeout_draw = stream.random()
            corrupt_draw = stream.random()
            if timeout_draw < profile.timeout_rate:
                self.injected_timeouts += 1
                return FaultDecision(ReadOutcome.TIMEOUT, multiplier)
            if corrupt_draw < profile.corrupt_rate:
                self.injected_corruptions += 1
                return FaultDecision(ReadOutcome.CORRUPT, multiplier)
        return FaultDecision(ReadOutcome.OK, multiplier)

    @property
    def total_injected(self) -> int:
        """All faults injected so far (excluding pure latency limping)."""
        return self.injected_corruptions + self.injected_timeouts + self.injected_disk_failures


class WriteOutcome(enum.Enum):
    """What the crash injector decided a single durable write should do."""

    OK = "ok"
    CRASH_AFTER = "crash-after"  # the write lands, then the machine dies
    TORN = "torn"  # half the bytes land, then the machine dies


class CrashInjector:
    """Counts WAL appends and page writes, firing the plan's crash points.

    Unlike the per-read :class:`FaultInjector` this draws nothing random:
    crash points are pure 1-based counters over the run's lifetime, so a
    crash at "the 7th WAL append" lands on exactly the same logical write
    every run — the property the crash-recovery tests rely on.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.wal_appends = 0
        self.page_writes = 0
        self.page_splits = 0

    def on_wal_append(self) -> WriteOutcome:
        """Decision for the WAL append about to be performed."""
        self.wal_appends += 1
        if self.plan.torn_wal_append == self.wal_appends:
            return WriteOutcome.TORN
        if self.plan.crash_after_wal_appends == self.wal_appends:
            return WriteOutcome.CRASH_AFTER
        return WriteOutcome.OK

    def on_page_write(self) -> WriteOutcome:
        """Decision for the data-page write about to be performed."""
        self.page_writes += 1
        if self.plan.torn_page_write == self.page_writes:
            return WriteOutcome.TORN
        if self.plan.crash_after_page_writes == self.page_writes:
            return WriteOutcome.CRASH_AFTER
        return WriteOutcome.OK

    def on_page_split(self) -> WriteOutcome:
        """Decision for the index page split about to begin.

        ``CRASH_AFTER`` here means "die right now, before the split's page
        images reach the log" — the split is mid-transaction, so recovery
        must roll it back wholesale.
        """
        self.page_splits += 1
        if self.plan.crash_on_page_splits == self.page_splits:
            return WriteOutcome.CRASH_AFTER
        return WriteOutcome.OK
