"""Time-phased chaos schedules that compile to :class:`FaultPlan`\\ s.

A :class:`ChaosSchedule` is the operator-facing layer above the declarative
fault plan: a list of *events on a timeline* ("disk 2 limps 10x from t=2s,
disk 0 dies at t=5s, the machine crashes at WAL append #400") rather than
per-disk probability knobs.  Schedules are written either programmatically
(:meth:`ChaosSchedule.add`) or in a one-line text grammar:

    limp disk=2 x10 @2s; kill disk=0 @5s; crash wal=400

Clauses are ``;``-separated.  Each clause is a verb plus arguments:

``limp disk=D xF [@T]``
    Disk ``D``'s service times are multiplied by ``F`` from time ``T``
    (default: from the start) onward.
``kill disk=D @T``
    Disk ``D`` fails permanently at time ``T``.
``corrupt rate=R [disk=D]`` / ``timeout rate=R [disk=D]``
    Per-read corruption / transient-timeout probability, for one disk or
    (without ``disk=``) as the array-wide default.
``crash wal=N`` / ``crash page=N``
    The machine dies immediately after the Nth WAL append / Nth durable
    page write (1-based counts over the run).
``torn wal=N`` / ``torn page=N``
    The Nth WAL append / page write is torn mid-write, then the machine
    dies — recovery must detect and repair the half-written tail.
``crash split=N``
    The machine dies at the start of the Nth index page split —
    mid-transaction, so recovery rolls the unfinished split back.

Times accept ``us``, ``ms`` and ``s`` suffixes (bare numbers are
microseconds, the storage layer's unit).  ``to_fault_plan()`` compiles the
schedule into a single seeded :class:`FaultPlan` covering both the read
path (limp/kill/corrupt/timeout) and the write path (crash/torn points),
so the whole scenario replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .plan import DiskFaultProfile, FaultPlan

__all__ = ["ChaosEvent", "ChaosSchedule"]

#: Clause verbs and the FaultPlan crash-point field each maps to.
_CRASH_VERBS = {
    ("crash", "wal"): "crash_after_wal_appends",
    ("crash", "page"): "crash_after_page_writes",
    ("crash", "split"): "crash_on_page_splits",
    ("torn", "wal"): "torn_wal_append",
    ("torn", "page"): "torn_page_write",
}

#: Crash-point targets each verb accepts (torn splits make no sense: the
#: split either began or it did not).
_CRASH_TARGETS = {"crash": ("wal", "page", "split"), "torn": ("wal", "page")}

_TIME_UNITS_US = {"us": 1.0, "ms": 1e3, "s": 1e6}


def _parse_time_us(text: str, clause: str) -> float:
    for suffix, scale in sorted(_TIME_UNITS_US.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * scale
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad time {text!r} in chaos clause {clause!r}") from None


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: what goes wrong, where, and when."""

    kind: str  # "limp" | "kill" | "corrupt" | "timeout" | a crash-point field
    disk: Optional[int] = None
    at_us: float = 0.0
    factor: float = 1.0
    rate: float = 0.0
    count: Optional[int] = None

    def describe(self) -> str:
        where = f"disk {self.disk}" if self.disk is not None else "all disks"
        if self.kind == "limp":
            return f"{where} limps x{self.factor:g} from t={self.at_us:g}us"
        if self.kind == "kill":
            return f"{where} dies at t={self.at_us:g}us"
        if self.kind in ("corrupt", "timeout"):
            return f"{where}: {self.kind} rate {self.rate:g}"
        return f"{self.kind.replace('_', ' ')} #{self.count}"


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered set of chaos events plus the seed that replays them."""

    events: tuple[ChaosEvent, ...] = ()
    seed: int = 0

    # -- construction --------------------------------------------------------

    def add(self, event: ChaosEvent) -> "ChaosSchedule":
        return replace(self, events=(*self.events, event))

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosSchedule":
        """Build a schedule from the one-line clause grammar (see module doc)."""
        events: list[ChaosEvent] = []
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            events.append(cls._parse_clause(clause))
        # An empty schedule is legal: it compiles to a clean FaultPlan, the
        # natural control arm for a chaos experiment.
        return cls(events=tuple(events), seed=seed)

    @staticmethod
    def _parse_clause(clause: str) -> ChaosEvent:
        tokens = clause.split()
        verb, args = tokens[0], tokens[1:]
        fields: dict = {}
        for token in args:
            if token.startswith("@"):
                fields["at_us"] = _parse_time_us(token[1:], clause)
            elif token.startswith("x"):
                fields["factor"] = float(token[1:])
            elif "=" in token:
                key, value = token.split("=", 1)
                fields[key] = value
            else:
                raise ValueError(f"bad token {token!r} in chaos clause {clause!r}")
        if verb == "limp":
            if "disk" not in fields or "factor" not in fields:
                raise ValueError(f"limp needs disk=D and xF: {clause!r}")
            return ChaosEvent(
                "limp", disk=int(fields["disk"]),
                factor=fields["factor"], at_us=fields.get("at_us", 0.0),
            )
        if verb == "kill":
            if "disk" not in fields or "at_us" not in fields:
                raise ValueError(f"kill needs disk=D and @T: {clause!r}")
            return ChaosEvent("kill", disk=int(fields["disk"]), at_us=fields["at_us"])
        if verb in ("corrupt", "timeout"):
            if "rate" not in fields:
                raise ValueError(f"{verb} needs rate=R: {clause!r}")
            disk = int(fields["disk"]) if "disk" in fields else None
            return ChaosEvent(verb, disk=disk, rate=float(fields["rate"]))
        if verb in ("crash", "torn"):
            allowed = _CRASH_TARGETS[verb]
            targets = [target for target in allowed if target in fields]
            if len(targets) != 1:
                options = " or ".join(f"{t}=N" for t in allowed)
                raise ValueError(f"{verb} needs exactly one of {options}: {clause!r}")
            (target,) = targets
            return ChaosEvent(_CRASH_VERBS[(verb, target)], count=int(fields[target]))
        raise ValueError(f"unknown chaos verb {verb!r} in clause {clause!r}")

    # -- inspection ----------------------------------------------------------

    @property
    def has_crash_points(self) -> bool:
        return any(event.kind in _CRASH_VERBS.values() for event in self.events)

    @property
    def referenced_disks(self) -> tuple[int, ...]:
        """Every disk index any clause names, sorted (validators range-check
        these against the array size before a simulation ever starts)."""
        return tuple(sorted({e.disk for e in self.events if e.disk is not None}))

    def describe(self) -> str:
        return "; ".join(event.describe() for event in self.events)

    # -- compilation ---------------------------------------------------------

    def to_fault_plan(self) -> FaultPlan:
        """Compile to one seeded :class:`FaultPlan`.

        Per-disk events merge into that disk's profile; rate events without
        a disk set the array-wide default.  Because ``FaultPlan.default``
        only applies to disks *without* an entry, every per-disk profile is
        seeded from the array-wide rates first (a per-disk rate clause then
        overrides them for that disk).  Conflicting settings (two limp
        clauses for the same disk, two ``crash wal`` clauses) raise — a
        schedule must be unambiguous to be replayable.
        """
        default: dict = {}
        per_disk: dict[int, dict] = {}
        crash_points: dict[str, int] = {}

        def merge(target: dict, key: str, value, clause: str) -> None:
            if key in target and target[key] != value:
                raise ValueError(f"conflicting chaos settings for {clause}")
            target[key] = value

        for event in self.events:
            if event.kind == "limp":
                profile = per_disk.setdefault(event.disk, {})
                merge(profile, "limp_factor", event.factor, f"limp disk={event.disk}")
                merge(profile, "limp_after_us", event.at_us, f"limp disk={event.disk}")
            elif event.kind == "kill":
                profile = per_disk.setdefault(event.disk, {})
                merge(profile, "fail_at_us", event.at_us, f"kill disk={event.disk}")
            elif event.kind in ("corrupt", "timeout"):
                key = f"{event.kind}_rate"
                if event.disk is None:
                    merge(default, key, event.rate, event.kind)
                else:
                    profile = per_disk.setdefault(event.disk, {})
                    merge(profile, key, event.rate, f"{event.kind} disk={event.disk}")
            else:  # a crash-point field name
                merge(crash_points, event.kind, event.count, event.kind)
        # Seed per-disk profiles with the array-wide rates: a disk with its
        # own entry would otherwise silently escape the default profile.
        disks = {}
        for disk, profile in per_disk.items():
            disks[disk] = DiskFaultProfile(**{**default, **profile})
        return FaultPlan(
            seed=self.seed,
            default=DiskFaultProfile(**default),
            disks=disks,
            **crash_points,
        )
