"""Typed exceptions for the storage fault model.

Every failure the fault injector can surface — and every failure the
resilience layer can conclude — has its own exception class, so callers can
distinguish "retry might help" (:class:`DiskTimeoutError`,
:class:`PageChecksumError`) from "this spindle is gone"
(:class:`DiskFailedError`) from "recovery was attempted and exhausted"
(:class:`ReadFailedError`).  All inherit :class:`StorageFault`.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "StorageFault",
    "DiskTimeoutError",
    "DiskFailedError",
    "PageChecksumError",
    "ReadFailedError",
    "SimulatedCrash",
]


class StorageFault(Exception):
    """Base class for every storage-stack failure."""


class DiskTimeoutError(StorageFault):
    """A disk command stalled and was declared lost (transient).

    The spindle itself survives; retrying the read — on this disk or a
    mirror — is expected to succeed.
    """

    def __init__(self, disk_id: int, page_id: int, stalled_us: float) -> None:
        self.disk_id = disk_id
        self.page_id = page_id
        self.stalled_us = stalled_us
        super().__init__(
            f"read of page {page_id} on disk {disk_id} timed out after {stalled_us:.0f}us"
        )


class DiskFailedError(StorageFault):
    """The disk has failed permanently; no command on it will ever succeed."""

    def __init__(self, disk_id: int, page_id: int, failed_at_us: float) -> None:
        self.disk_id = disk_id
        self.page_id = page_id
        self.failed_at_us = failed_at_us
        super().__init__(
            f"disk {disk_id} failed permanently at t={failed_at_us:.0f}us "
            f"(read of page {page_id} rejected)"
        )


class PageChecksumError(StorageFault):
    """A page arrived at the buffer pool with a checksum mismatch.

    Raised at the buffer-pool fill boundary, before the bad page becomes
    visible to any reader; a retry re-reads the page (or its mirror).
    """

    def __init__(self, page_id: int, expected: int, actual: int) -> None:
        self.page_id = page_id
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"checksum mismatch on page {page_id}: "
            f"expected {expected:#010x}, got {actual:#010x}"
        )


class SimulatedCrash(StorageFault):
    """The machine died at an injected crash point.

    Raised by the WAL / write-back layer when a :class:`FaultPlan` crash
    point fires (after the Nth WAL append or page write, or on a torn
    write).  Everything volatile — buffer pool contents, in-memory page
    objects, the unforced WAL tail — is gone; only the durable image
    captured by :meth:`WalManager.crash_state` survives for recovery.
    """

    def __init__(self, point: str, count: int) -> None:
        self.point = point
        self.count = count
        super().__init__(f"simulated crash at {point} #{count}")


class ReadFailedError(StorageFault):
    """A reliable read gave up: every attempt allowed by the policy failed."""

    def __init__(self, page_id: int, attempts: int, last_error: Optional[BaseException]) -> None:
        self.page_id = page_id
        self.attempts = attempts
        self.last_error = last_error
        detail = f": last error: {last_error}" if last_error is not None else ""
        super().__init__(f"read of page {page_id} failed after {attempts} attempts{detail}")
