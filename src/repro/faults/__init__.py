"""Fault injection and resilience for the storage/DBMS stack.

Declarative :class:`FaultPlan`\\ s describe per-disk error rates, limping
latency and permanent failures; a seeded :class:`FaultInjector` replays them
deterministically on the DES clock.  Detection (page checksums) and recovery
(retries, hedged reads, degraded-mode scans) live in :mod:`repro.storage`
and :mod:`repro.dbms`, built on the typed exceptions defined here.
"""

from .errors import (
    DiskFailedError,
    DiskTimeoutError,
    PageChecksumError,
    ReadFailedError,
    SimulatedCrash,
    StorageFault,
)
from .injector import CrashInjector, FaultDecision, FaultInjector, ReadOutcome, WriteOutcome
from .plan import DiskFaultProfile, FaultPlan
from .schedule import ChaosEvent, ChaosSchedule

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "DiskFaultProfile",
    "FaultPlan",
    "FaultDecision",
    "FaultInjector",
    "CrashInjector",
    "ReadOutcome",
    "WriteOutcome",
    "StorageFault",
    "DiskTimeoutError",
    "DiskFailedError",
    "PageChecksumError",
    "ReadFailedError",
    "SimulatedCrash",
]
