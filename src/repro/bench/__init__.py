"""Experiment harness: one entry per paper table/figure, plus ablations."""

from .cache_runner import (
    INDEX_KINDS,
    PAPER_INDEX_ORDER,
    MeasuredPhase,
    build_tree,
    make_index,
    measure_operations,
)
from .figures import ALL_EXPERIMENTS
from .io_scan import ScanTiming, timed_range_scan
from .results import FigureResult

__all__ = [
    "INDEX_KINDS",
    "PAPER_INDEX_ORDER",
    "MeasuredPhase",
    "build_tree",
    "make_index",
    "measure_operations",
    "ALL_EXPERIMENTS",
    "ScanTiming",
    "timed_range_scan",
    "FigureResult",
]
