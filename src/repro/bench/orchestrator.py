"""Process-parallel figure sweeps with a deterministic merge.

Most figure functions are parameter sweeps over independent cells (a page
size, a bulkload factor, a panel): each cell builds its own trees and its
own :class:`~repro.mem.MemorySystem`, so cells share no state and can run
in separate worker processes.  This module knows how to split each
experiment into cells, fan the cells over a ``multiprocessing`` pool, and
merge the partial results back **in cell order** — the output is a pure
function of the experiment and its parameters, never of worker scheduling,
so ``--jobs 4`` is byte-identical to ``--jobs 1``.

Determinism contract:

* A cell planner returns the cells in a canonical order (the same nesting
  order as the experiment function's own loops), and each cell's keyword
  arguments select exactly one slice of the sweep.
* Workers are pure: cell in, rows out.  Results are merged by cell index
  (``Pool.map`` order), not completion order.
* ``jobs=1`` runs the cells inline but through the *same* plan/merge path,
  so the row order cannot depend on the execution strategy.

Experiments without a planner (single-measurement figures, or sweeps whose
axes interact — e.g. fig11 appends the optimizer's selected width to the
sweep) run as one cell.
"""

from __future__ import annotations

import inspect
import multiprocessing
from typing import Callable, Optional, Sequence

from .figures import ALL_EXPERIMENTS
from .results import FigureResult

__all__ = [
    "plan_cells",
    "run_experiment",
    "map_cells",
    "normalize_overrides",
    "PARALLEL_EXPERIMENTS",
]


def normalize_overrides(name: str, overrides: Optional[dict]) -> dict:
    """Check ``--set`` overrides against the experiment's signature.

    Two failure modes used to slip through silently and die deep inside a
    worker (or worse, not die at all): an override name the experiment
    doesn't accept, and a scalar value for a *sequence* axis (``--set
    sizes=2000`` parses to the int ``2000``, which the cell planner would
    then try to iterate).  Unknown names raise here, before any cell
    runs, listing the valid parameters; scalars aimed at sequence axes
    are coerced to one-element tuples.
    """
    if not overrides:
        return {}
    fn = ALL_EXPERIMENTS[name]
    params = {
        pname: param.default
        for pname, param in inspect.signature(fn).parameters.items()
        if param.default is not inspect.Parameter.empty
    }
    unknown = sorted(set(overrides) - set(params))
    if unknown:
        raise ValueError(
            f"experiment {name!r} has no parameter(s) {', '.join(unknown)}; "
            f"valid --set names: {', '.join(sorted(params))}"
        )
    normalized = {}
    for key, value in overrides.items():
        if isinstance(params[key], (tuple, list)) and not isinstance(
            value, (tuple, list)
        ):
            value = (value,)
        normalized[key] = value
    return normalized


def _effective_params(name: str, overrides: Optional[dict]) -> dict:
    """The experiment function's defaults overlaid with user overrides."""
    fn = ALL_EXPERIMENTS[name]
    params = {
        pname: param.default
        for pname, param in inspect.signature(fn).parameters.items()
        if param.default is not inspect.Parameter.empty
    }
    params.update(normalize_overrides(name, overrides))
    return params


def _product_planner(*axes: str) -> Callable[[dict], list[dict]]:
    """Split the named sequence axes into their cartesian product of cells.

    Cell order is the nested iteration order of the axes (first axis is the
    outermost loop), matching the row order the un-split function produces.
    """

    def plan(params: dict) -> list[dict]:
        cells = [dict(params)]
        for axis in axes:
            values = params[axis]
            cells = [
                {**cell, axis: (value,)} for cell in cells for value in values
            ]
        return cells

    return plan


#: Experiment id -> cell planner.  Anything not listed runs as one cell.
#: A sweep is only splittable when its cells share no mutable state: fig13
#: and fig14 draw their insert/delete keys from one workload whose RNG
#: state threads through the panels, so they stay single-cell — a split
#: would change which keys each panel draws.
PARALLEL_EXPERIMENTS: dict[str, Callable[[dict], list[dict]]] = {
    "fig10": _product_planner("page_sizes", "sizes"),
    "fig12": _product_planner("bulkload_factors"),
    "fig16": _product_planner("page_sizes"),
    "fig17": _product_planner("page_sizes"),
    # Each offered-load cell builds its own MiniDbms + DbmsServer, so the
    # serving saturation curve fans out one cell per offered load.
    "serve": _product_planner("offered_loads"),
    # Both admission modes of one offered load share a cell (the note
    # reporting their throughput ratio needs the pair together).
    "serve-batch": _product_planner("offered_loads"),
    # Each chaos mode builds its own MiniDbms + DbmsServer + fault plan.
    "chaos": _product_planner("modes"),
    # Each (shard count, placement, offered load) cell builds its own
    # key-range fleet on its own DES environment; the one-shard
    # "optimized" cell is a deliberate no-op (it emits zero rows) in both
    # the split and unsplit paths, so merges stay byte-identical.
    "shard": _product_planner("shard_counts", "placements", "offered_loads"),
}


def plan_cells(name: str, overrides: Optional[dict] = None) -> list[dict]:
    """Split an experiment into per-cell keyword-argument dicts."""
    params = _effective_params(name, overrides)
    planner = PARALLEL_EXPERIMENTS.get(name)
    if planner is None:
        return [params]
    return planner(params)


def _run_cell(task: tuple[str, dict]) -> dict:
    """Worker entry point: run one cell, return a picklable result dict.

    The attached trace (``traced-scan`` only) is not picklable and is
    dropped here; single-cell experiments run inline and keep it.
    """
    name, kwargs = task
    result = ALL_EXPERIMENTS[name](**kwargs)
    return {
        "description": result.description,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
        "trace": None,
    }


def _merge(name: str, partials: Sequence[dict]) -> FigureResult:
    """Concatenate cell results in cell order (never completion order)."""
    first = partials[0]
    merged = FigureResult(name, first["description"], first["columns"])
    for partial in partials:
        merged.rows.extend(partial["rows"])
        for note in partial["notes"]:
            if note not in merged.notes:
                merged.notes.append(note)
        if partial["trace"] is not None:
            merged.trace = partial["trace"]
    return merged


def map_cells(worker: Callable, tasks: Sequence, jobs: int = 1) -> list:
    """Map ``worker`` over ``tasks``, optionally across worker processes.

    The deterministic core shared by :func:`run_experiment` and the
    scenario matrix runner (:mod:`repro.scenario`): results come back in
    *task* order (``Pool.map`` order, never completion order), and
    ``jobs=1`` runs the identical tasks inline, so the output is a pure
    function of the task list.  ``worker`` must be a module-level
    function and the tasks picklable when ``jobs > 1``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(worker, list(tasks), chunksize=1)


def run_experiment(
    name: str,
    overrides: Optional[dict] = None,
    jobs: int = 1,
) -> FigureResult:
    """Run an experiment, fanning its cells over ``jobs`` worker processes.

    ``jobs=1`` executes the same cells inline; any ``jobs`` value yields
    the identical :class:`FigureResult`.
    """
    if name not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cells = plan_cells(name, overrides)
    tasks = [(name, cell) for cell in cells]
    if jobs == 1 or len(tasks) == 1:
        partials = []
        for task in tasks:
            result = ALL_EXPERIMENTS[name](**task[1])
            partials.append(
                {
                    "description": result.description,
                    "columns": list(result.columns),
                    "rows": result.rows,
                    "notes": result.notes,
                    "trace": result.trace,
                }
            )
    else:
        partials = map_cells(_run_cell, tasks, jobs)
    return _merge(name, partials)
