"""Command-line entry point: ``python -m repro.bench <experiment> [...]``.

Run ``python -m repro.bench list`` to see every experiment id; ``all`` runs
the full set.  Figure functions accept keyword overrides via ``--set
name=value`` (ints, floats and comma-separated int tuples are parsed).
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_EXPERIMENTS


def _parse_value(text: str):
    if "," in text:
        return tuple(int(part) for part in text.split(",") if part)
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a keyword parameter of the experiment function",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells over N worker processes; results "
        "are merged deterministically, so any N gives identical output",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write results as JSON (one object per experiment)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_path",
        metavar="FILE",
        help="write the Chrome-trace JSON attached to the experiment's result "
        "(open in chrome://tracing or ui.perfetto.dev); currently only "
        "'traced-scan' attaches one",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = {}
    for item in args.overrides:
        if "=" not in item:
            parser.error(f"--set expects NAME=VALUE, got {item!r}")
        name, __, value = item.partition("=")
        overrides[name] = _parse_value(value)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from .orchestrator import run_experiment

    collected = []
    for name in names:
        if name not in ALL_EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; try 'list'")
        started = time.time()
        result = run_experiment(
            name, overrides if len(names) == 1 else None, jobs=args.jobs
        )
        print(result.format_table())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        collected.append(result)
    if args.json_path:
        import json

        payload = [
            {
                "name": r.name,
                "description": r.description,
                "columns": list(r.columns),
                "rows": r.rows,
                "notes": r.notes,
            }
            for r in collected
        ]
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_path}")
    if args.trace_path:
        traced = [r for r in collected if r.trace is not None]
        if not traced:
            print(
                f"--trace-out: no experiment in {names} attached a trace "
                "(try 'traced-scan')",
                file=sys.stderr,
            )
            return 1
        traced[-1].trace.write(args.trace_path)
        print(f"wrote {args.trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
