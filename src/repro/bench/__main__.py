"""Command-line entry point: ``python -m repro.bench <experiment> [...]``.

Run ``python -m repro.bench list`` to see every experiment id; ``all`` runs
the full set.  Figure functions accept keyword overrides via ``--set
name=value`` (ints, floats and comma-separated int tuples are parsed);
unknown names and overrides that no experiment will consume are errors,
not silent no-ops.

``python -m repro.bench scenario --matrix FILE`` runs a declarative
scenario matrix (see :mod:`repro.scenario`): every spec is validated
before any simulation starts, cells fan over ``--jobs`` workers with a
deterministic merge, and ``--csv``/``--md``/``--json`` write the
rendered artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_EXPERIMENTS


def _parse_value(text: str):
    if "," in text:
        return tuple(int(part) for part in text.split(",") if part)
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _scenario_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench scenario",
        description="Run a declarative scenario matrix (validated before any "
        "simulation; deterministic across --jobs values).",
    )
    parser.add_argument("--matrix", required=True, metavar="FILE",
                        help="TOML matrix: optional [defaults] + [[scenario]] tables")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan scenario cells over N worker processes")
    parser.add_argument("--csv", metavar="FILE", help="write all rows as one flat CSV")
    parser.add_argument("--md", metavar="FILE",
                        help="write a markdown report (one table per scenario)")
    parser.add_argument("--json", dest="json_path", metavar="FILE",
                        help="write the full payload (specs echoed next to rows)")
    parser.add_argument("--validate-only", action="store_true",
                        help="validate every spec and exit without simulating")
    parser.add_argument("--gate", action="store_true",
                        help="determinism gate: re-run the matrix (and a --jobs 1 "
                        "pass when --jobs > 1) and require byte-identical payloads")
    parser.add_argument("--budget-s", type=float, default=None, metavar="SECONDS",
                        help="fail (exit 3) if the matrix takes longer than this "
                        "wall-clock budget; results are still written first")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    import json as json_mod

    from ..scenario import (
        ScenarioError,
        load_matrix,
        matrix_payload,
        matrix_to_csv,
        matrix_to_markdown,
        run_matrix,
        validate_matrix,
    )

    try:
        specs = load_matrix(args.matrix)
        validate_matrix(specs)
    except ScenarioError as exc:
        for problem in exc.problems:
            print(f"invalid scenario matrix: {problem}", file=sys.stderr)
        return 2
    if args.validate_only:
        print(f"{args.matrix}: {len(specs)} scenario(s) valid "
              f"({', '.join(spec.name for spec in specs)})")
        return 0

    started = time.time()
    results = run_matrix(specs, jobs=args.jobs)
    elapsed = time.time() - started
    payload = matrix_payload(specs, results)
    payload_bytes = json_mod.dumps(payload, indent=2, sort_keys=True).encode()

    if args.gate:
        from .determinism import assert_identical_bytes

        gate_jobs = [args.jobs, 1] if args.jobs > 1 else [1]
        for n in gate_jobs:
            rerun = matrix_payload(specs, run_matrix(specs, jobs=n))
            assert_identical_bytes(
                payload_bytes,
                json_mod.dumps(rerun, indent=2, sort_keys=True).encode(),
                f"matrix payloads (--jobs {args.jobs} vs --jobs {n} re-run)",
            )
        print(f"determinism gate passed: {len(gate_jobs)} re-run(s) byte-identical")

    for result in results:
        print(result.format_table())
        print()
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(matrix_to_csv(results))
        print(f"wrote {args.csv}")
    if args.md:
        with open(args.md, "w") as handle:
            handle.write(matrix_to_markdown(specs, results))
        print(f"wrote {args.md}")
    if args.json_path:
        with open(args.json_path, "wb") as handle:
            handle.write(payload_bytes + b"\n")
        print(f"wrote {args.json_path}")
    print(f"[scenario matrix of {len(specs)} finished in {elapsed:.1f}s]")
    if args.budget_s is not None and elapsed > args.budget_s:
        print(
            f"wall-clock budget exceeded: {elapsed:.1f}s > {args.budget_s:g}s "
            "(trim the matrix or raise --budget-s)",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a keyword parameter of the experiment function",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells over N worker processes; results "
        "are merged deterministically, so any N gives identical output",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="also write results as JSON (one object per experiment)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_path",
        metavar="FILE",
        help="write the Chrome-trace JSON attached to the experiment's result "
        "(open in chrome://tracing or ui.perfetto.dev); currently only "
        "'traced-scan' attaches one",
    )
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["scenario"]:
        return _scenario_main(argv[1:])
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = {}
    for item in args.overrides:
        if "=" not in item:
            parser.error(f"--set expects NAME=VALUE, got {item!r}")
        name, __, value = item.partition("=")
        overrides[name] = _parse_value(value)
    if overrides and len(names) != 1:
        # 'all' used to accept --set and silently drop it; different
        # experiments disagree on parameter names, so refuse instead.
        parser.error(
            "--set only applies to a single experiment; "
            "'all' would silently ignore the override(s)"
        )

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from .orchestrator import normalize_overrides, run_experiment

    collected = []
    for name in names:
        if name not in ALL_EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; try 'list'")
        try:
            checked = normalize_overrides(name, overrides)
        except ValueError as exc:
            # Unknown --set names die here, before any cell runs.
            parser.error(str(exc))
        started = time.time()
        result = run_experiment(name, checked, jobs=args.jobs)
        print(result.format_table())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        collected.append(result)
    if args.json_path:
        import json

        payload = [
            {
                "name": r.name,
                "description": r.description,
                "columns": list(r.columns),
                "rows": r.rows,
                "notes": r.notes,
            }
            for r in collected
        ]
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_path}")
    if args.trace_path:
        traced = [r for r in collected if r.trace is not None]
        if not traced:
            print(
                f"--trace-out: no experiment in {names} attached a trace "
                "(try 'traced-scan')",
                file=sys.stderr,
            )
            return 1
        traced[-1].trace.write(args.trace_path)
        print(f"wrote {args.trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
