"""Result containers and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """Rows reproducing one of the paper's tables or figures."""

    name: str
    description: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Optional attached :class:`repro.obs.QueryTrace` (``--trace-out`` writes it).
    trace: Any = field(default=None, repr=False)

    def add(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> list[dict[str, Any]]:
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                out.append(row)
        return out

    def format_table(self) -> str:
        """Render as a fixed-width text table (paper-style output)."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.name}: {self.description} ==",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
