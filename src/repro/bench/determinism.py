"""The determinism gate: byte-compare repeated runs of a seeded command.

Every serving experiment in this repo carries the same contract — output
is a pure function of the spec and the seed, never of wall-clock, worker
scheduling or ``--jobs``.  Each smoke job used to re-implement the check
as three lines of shell (run twice, ``diff``); this module is the one
implementation they all share, used two ways:

* in-process, by the scenario runner's ``--gate`` flag
  (:func:`assert_identical_bytes`), and
* as a CLI, ``python benchmarks/determinism_gate.py``, by the CI smoke
  cells (:func:`rerun_gate` / :func:`jobs_gate`).

Stdout comparisons normalize the one legitimately nondeterministic line
— the ``finished in 1.23s`` wall-clock trailer — so the gate tests the
claim we actually make (simulated results are deterministic), not one we
don't (the host machine is).
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "normalize_stdout",
    "assert_identical_bytes",
    "rerun_gate",
    "jobs_gate",
    "DeterminismError",
]

#: Wall-clock trailer lines like ``finished in 1.23s`` (any count of them).
_WALLCLOCK = re.compile(rb"finished in [0-9.]+s")


class DeterminismError(AssertionError):
    """Two runs that must be byte-identical were not."""


def normalize_stdout(data: bytes) -> bytes:
    """Strip the wall-clock trailer so only simulated output is compared."""
    return _WALLCLOCK.sub(b"finished in Xs", data)


def _first_divergence(a: bytes, b: bytes) -> str:
    a_lines, b_lines = a.splitlines(), b.splitlines()
    for index, (la, lb) in enumerate(zip(a_lines, b_lines)):
        if la != lb:
            return (
                f"first divergence at line {index + 1}:\n"
                f"  run 1: {la[:200]!r}\n  run 2: {lb[:200]!r}"
            )
    return (
        f"one output is a prefix of the other "
        f"({len(a_lines)} vs {len(b_lines)} lines)"
    )


def assert_identical_bytes(a: bytes, b: bytes, label: str = "runs") -> None:
    """Raise :class:`DeterminismError` with the first diverging line."""
    if a != b:
        raise DeterminismError(
            f"determinism gate failed: {label} differ; {_first_divergence(a, b)}"
        )


def _run(argv: Sequence[str]) -> bytes:
    proc = subprocess.run(argv, capture_output=True)
    if proc.returncode != 0:
        raise DeterminismError(
            f"determinism gate: command failed (exit {proc.returncode}): "
            f"{shlex.join(argv)}\n{proc.stderr.decode(errors='replace')[-2000:]}"
        )
    return proc.stdout


def rerun_gate(
    command: Sequence[str], artifact: Optional[str] = None, out_token: str = "{out}"
) -> bytes:
    """Run ``command`` twice; its output file and stdout must match.

    ``command`` may contain ``{out}`` placeholders; each run gets its own
    substituted temp path and the two files are byte-compared (stdout is
    compared too, wall-clock-normalized).  With ``artifact`` set, the
    verified file is copied there — the CI smoke cells use this to gate
    *and* produce their uploadable payload in one step.  Returns the
    verified file's bytes (or stdout when no ``{out}`` appears).
    """
    uses_out = any(out_token in part for part in command)
    with tempfile.TemporaryDirectory(prefix="determinism-gate-") as tmp:
        outputs, stdouts = [], []
        for run_index in (1, 2):
            out_path = Path(tmp) / f"run{run_index}.out"
            argv = [part.replace(out_token, str(out_path)) for part in command]
            stdout = normalize_stdout(_run(argv))
            # Commands echo their output path ("wrote <file>"); the two
            # runs get different temp paths by design, so mask them.
            stdout = stdout.replace(str(out_path).encode(), b"<out>")
            stdouts.append(stdout)
            if uses_out:
                if not out_path.exists():
                    raise DeterminismError(
                        f"determinism gate: command did not write its {out_token} "
                        f"file: {shlex.join(argv)}"
                    )
                outputs.append(out_path.read_bytes())
        assert_identical_bytes(stdouts[0], stdouts[1], "stdout of two same-seed runs")
        if uses_out:
            assert_identical_bytes(outputs[0], outputs[1], "outputs of two same-seed runs")
        payload = outputs[0] if uses_out else stdouts[0]
    if artifact is not None:
        target = Path(artifact)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
    return payload


def jobs_gate(command: Sequence[str], jobs: Sequence[int] = (1, 2)) -> bytes:
    """Run ``command --jobs N`` for each N; stdout must be byte-identical.

    This is the orchestrator's core promise — worker scheduling can never
    leak into results — checked end-to-end through the real CLI.
    """
    baseline = None
    for n in jobs:
        stdout = normalize_stdout(_run([*command, "--jobs", str(n)]))
        if baseline is None:
            baseline = stdout
        else:
            assert_identical_bytes(
                baseline, stdout, f"--jobs {jobs[0]} vs --jobs {n} stdout"
            )
    assert baseline is not None
    return baseline


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI shared by every CI smoke cell; see ``--help`` for the two modes."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="determinism_gate",
        description=(
            "Gate a seeded command on byte-identical output: 'rerun' runs it "
            "twice and diffs (use {out} for the output file), 'jobs' appends "
            "--jobs 1 / --jobs 2 and diffs stdout."
        ),
    )
    sub = parser.add_subparsers(dest="mode", required=True)
    rerun = sub.add_parser("rerun", help="same command twice, outputs must match")
    rerun.add_argument("--artifact", help="copy the verified output file here")
    rerun.add_argument("command", nargs=argparse.REMAINDER)
    jobs = sub.add_parser("jobs", help="--jobs 1 vs --jobs 2, stdout must match")
    jobs.add_argument("command", nargs=argparse.REMAINDER)
    args = parser.parse_args(argv)
    command = list(args.command)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given (put it after the mode, e.g. 'rerun -- python ...')")
    try:
        if args.mode == "rerun":
            rerun_gate(command, artifact=args.artifact)
            print(f"determinism gate passed: two runs byte-identical ({shlex.join(command)})")
        else:
            jobs_gate(command)
            print(f"determinism gate passed: --jobs 1 == --jobs 2 ({shlex.join(command)})")
    except DeterminismError as exc:
        print(exc, file=sys.stderr)
        return 1
    return 0
