"""Shared machinery for the cache-performance experiments (Figures 10-15).

Every cache experiment follows the paper's Section 4.2 recipe: bulkload a
tree (untraced), clear the caches, run a batch of operations under the
memory-hierarchy simulator, and report simulated cycles.  This module
provides the index registry and the build/measure helpers so each figure is
a few lines of parameter sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from ..baselines.disk_btree import DiskBPlusTree
from ..baselines.micro_index import MicroIndexTree
from ..baselines.pbtree import PrefetchingBPlusTree
from ..btree.base import Index
from ..btree.context import TreeEnvironment
from ..core.cache_first import CacheFirstFpTree
from ..core.disk_first import DiskFirstFpTree
from ..mem.hierarchy import MemorySystem
from ..mem.stats import MemoryStats

__all__ = [
    "INDEX_KINDS",
    "PAPER_INDEX_ORDER",
    "make_index",
    "build_tree",
    "measure_operations",
    "MeasuredPhase",
]

#: Index kinds in the order the paper's figures present them.
PAPER_INDEX_ORDER = ("disk", "micro", "fp-disk", "fp-cache")

INDEX_KINDS: dict[str, str] = {
    "disk": "disk-optimized B+tree",
    "micro": "micro-indexing",
    "fp-disk": "disk-first fpB+tree",
    "fp-cache": "cache-first fpB+tree",
    "pbtree": "pB+tree (memory-resident)",
}


def make_index(
    kind: str,
    page_size: int,
    mem: Optional[MemorySystem] = None,
    buffer_pages: int = 8192,
    num_keys_hint: int = 1_000_000,
) -> Index:
    """Construct one of the five index structures."""
    if kind == "pbtree":
        return PrefetchingBPlusTree(mem=mem, page_size=page_size)
    env = TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=buffer_pages)
    if kind == "disk":
        return DiskBPlusTree(env)
    if kind == "micro":
        return MicroIndexTree(env)
    if kind == "fp-disk":
        return DiskFirstFpTree(env)
    if kind == "fp-cache":
        return CacheFirstFpTree(env, num_keys_hint=num_keys_hint)
    raise ValueError(f"unknown index kind {kind!r}; choose from {sorted(INDEX_KINDS)}")


def build_tree(
    kind: str,
    keys: np.ndarray,
    tids: np.ndarray,
    fill: float = 1.0,
    page_size: int = 16 * 1024,
    mem: Optional[MemorySystem] = None,
    buffer_pages: int = 8192,
) -> Index:
    """Bulkload a fresh index of the given kind, untraced."""
    index = make_index(kind, page_size, mem, buffer_pages, num_keys_hint=len(keys))
    if mem is not None:
        with mem.paused():
            index.bulkload(keys, tids, fill=fill)
    else:
        index.bulkload(keys, tids, fill=fill)
    return index


@dataclass(frozen=True)
class MeasuredPhase:
    """Simulated-cycle outcome of an operation batch."""

    operations: int
    stats: MemoryStats

    @property
    def cycles_per_op(self) -> float:
        return self.stats.total_cycles / max(1, self.operations)

    @property
    def total_cycles(self) -> float:
        return self.stats.total_cycles


def measure_operations(
    mem: MemorySystem,
    operation: Callable[[int], object],
    arguments: Iterable,
    clear_caches: bool = True,
    progress: Optional[Callable[[int, int], object]] = None,
) -> MeasuredPhase:
    """Run a batch under measurement (cold caches, as in the paper).

    ``arguments`` that already know their length (lists, tuples, ranges)
    are iterated in place; only true one-shot iterators are materialized.
    ``progress``, if given, is called as ``progress(done, total)`` after
    every operation — the callback runs outside the simulated cost model,
    so it cannot perturb measured cycles.
    """
    try:
        count = len(arguments)  # type: ignore[arg-type]
        items = arguments
    except TypeError:
        items = list(arguments)
        count = len(items)
    if clear_caches:
        mem.clear_caches()
    with mem.measure() as phase:
        if progress is None:
            for item in items:
                operation(item)
        else:
            done = 0
            for item in items:
                operation(item)
                done += 1
                progress(done, count)
    return MeasuredPhase(operations=count, stats=phase)
