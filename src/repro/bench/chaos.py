"""The chaos experiment: resilient vs bare serving under one fault storm.

Two rows, same seeded :class:`~repro.faults.ChaosSchedule` — latent-sector
corruption everywhere, a limping spindle, a dead disk, and a mid-run
crash at a WAL append:

``baseline``
    Clients give up on the first failed attempt; no breaker, no brownout.
``resilient``
    Clients retry with backoff and a budget, a circuit breaker sheds load
    client-side while the server is drowning, and the brownout ladder
    degrades scans to protect latency.

Both rows survive the crash (WAL recovery, zero acknowledged inserts
lost, conservation intact); the resilient row completes strictly more
operations *and* delivers strictly higher goodput, which is the point of
the client-side machinery.  Each mode builds its own substrate, so the
two cells parallelize under ``--jobs``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..faults import ChaosSchedule
from ..serve import BreakerConfig, BrownoutConfig, ChaosRunner, ClientRetryPolicy
from ..workloads.ops import OpMix
from .results import FigureResult

__all__ = ["DEFAULT_CHAOS_SCHEDULE", "chaos_sweep"]

#: The default fault storm: array-wide latent corruption punching through
#: the storage-level retries, a limping disk, a dead disk (survivable via
#: mirroring), and a crash at the twentieth WAL append.
DEFAULT_CHAOS_SCHEDULE = (
    "corrupt rate=0.25; limp disk=2 x8 @0.05s; kill disk=0 @0.2s; crash wal=20"
)


def chaos_sweep(
    modes: Sequence[str] = ("baseline", "resilient"),
    schedule_text: str = DEFAULT_CHAOS_SCHEDULE,
    schedule_seed: int = 5,
    num_rows: int = 4_000,
    num_disks: int = 4,
    page_size: int = 4096,
    sessions: int = 6,
    ops_per_session: int = 25,
    think_time_us: float = 1_500.0,
    deadline_us: Optional[float] = 30_000.0,
    max_concurrency: int = 8,
    queue_depth: int = 32,
    pool_frames: int = 48,
    lookup_weight: float = 0.70,
    scan_weight: float = 0.20,
    insert_weight: float = 0.10,
    scan_span: int = 64,
    backoff_base_us: float = 1_000.0,
    backoff_cap_us: float = 20_000.0,
    p99_slo_us: float = 15_000.0,
    seed: int = 11,
) -> FigureResult:
    """Goodput under a fault storm, with and without client-side resilience."""
    result = FigureResult(
        "chaos",
        "closed-loop serving through a fault storm and a mid-run crash: "
        "bare clients vs retry + breaker + brownout",
        [
            "mode", "client_ops", "ok_ops", "gave_up", "retries", "fast_fails",
            "breaker_trips", "brownout_level", "shed", "failed", "timeouts",
            "crashes", "lost_inserts", "goodput_ops_s", "p99_ms", "conserved",
        ],
    )
    mix = OpMix(
        lookup=lookup_weight, scan=scan_weight, insert=insert_weight, scan_span=scan_span
    )
    for mode in modes:
        if mode not in ("baseline", "resilient"):
            raise ValueError(f"unknown chaos mode {mode!r}")
        resilient = mode == "resilient"
        schedule = ChaosSchedule.parse(schedule_text, seed=schedule_seed)
        runner = ChaosRunner(
            schedule,
            num_rows=num_rows,
            num_disks=num_disks,
            page_size=page_size,
            sessions=sessions,
            ops_per_session=ops_per_session,
            think_time_us=think_time_us,
            mix=mix,
            retry=(
                ClientRetryPolicy(backoff_base_us=backoff_base_us, backoff_cap_us=backoff_cap_us)
                if resilient else None
            ),
            breaker=BreakerConfig() if resilient else None,
            brownout=BrownoutConfig(p99_slo_us=p99_slo_us) if resilient else None,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            pool_frames=pool_frames,
            deadline_us=deadline_us,
            seed=seed,
        )
        report = runner.run()
        assert report["conserved"], f"conservation identity violated in {mode} run"
        assert report["lost_inserts"] == 0, f"acknowledged inserts lost in {mode} run"
        trips = sum(1 for __, __, to in report["breaker_transitions"] if to == "open")
        result.add(
            mode=mode,
            client_ops=report["client_ops"],
            ok_ops=report["ok_ops"],
            gave_up=report["gave_up"],
            retries=report["client_retries"],
            fast_fails=report["breaker_fast_fails"],
            breaker_trips=trips,
            brownout_level=report["brownout_max_level"],
            shed=report["shed"],
            failed=report["failed"],
            timeouts=report["timeouts"],
            crashes=report["crashes"],
            lost_inserts=report["lost_inserts"],
            goodput_ops_s=report["goodput_ops_s"],
            p99_ms=report["p99_ms"],
            conserved=int(report["conserved"]),
        )
    result.notes.append(f"schedule: {ChaosSchedule.parse(schedule_text, seed=schedule_seed).describe()}")
    result.notes.append(
        f"{sessions} closed-loop sessions x {ops_per_session} ops, "
        f"{num_disks}-disk mirrored array over {num_rows} rows, "
        f"deadline {deadline_us/1e3:g}ms, "
        f"mix {mix.lookup:g}/{mix.scan:g}/{mix.insert:g} lookup/scan/insert"
    )
    return result
