"""Reproductions of every table and figure in the paper's evaluation.

Each ``figNN`` / ``tableN`` function runs one experiment (at a configurable
scale — defaults are ~30-100x below the paper's 10M-key runs so a full
sweep completes in minutes on a laptop) and returns a
:class:`~repro.bench.results.FigureResult` whose rows mirror the paper's
series.  Absolute numbers are simulated cycles / microseconds; the claims
to check are the *shapes*: who wins, by what factor, where the crossovers
are.  ``python -m repro.bench <name>`` prints any of them.
"""

from __future__ import annotations

from typing import Optional, Sequence


from ..btree.base import Index
from ..btree.context import TreeEnvironment
from ..core.cache_first import CacheFirstFpTree
from ..core.disk_first import DiskFirstFpTree
from ..core.optimizer import (
    CacheFirstWidths,
    DiskFirstWidths,
    optimize_cache_first,
    optimize_disk_first,
    optimize_micro_index,
    search_cost,
)
from ..dbms.engine import MiniDbms, QueryStats
from ..faults import FaultPlan, SimulatedCrash
from ..mem.config import DEFAULT_CPU, DEFAULT_MEMORY
from ..mem.hierarchy import MemorySystem
from ..storage.config import DiskParameters
from ..wal import WalManager, recover
from ..workloads.generator import KeyWorkload, build_mature_tree
from .cache_runner import PAPER_INDEX_ORDER, build_tree, make_index, measure_operations
from .io_scan import leaf_pids_for_span, timed_range_scan
from .results import FigureResult

__all__ = [
    "table1",
    "table2",
    "fig03",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fault_resilience",
    "recovery_overhead",
    "ablation_overshoot",
    "ablation_uniform_node_size",
    "ablation_jpa_on_standard_btree",
    "ablation_prefetch_depth",
    "traced_scan",
    "ALL_EXPERIMENTS",
]

PAGE_SIZES = (4096, 8192, 16384, 32768)


# -- configuration tables ------------------------------------------------------------


def table1() -> FigureResult:
    """Table 1: simulation parameters (configuration, not a measurement)."""
    result = FigureResult("table1", "simulation parameters", ["parameter", "value"])
    mem, cpu = DEFAULT_MEMORY, DEFAULT_CPU
    for name, value in [
        ("cache line size", f"{mem.line_size} bytes"),
        ("L1 data cache", f"{mem.l1_size // 1024} KB, {mem.l1_assoc}-way set-assoc."),
        ("L2 unified cache", f"{mem.l2_size // (1024 * 1024)} MB, direct-mapped"),
        ("L1-to-L2 miss latency", f"{mem.l2_hit_latency} cycles"),
        ("L1-to-memory miss latency (T1)", f"{mem.memory_latency} cycles"),
        ("memory bandwidth (Tnext)", f"1 access per {mem.bus_cycles_per_access} cycles"),
        ("outstanding miss handlers", str(mem.miss_handlers)),
        ("buffer-pool access overhead", f"{cpu.buffer_pool_access} cycles"),
    ]:
        result.add(parameter=name, value=value)
    return result


def table2() -> FigureResult:
    """Table 2: optimal node-width selections (4-byte keys, T1=150, Tnext=10)."""
    result = FigureResult(
        "table2",
        "optimal width selections",
        ["page_size", "scheme", "nonleaf_bytes", "leaf_bytes", "page_fanout", "cost_ratio"],
    )
    for page_size in PAGE_SIZES:
        d = optimize_disk_first(page_size)
        result.add(
            page_size=page_size, scheme="disk-first", nonleaf_bytes=d.nonleaf_bytes,
            leaf_bytes=d.leaf_bytes, page_fanout=d.page_fanout, cost_ratio=round(d.cost_ratio, 2),
        )
        c = optimize_cache_first(page_size)
        result.add(
            page_size=page_size, scheme="cache-first", nonleaf_bytes=c.node_bytes,
            leaf_bytes=c.node_bytes, page_fanout=c.page_fanout, cost_ratio=round(c.cost_ratio, 2),
        )
        m = optimize_micro_index(page_size)
        result.add(
            page_size=page_size, scheme="micro-indexing", nonleaf_bytes=m.subarray_bytes,
            leaf_bytes=m.subarray_bytes, page_fanout=m.page_fanout, cost_ratio=round(m.cost_ratio, 2),
        )
    result.notes.append("disk-first/cache-first rows match paper Table 2 except 16KB (within 2%)")
    return result


# -- cache performance figures ----------------------------------------------------------


def fig03(num_keys: int = 300_000, searches: int = 300, page_size: int = 8192) -> FigureResult:
    """Figure 3(b): search time breakdown, disk-optimized B+-Tree vs pB+-Tree."""
    result = FigureResult(
        "fig03",
        "execution time breakdown for search (normalized to disk-optimized B+tree)",
        ["index", "total", "busy", "dcache_stalls", "other_stalls"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    picks = [int(k) for k in workload.search_keys(searches)]
    totals = {}
    for kind in ("disk", "pbtree"):
        mem = MemorySystem()
        tree = build_tree(kind, keys, tids, page_size=page_size, mem=mem)
        phase = measure_operations(mem, tree.search, picks)
        totals[kind] = phase
    baseline = totals["disk"].total_cycles
    for kind, label in (("disk", "disk-optimized B+tree"), ("pbtree", "pB+tree")):
        stats = totals[kind].stats
        result.add(
            index=label,
            total=round(100 * stats.total_cycles / baseline, 1),
            busy=round(100 * stats.busy_cycles / baseline, 1),
            dcache_stalls=round(100 * stats.dcache_stall_cycles / baseline, 1),
            other_stalls=round(100 * stats.other_stall_cycles / baseline, 1),
        )
    return result


def fig10(
    page_sizes: Sequence[int] = PAGE_SIZES,
    sizes: Sequence[int] = (30_000, 100_000, 300_000),
    searches: int = 200,
    fill: float = 1.0,
) -> FigureResult:
    """Figure 10: search cycles vs #entries, per page size, all four indexes."""
    result = FigureResult(
        "fig10",
        "search performance for 100% bulkload (simulated cycles per search)",
        ["page_size", "num_keys", "index", "cycles_per_search"],
    )
    for page_size in page_sizes:
        for num_keys in sizes:
            workload = KeyWorkload(num_keys)
            keys, tids = workload.bulkload_arrays()
            picks = [int(k) for k in workload.search_keys(searches)]
            for kind in PAPER_INDEX_ORDER:
                mem = MemorySystem()
                tree = build_tree(kind, keys, tids, fill=fill, page_size=page_size, mem=mem)
                phase = measure_operations(mem, tree.search, picks)
                result.add(
                    page_size=page_size, num_keys=num_keys, index=kind,
                    cycles_per_search=round(phase.cycles_per_op, 1),
                )
    return result


def _disk_first_widths_for_nonleaf(page_size: int, nonleaf_bytes: int) -> DiskFirstWidths:
    """Best disk-first widths with the non-leaf width pinned (Figure 11a)."""
    from ..core import optimizer as opt

    w = nonleaf_bytes // 64
    usable = page_size - opt.PAGE_HEADER_BYTES
    nonleaf_capacity = (nonleaf_bytes - opt.INPAGE_NODE_HEADER_BYTES) // 6
    candidates = []
    for x in range(1, 33):
        leaf_capacity = (x * 64 - opt.INPAGE_NODE_HEADER_BYTES) // 8
        if leaf_capacity < 1:
            continue
        chosen = None
        levels = 2
        while True:
            leaves = opt._inpage_tree_leaves(usable, levels, nonleaf_bytes, x * 64, nonleaf_capacity)
            if leaves <= 0:
                break
            if chosen is None or leaves * leaf_capacity > chosen[1]:
                chosen = (levels, leaves * leaf_capacity, leaves)
            levels += 1
        if chosen is None:
            continue
        levels, fanout, leaves = chosen
        candidates.append(
            DiskFirstWidths(
                nonleaf_bytes=nonleaf_bytes, leaf_bytes=x * 64, levels=levels,
                leaf_nodes=leaves, nonleaf_capacity=nonleaf_capacity,
                leaf_capacity=leaf_capacity, page_fanout=fanout,
                cost=search_cost(levels, w, x, 150, 10), cost_ratio=1.0,
            )
        )
    best_cost = min(c.cost for c in candidates)
    eligible = [c for c in candidates if c.cost <= 1.1 * best_cost]
    return max(eligible, key=lambda c: (c.page_fanout, -c.cost))


def fig11(
    num_keys: int = 200_000,
    searches: int = 200,
    page_size: int = 16 * 1024,
    nonleaf_sizes: Sequence[int] = (64, 128, 192, 256, 320, 384, 448, 512),
    cache_first_sizes: Sequence[int] = (128, 256, 512, 704, 1024),
) -> FigureResult:
    """Figure 11: search cycles vs node width (16KB pages)."""
    result = FigureResult(
        "fig11",
        "optimal width selection: search cycles per node-size choice",
        ["variant", "node_bytes", "selected", "cycles_per_search"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    picks = [int(k) for k in workload.search_keys(searches)]
    selected_d = optimize_disk_first(page_size)
    for nonleaf_bytes in nonleaf_sizes:
        widths = _disk_first_widths_for_nonleaf(page_size, nonleaf_bytes)
        mem = MemorySystem()
        tree = DiskFirstFpTree(
            TreeEnvironment(page_size=page_size, mem=mem), widths=widths
        )
        with mem.paused():
            tree.bulkload(keys, tids)
        phase = measure_operations(mem, tree.search, picks)
        result.add(
            variant="disk-first", node_bytes=nonleaf_bytes,
            selected=(nonleaf_bytes == selected_d.nonleaf_bytes),
            cycles_per_search=round(phase.cycles_per_op, 1),
        )
    selected_c = optimize_cache_first(page_size, num_keys=num_keys)
    sizes_to_try = list(cache_first_sizes)
    if selected_c.node_bytes not in sizes_to_try:
        sizes_to_try.append(selected_c.node_bytes)
        sizes_to_try.sort()
    for node_bytes in sizes_to_try:
        widths = CacheFirstWidths(
            node_bytes=node_bytes,
            nonleaf_capacity=(node_bytes - 6) // 10,
            leaf_capacity=(node_bytes - 6) // 8,
            nodes_per_page=(page_size - 64) // node_bytes,
            page_fanout=((page_size - 64) // node_bytes) * ((node_bytes - 6) // 8),
            levels=0, cost=0.0, cost_ratio=1.0,
        )
        mem = MemorySystem()
        tree = CacheFirstFpTree(TreeEnvironment(page_size=page_size, mem=mem), widths=widths)
        with mem.paused():
            tree.bulkload(keys, tids)
        phase = measure_operations(mem, tree.search, picks)
        result.add(
            variant="cache-first", node_bytes=node_bytes,
            selected=(node_bytes == selected_c.node_bytes),
            cycles_per_search=round(phase.cycles_per_op, 1),
        )
    return result


def fig12(
    num_keys: int = 200_000,
    searches: int = 200,
    page_size: int = 16 * 1024,
    bulkload_factors: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
) -> FigureResult:
    """Figure 12: search cycles vs bulkload factor (16KB pages)."""
    result = FigureResult(
        "fig12",
        "search performance varying bulkload factors",
        ["fill", "index", "cycles_per_search"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    picks = [int(k) for k in workload.search_keys(searches)]
    for fill in bulkload_factors:
        for kind in PAPER_INDEX_ORDER:
            mem = MemorySystem()
            tree = build_tree(kind, keys, tids, fill=fill, page_size=page_size, mem=mem)
            phase = measure_operations(mem, tree.search, picks)
            result.add(fill=fill, index=kind, cycles_per_search=round(phase.cycles_per_op, 1))
    return result


def _measure_inserts(kind, keys, tids, fill, page_size, workload, inserts):
    mem = MemorySystem()
    tree = build_tree(kind, keys, tids, fill=fill, page_size=page_size, mem=mem)
    new_keys, new_tids = workload.insert_keys(inserts)
    pairs = list(zip(new_keys.tolist(), new_tids.tolist()))
    phase = measure_operations(mem, lambda kv: tree.insert(kv[0], kv[1]), pairs)
    return phase


def fig13(
    num_keys: int = 200_000,
    inserts: int = 200,
    page_size: int = 16 * 1024,
    bulkload_factors: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
    sizes: Sequence[int] = (30_000, 100_000, 300_000),
    page_sizes: Sequence[int] = PAGE_SIZES,
) -> FigureResult:
    """Figure 13: insertion cycles across four experimental settings."""
    result = FigureResult(
        "fig13",
        "insertion performance (panels a-d)",
        ["panel", "x", "index", "cycles_per_insert"],
    )
    base = KeyWorkload(num_keys)
    base_keys, base_tids = base.bulkload_arrays()
    for fill in bulkload_factors:  # (a) varying bulkload factor
        for kind in PAPER_INDEX_ORDER:
            phase = _measure_inserts(kind, base_keys, base_tids, fill, page_size, base, inserts)
            result.add(panel="a", x=fill, index=kind, cycles_per_insert=round(phase.cycles_per_op, 1))
    for size in sizes:  # (b) varying tree size, 100% full
        workload = KeyWorkload(size)
        keys, tids = workload.bulkload_arrays()
        for kind in PAPER_INDEX_ORDER:
            phase = _measure_inserts(kind, keys, tids, 1.0, page_size, workload, inserts)
            result.add(panel="b", x=size, index=kind, cycles_per_insert=round(phase.cycles_per_op, 1))
    for ps in page_sizes:  # (c) varying page size, 100% full
        for kind in PAPER_INDEX_ORDER:
            phase = _measure_inserts(kind, base_keys, base_tids, 1.0, ps, base, inserts)
            result.add(panel="c", x=ps, index=kind, cycles_per_insert=round(phase.cycles_per_op, 1))
    for ps in page_sizes:  # (d) varying page size, 70% full
        for kind in PAPER_INDEX_ORDER:
            phase = _measure_inserts(kind, base_keys, base_tids, 0.7, ps, base, inserts)
            result.add(panel="d", x=ps, index=kind, cycles_per_insert=round(phase.cycles_per_op, 1))
    return result


def fig14(
    num_keys: int = 200_000,
    deletions: int = 200,
    page_size: int = 16 * 1024,
    bulkload_factors: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
    page_sizes: Sequence[int] = PAGE_SIZES,
) -> FigureResult:
    """Figure 14: lazy-deletion cycles, (a) vs bulkload factor, (b) vs page size."""
    result = FigureResult(
        "fig14",
        "deletion performance (panels a-b)",
        ["panel", "x", "index", "cycles_per_delete"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    victims = [int(k) for k in workload.delete_keys(deletions)]
    for fill in bulkload_factors:
        for kind in PAPER_INDEX_ORDER:
            mem = MemorySystem()
            tree = build_tree(kind, keys, tids, fill=fill, page_size=page_size, mem=mem)
            phase = measure_operations(mem, tree.delete, victims)
            result.add(panel="a", x=fill, index=kind, cycles_per_delete=round(phase.cycles_per_op, 1))
    for ps in page_sizes:
        for kind in PAPER_INDEX_ORDER:
            mem = MemorySystem()
            tree = build_tree(kind, keys, tids, fill=1.0, page_size=ps, mem=mem)
            phase = measure_operations(mem, tree.delete, victims)
            result.add(panel="b", x=ps, index=kind, cycles_per_delete=round(phase.cycles_per_op, 1))
    return result


def fig15(
    num_keys: int = 300_000,
    scans: int = 5,
    span_fraction: float = 1.0 / 3.0,
    page_size: int = 16 * 1024,
) -> FigureResult:
    """Figure 15: range-scan cycles (disk-optimized vs both fpB+-Trees)."""
    result = FigureResult(
        "fig15",
        "range scan cache performance",
        ["index", "cycles_per_scan", "speedup_vs_disk"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    span = max(1, int(num_keys * span_fraction))
    ranges = workload.range_scans(scans, span)
    measured = {}
    for kind in ("disk", "fp-disk", "fp-cache"):
        mem = MemorySystem()
        tree = build_tree(kind, keys, tids, page_size=page_size, mem=mem)
        phase = measure_operations(mem, lambda r: tree.range_scan(r[0], r[1]), ranges)
        measured[kind] = phase
    baseline = measured["disk"].cycles_per_op
    for kind in ("disk", "fp-disk", "fp-cache"):
        result.add(
            index=kind,
            cycles_per_scan=round(measured[kind].cycles_per_op, 0),
            speedup_vs_disk=round(baseline / measured[kind].cycles_per_op, 2),
        )
    return result


# -- space and I/O -----------------------------------------------------------------------


def fig16(
    num_keys: int = 100_000,
    page_sizes: Sequence[int] = PAGE_SIZES,
    mature_bulk_fraction: float = 0.1,
) -> FigureResult:
    """Figure 16: space overhead of fpB+-Trees vs disk-optimized B+-Trees."""
    result = FigureResult(
        "fig16",
        "space overhead (%) after (a) 100% bulkload and (b) maturing inserts",
        ["scenario", "page_size", "index", "space_overhead_pct"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    for page_size in page_sizes:
        baseline_pages = {}
        for scenario in ("bulkload", "mature"):
            for kind in ("disk", "fp-disk", "fp-cache"):
                tree = make_index(kind, page_size, num_keys_hint=num_keys)
                if scenario == "bulkload":
                    tree.bulkload(keys, tids, fill=1.0)
                else:
                    build_mature_tree(tree, KeyWorkload(num_keys), mature_bulk_fraction)
                if kind == "disk":
                    baseline_pages[scenario] = tree.num_pages
                    continue
                overhead = 100.0 * (tree.num_pages / baseline_pages[scenario] - 1.0)
                result.add(
                    scenario=scenario, page_size=page_size, index=kind,
                    space_overhead_pct=round(overhead, 1),
                )
    return result


def fig17(
    num_keys: int = 300_000,
    searches: int = 2000,
    page_sizes: Sequence[int] = PAGE_SIZES,
    mature_bulk_fraction: float = 0.5,
    pool_fraction: float = 0.125,
) -> FigureResult:
    """Figure 17: buffer-pool misses per search, bulkloaded and mature trees.

    The pool holds roughly ``pool_fraction`` of the tree's pages (at the
    paper's 10M-key scale any realistic pool is far smaller than the leaf
    level), so upper levels cache while most leaf accesses miss — the
    regime in which the paper reports 1.4-2.6 reads per search.
    """
    result = FigureResult(
        "fig17",
        "search I/O: page reads per search (cold buffer pool)",
        ["scenario", "page_size", "index", "reads_per_search"],
    )
    for page_size in page_sizes:
        approx_pages = max(1, num_keys * 8 // page_size)
        pool_frames = max(8, int(approx_pages * pool_fraction))
        for scenario in ("bulkload", "mature"):
            for kind in ("disk", "fp-disk", "fp-cache"):
                workload = KeyWorkload(num_keys)
                tree = make_index(kind, page_size, buffer_pages=pool_frames, num_keys_hint=num_keys)
                if scenario == "bulkload":
                    keys, tids = workload.bulkload_arrays()
                    tree.bulkload(keys, tids, fill=1.0)
                else:
                    build_mature_tree(tree, workload, mature_bulk_fraction)
                pool = tree.pool
                pool.clear()
                pool.reset_stats()
                for key in workload.search_keys(searches):
                    tree.search(int(key))
                result.add(
                    scenario=scenario, page_size=page_size, index=kind,
                    reads_per_search=round(pool.misses / searches, 3),
                )
    return result


def _leaf_pids_for_span(tree: Index, start_key: int, end_key: int) -> tuple[list[int], list[int]]:
    return leaf_pids_for_span(tree, start_key, end_key)


def fig18(
    num_keys: int = 500_000,
    spans: Sequence[int] = (100, 1_000, 10_000, 100_000),
    disk_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    page_size: int = 16 * 1024,
    large_span: Optional[int] = None,
    prefetch_depth: int = 32,
    trials: int = 3,
) -> FigureResult:
    """Figure 18: range-scan I/O on a multi-disk array, mature trees.

    Panel (a): elapsed time vs range size at 10 disks; panels (b)/(c):
    elapsed time and speedup vs number of disks for the largest range.
    """
    result = FigureResult(
        "fig18",
        "range scan I/O performance (mature trees)",
        ["panel", "x", "index", "elapsed_ms", "speedup"],
    )
    trees: dict[str, Index] = {}
    for kind in ("disk", "fp-disk"):
        tree = make_index(kind, page_size, buffer_pages=16, num_keys_hint=num_keys)
        build_mature_tree(tree, KeyWorkload(num_keys, seed=21), bulk_fraction=0.9)
        trees[kind] = tree
    workload = KeyWorkload(num_keys, seed=21)
    big = large_span if large_span is not None else max(spans)
    span_ranges = {span: workload.range_scans(trials, span) for span in set(spans) | {big}}

    def run_one(kind: str, start_key: int, end_key: int, disks: int) -> float:
        tree = trees[kind]
        pids, extra = _leaf_pids_for_span(tree, start_key, end_key)
        timing = timed_range_scan(
            tree.store,
            pids,
            start_path=tree.page_path(start_key),
            end_path=tree.page_path(end_key),
            extra_pids=extra,
            num_disks=disks,
            use_prefetch=(kind == "fp-disk"),
            prefetch_depth=prefetch_depth,
            page_size=page_size,
            # Mature-tree leaves are scattered across a large volume, so
            # every repositioning is a full seek at any stripe width.
            disk=DiskParameters(sequential_window_blocks=0),
        )
        return timing.elapsed_ms

    def run(kind: str, span: int, disks: int) -> float:
        # Each reported point is the mean of several random ranges, as in
        # the paper (each data point is the average of 10 trials).
        times = [run_one(kind, lo, hi, disks) for lo, hi in span_ranges[span]]
        return sum(times) / len(times)

    max_disks = max(disk_counts)
    for span in spans:  # panel (a)
        for kind in ("disk", "fp-disk"):
            elapsed = run(kind, span, max_disks)
            result.add(panel="a", x=span, index=kind, elapsed_ms=round(elapsed, 2), speedup="")
    for disks in disk_counts:  # panels (b) and (c)
        plain = run("disk", big, disks)
        fetched = run("fp-disk", big, disks)
        result.add(panel="b", x=disks, index="disk", elapsed_ms=round(plain, 2), speedup="")
        result.add(
            panel="b", x=disks, index="fp-disk", elapsed_ms=round(fetched, 2),
            speedup=round(plain / fetched, 2),
        )
    return result


def fig19(
    num_rows: int = 150_000,
    num_disks: int = 80,
    prefetcher_counts: Sequence[int] = (1, 2, 4, 6, 8, 10, 12),
    smp_degrees: Sequence[int] = (1, 2, 3, 5, 7, 9),
    fixed_smp: int = 9,
    fixed_prefetchers: int = 8,
    page_size: int = 4096,
) -> FigureResult:
    """Figure 19: jump-pointer-array prefetching in the mini DBMS (DB2 stand-in).

    Smaller pages than the cache experiments so that the scaled-down table
    still spans a few hundred index leaf pages — the paper's table spans
    thousands, and the prefetcher pool needs a long leaf chain to matter.
    """
    result = FigureResult(
        "fig19",
        "SELECT COUNT(*) via index-only scan: prefetchers and SMP parallelism",
        ["panel", "x", "mode", "elapsed_s"],
    )
    # A mature DBMS volume: index pages are scattered, so every page read
    # pays a full seek (sequential_window_blocks=0).
    db = MiniDbms(
        num_rows=num_rows,
        num_disks=num_disks,
        page_size=page_size,
        disk=DiskParameters(sequential_window_blocks=0),
    )
    plain = db.count_star(smp_degree=fixed_smp, prefetchers=0)
    warm = db.count_star(smp_degree=fixed_smp, in_memory=True)
    for n in prefetcher_counts:  # panel (a)
        fetched = db.count_star(smp_degree=fixed_smp, prefetchers=n)
        result.add(panel="a", x=n, mode="with prefetch", elapsed_s=round(fetched.elapsed_s, 3))
        result.add(panel="a", x=n, mode="no prefetch", elapsed_s=round(plain.elapsed_s, 3))
        result.add(panel="a", x=n, mode="in memory", elapsed_s=round(warm.elapsed_s, 3))
    for degree in smp_degrees:  # panel (b)
        result.add(
            panel="b", x=degree, mode="no prefetch",
            elapsed_s=round(db.count_star(smp_degree=degree, prefetchers=0).elapsed_s, 3),
        )
        result.add(
            panel="b", x=degree, mode="with prefetch",
            elapsed_s=round(
                db.count_star(smp_degree=degree, prefetchers=fixed_prefetchers).elapsed_s, 3
            ),
        )
        result.add(
            panel="b", x=degree, mode="in memory",
            elapsed_s=round(db.count_star(smp_degree=degree, in_memory=True).elapsed_s, 3),
        )
    return result


def fault_resilience(
    num_rows: int = 60_000,
    num_disks: int = 8,
    page_size: int = 4096,
    error_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    limp_factors: Sequence[float] = (2.0, 5.0, 10.0),
    limp_disk: int = 0,
    prefetchers: int = 4,
    smp_degree: int = 2,
    seed: int = 29,
) -> FigureResult:
    """Robustness curve: scan throughput under injected faults.

    Panel (a) sweeps a uniform per-read error rate (corruptions plus
    transient timeouts at half the rate) and compares retry-only recovery
    against hedged reads.  Panel (b) makes one disk limp by a growing
    latency factor; hedged reads convert the limping spindle's tail latency
    into overlap on the mirror, recovering most of the lost throughput.
    All runs are mirrored-striping, deterministic from ``seed``, and must
    return the same row count as a fault-free scan.
    """
    result = FigureResult(
        "fault-resilience",
        "scan throughput under injected faults: retry-only vs hedged reads",
        [
            "panel",
            "x",
            "mode",
            "elapsed_s",
            "pages_per_s",
            "faults",
            "retries",
            "hedges",
            "hedge_wins",
            "checksum_failures",
            "row_count",
        ],
    )
    db = MiniDbms(
        num_rows=num_rows,
        num_disks=num_disks,
        page_size=page_size,
        disk=DiskParameters(sequential_window_blocks=0),
        mature=False,
    )

    def run(plan: FaultPlan, hedge: bool, mode: str, panel: str, x: float) -> QueryStats:
        stats = db.scan(
            smp_degree=smp_degree,
            prefetchers=prefetchers,
            fault_plan=plan,
            mirrored=True,
            hedge=hedge,
        )
        result.add(
            panel=panel,
            x=x,
            mode=mode,
            elapsed_s=round(stats.elapsed_s, 4),
            pages_per_s=round(stats.pages_scanned / stats.elapsed_s, 1),
            faults=stats.faults_seen,
            retries=stats.retries,
            hedges=stats.hedges,
            hedge_wins=stats.hedge_wins,
            checksum_failures=stats.checksum_failures,
            row_count=stats.row_count,
        )
        return stats

    for rate in error_rates:  # panel (a)
        plan = FaultPlan.uniform(corrupt_rate=rate, timeout_rate=rate / 2, seed=seed)
        run(plan, False, "retry only", "a", rate)
        run(plan, True, "hedged", "a", rate)
    clean = run(FaultPlan(seed=seed), False, "clean", "b", 1.0)  # panel (b)
    for factor in limp_factors:
        plan = FaultPlan.limping_disk(limp_disk, factor=factor, seed=seed)
        retry_only = run(plan, False, "retry only", "b", factor)
        hedged = run(plan, True, "hedged", "b", factor)
    thr = lambda s: s.pages_scanned / s.elapsed_s  # noqa: E731
    lost = thr(clean) - thr(retry_only)
    recovered = thr(hedged) - thr(retry_only)
    result.notes.append(
        f"limp x{limp_factors[-1]}: retry-only loses {lost:.1f} pages/s, "
        f"hedging recovers {recovered:.1f} ({100 * recovered / lost:.0f}% of the loss)"
        if lost > 0
        else "limping disk cost nothing — scale the scan up"
    )
    return result


def recovery_overhead(
    num_keys: int = 20_000,
    num_updates: int = 2_000,
    page_size: int = 4096,
    buffer_pages: int = 64,
    checkpoint_intervals: Sequence[int] = (0, 50, 250),
    crash_fraction: float = 0.9,
) -> FigureResult:
    """Crash consistency: logging overhead and redo recovery time.

    Panel (a) runs the same insert workload under write-ahead logging at
    several checkpoint intervals (0 = never) and reports what durability
    costs at runtime: WAL appends and bytes, page forces, and simulated
    disk-write time per update.  Panel (b) crashes each configuration at
    ~``crash_fraction`` of its log and measures redo recovery: more
    frequent checkpoints shift cost from recovery (fewer records to
    replay) to runtime (more page forces) — the classic trade-off.
    """
    result = FigureResult(
        "recovery",
        "WAL logging overhead and redo recovery time vs checkpoint interval",
        [
            "panel",
            "checkpoint_interval",
            "wal_appends",
            "wal_kb",
            "pages_flushed",
            "checkpoints",
            "write_us_per_op",
            "records_replayed",
            "pages_restored",
            "recovery_us",
        ],
    )
    base_keys = list(range(0, 2 * num_keys, 2))
    update_keys = list(range(1, 2 * num_updates, 2))

    def fresh():
        return DiskFirstFpTree(TreeEnvironment(page_size=page_size, buffer_pages=buffer_pages))

    def build():
        tree = fresh()
        tree.bulkload(base_keys, [k + 1 for k in base_keys])
        return tree

    for interval in checkpoint_intervals:
        # Panel (a): run the whole workload, no crash — pure logging cost.
        tree = build()
        wal = WalManager(tree, checkpoint_interval=interval)
        for key in update_keys:
            tree.insert(key, key + 1)
        stats = wal.stats()
        result.add(
            panel="a",
            checkpoint_interval=interval,
            wal_appends=stats.wal_appends,
            wal_kb=round(stats.wal_bytes / 1024, 1),
            pages_flushed=stats.pages_flushed,
            checkpoints=stats.checkpoints,
            write_us_per_op=round(stats.write_us / num_updates, 2),
            records_replayed=0,
            pages_restored=0,
            recovery_us=0,
        )
        # Panel (b): same workload, crashed at ~crash_fraction of the log,
        # then redo recovery from the crash image.
        crash_at = max(1, int(crash_fraction * stats.wal_appends))
        tree = build()
        wal = WalManager(
            tree,
            plan=FaultPlan.crash_point(wal_appends=crash_at),
            checkpoint_interval=interval,
        )
        try:
            for key in update_keys:
                tree.insert(key, key + 1)
        except SimulatedCrash:
            pass
        recovered, rec = recover(wal.crash_state(), fresh)
        assert recovered.num_entries == num_keys + len(rec.committed_txns)
        result.add(
            panel="b",
            checkpoint_interval=interval,
            wal_appends=rec.records_scanned,
            wal_kb=round(rec.valid_wal_bytes / 1024, 1),
            pages_flushed=0,
            checkpoints=0,
            write_us_per_op=0,
            records_replayed=rec.records_replayed,
            pages_restored=rec.pages_restored,
            recovery_us=round(rec.recovery_us, 1),
        )
    never = result.filter(panel="b", checkpoint_interval=0)[0]
    tightest = result.filter(panel="b", checkpoint_interval=min(i for i in checkpoint_intervals if i))[0]
    result.notes.append(
        f"redo work: {never['records_replayed']} records with no checkpoints vs "
        f"{tightest['records_replayed']} at the tightest interval "
        f"({never['recovery_us']:.0f}us vs {tightest['recovery_us']:.0f}us recovery)"
    )
    return result


# -- ablations (design choices called out in DESIGN.md) --------------------------------------


def ablation_overshoot(num_keys: int = 200_000, span: int = 2_000, disks: int = 8) -> FigureResult:
    """Overshooting avoidance (Section 2.2): end-key search vs blind prefetch."""
    result = FigureResult(
        "ablation-overshoot",
        "range-scan prefetch with and without overshoot avoidance",
        ["mode", "elapsed_ms", "disk_reads", "overshoot_reads"],
    )
    tree = make_index("fp-disk", 16 * 1024, buffer_pages=16, num_keys_hint=num_keys)
    workload = KeyWorkload(num_keys, seed=31)
    build_mature_tree(tree, workload, bulk_fraction=0.9)
    # A mid-keyspace range, so there are leaf pages beyond the end to
    # overshoot into.
    start_index = num_keys // 3
    start_key = int(workload.keys[start_index])
    end_key = int(workload.keys[start_index + span - 1])
    pids, extra = _leaf_pids_for_span(tree, start_key, end_key)
    for avoid in (True, False):
        timing = timed_range_scan(
            tree.store, pids,
            start_path=tree.page_path(start_key), end_path=tree.page_path(end_key),
            extra_pids=extra, num_disks=disks, use_prefetch=True, avoid_overshoot=avoid,
            disk=DiskParameters(sequential_window_blocks=0),
        )
        result.add(
            mode="avoid overshoot" if avoid else "overshooting",
            elapsed_ms=round(timing.elapsed_ms, 2),
            disk_reads=timing.disk_reads,
            overshoot_reads=timing.overshoot_reads,
        )
    return result


def ablation_uniform_node_size(
    num_keys: int = 200_000, searches: int = 200, page_size: int = 16 * 1024
) -> FigureResult:
    """Two node sizes (Section 3.1.1) vs forcing leaf width == non-leaf width."""
    result = FigureResult(
        "ablation-uniform-node-size",
        "disk-first in-page trees: distinct vs uniform node widths",
        ["variant", "page_fanout", "cycles_per_search"],
    )
    workload = KeyWorkload(num_keys)
    keys, tids = workload.bulkload_arrays()
    picks = [int(k) for k in workload.search_keys(searches)]
    optimal = optimize_disk_first(page_size)
    # Force x == w for the uniform variant.
    from ..core import optimizer as opt

    w = optimal.nonleaf_bytes // 64
    usable = page_size - opt.PAGE_HEADER_BYTES
    leaf_capacity = (optimal.nonleaf_bytes - opt.INPAGE_NODE_HEADER_BYTES) // 8
    chosen = None
    levels = 2
    while True:
        leaves = opt._inpage_tree_leaves(
            usable, levels, optimal.nonleaf_bytes, optimal.nonleaf_bytes, optimal.nonleaf_capacity
        )
        if leaves <= 0:
            break
        if chosen is None or leaves * leaf_capacity > chosen[1]:
            chosen = (levels, leaves * leaf_capacity, leaves)
        levels += 1
    levels, fanout, leaves = chosen
    uniform = DiskFirstWidths(
        nonleaf_bytes=optimal.nonleaf_bytes, leaf_bytes=optimal.nonleaf_bytes, levels=levels,
        leaf_nodes=leaves, nonleaf_capacity=optimal.nonleaf_capacity,
        leaf_capacity=leaf_capacity, page_fanout=fanout,
        cost=search_cost(levels, w, w, 150, 10), cost_ratio=1.0,
    )
    for label, widths in (("two sizes (paper)", optimal), ("uniform size", uniform)):
        mem = MemorySystem()
        tree = DiskFirstFpTree(TreeEnvironment(page_size=page_size, mem=mem), widths=widths)
        with mem.paused():
            tree.bulkload(keys, tids)
        phase = measure_operations(mem, tree.search, picks)
        result.add(
            variant=label, page_fanout=widths.page_fanout,
            cycles_per_search=round(phase.cycles_per_op, 1),
        )
    return result


def ablation_jpa_on_standard_btree(
    num_keys: int = 200_000, span: int = 20_000, disks: int = 10
) -> FigureResult:
    """Jump-pointer prefetching on a *standard* B+-Tree (Section 2.2).

    "This approach is applicable for improving the I/O performance of
    standard B+-Trees, not just fractal ones" — it is what the paper added
    to DB2.  The jump-pointer array here is the tree's leaf chain.
    """
    result = FigureResult(
        "ablation-jpa-on-btree",
        "standard B+-Tree range-scan I/O with and without jump-pointer prefetch",
        ["mode", "elapsed_ms", "speedup"],
    )
    tree = make_index("disk", 16 * 1024, buffer_pages=16, num_keys_hint=num_keys)
    workload = KeyWorkload(num_keys, seed=23)
    build_mature_tree(tree, workload, bulk_fraction=0.9)
    start_index = num_keys // 4
    start_key = int(workload.keys[start_index])
    end_key = int(workload.keys[start_index + span - 1])
    pids, __ = _leaf_pids_for_span(tree, start_key, end_key)
    scattered = DiskParameters(sequential_window_blocks=0)
    timings = {}
    for use_prefetch in (False, True):
        timings[use_prefetch] = timed_range_scan(
            tree.store, pids,
            start_path=tree.page_path(start_key), end_path=tree.page_path(end_key),
            num_disks=disks, use_prefetch=use_prefetch, disk=scattered,
        )
    plain = timings[False].elapsed_ms
    for use_prefetch in (False, True):
        elapsed = timings[use_prefetch].elapsed_ms
        result.add(
            mode="with jump-pointer prefetch" if use_prefetch else "plain scan",
            elapsed_ms=round(elapsed, 2),
            speedup=round(plain / elapsed, 2),
        )
    return result


def ablation_prefetch_depth(
    num_keys: int = 200_000,
    span: int = 5_000,
    disks: int = 10,
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
) -> FigureResult:
    """How far ahead the jump-pointer array must prefetch to hide disk latency."""
    result = FigureResult(
        "ablation-prefetch-depth",
        "range-scan elapsed time vs prefetch depth",
        ["depth", "elapsed_ms"],
    )
    tree = make_index("fp-disk", 16 * 1024, buffer_pages=16, num_keys_hint=num_keys)
    workload = KeyWorkload(num_keys, seed=17)
    build_mature_tree(tree, workload, bulk_fraction=0.9)
    start_key, end_key = workload.range_scans(1, span)[0]
    pids, __ = _leaf_pids_for_span(tree, start_key, end_key)
    for depth in depths:
        timing = timed_range_scan(
            tree.store, pids, num_disks=disks, use_prefetch=True, prefetch_depth=depth,
            disk=DiskParameters(sequential_window_blocks=0),
        )
        result.add(depth=depth, elapsed_ms=round(timing.elapsed_ms, 2))
    return result


def traced_scan(
    num_rows: int = 20_000,
    num_disks: int = 4,
    page_size: int = 4096,
    inserts: int = 20,
    prefetchers: int = 4,
    smp_degree: int = 2,
    corrupt_rate: float = 0.02,
    timeout_rate: float = 0.01,
    seed: int = 3,
) -> FigureResult:
    """One fully-traced mirrored scan under light faults, stats vs trace.

    Runs ``MiniDbms.scan(trace=True)`` with the WAL enabled and a mild
    fault plan, then reconciles every ``QueryStats`` counter against the
    counts recovered from the trace itself.  The rows are the
    reconciliation table (each must agree exactly); the exported
    Chrome-trace JSON rides along on ``result.trace`` so that
    ``python -m repro.bench traced-scan --trace-out scan.json`` produces a
    file loadable in ui.perfetto.dev.
    """
    result = FigureResult(
        "traced-scan",
        "query trace vs QueryStats reconciliation (must agree exactly)",
        ["quantity", "from_stats", "from_trace", "agree"],
    )
    db = MiniDbms(
        num_rows=num_rows,
        num_disks=num_disks,
        page_size=page_size,
        disk=DiskParameters(sequential_window_blocks=0),
        mature=False,
    )
    db.enable_wal()
    for key in range(10_000_000, 10_000_000 + inserts):
        db.insert(key)
    plan = FaultPlan.uniform(
        corrupt_rate=corrupt_rate, timeout_rate=timeout_rate, seed=seed
    )
    stats = db.scan(
        smp_degree=smp_degree,
        prefetchers=prefetchers,
        fault_plan=plan,
        mirrored=True,
        trace=True,
    )
    trace = stats.trace
    for quantity, from_stats in (
        ("disk_reads", stats.disk_reads),
        ("prefetches", stats.prefetches),
        ("hedges", stats.hedges),
        ("retries", stats.retries),
        ("wal_appends", stats.wal_appends),
    ):
        from_trace = trace.counter_value(quantity.replace("disk_", ""))
        result.add(
            quantity=quantity,
            from_stats=from_stats,
            from_trace=from_trace,
            agree=from_stats == from_trace,
        )
    # Completion spans can lag issued reads: a hedge loser or stalled
    # command still in flight when the scan finishes never completes, so
    # the invariant is <=, not ==.
    read_spans = trace.count("read", ph="X")
    result.add(
        quantity="read_spans (<=)",
        from_stats=stats.disk_reads,
        from_trace=read_spans,
        agree=read_spans <= stats.disk_reads,
    )
    result.trace = trace
    result.notes.append(
        f"{len(trace.tracer.records)} trace records over "
        f"{stats.elapsed_us:.0f} simulated us ({stats.row_count} rows)"
    )
    return result


from .chaos import chaos_sweep  # noqa: E402  (avoids a cycle)
from .concurrency import concurrency_sweep  # noqa: E402  (avoids a cycle)
from .multipage import ablation_multipage_nodes  # noqa: E402  (avoids a cycle)
from .serving import serve_batch_race, serve_sweep  # noqa: E402  (avoids a cycle)
from .sharding import shard_sweep  # noqa: E402  (avoids a cycle)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig03": fig03,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fault-resilience": fault_resilience,
    "recovery": recovery_overhead,
    "ablation-overshoot": ablation_overshoot,
    "ablation-uniform-node-size": ablation_uniform_node_size,
    "ablation-prefetch-depth": ablation_prefetch_depth,
    "ablation-jpa-on-btree": ablation_jpa_on_standard_btree,
    "ablation-multipage-nodes": ablation_multipage_nodes,
    "traced-scan": traced_scan,
    "serve": serve_sweep,
    "serve-batch": serve_batch_race,
    "shard": shard_sweep,
    "chaos": chaos_sweep,
    "concurrency": concurrency_sweep,
}
