"""The serving experiment: throughput and latency vs offered load.

One sweep cell per offered load: a fresh :class:`~repro.dbms.MiniDbms` and
:class:`~repro.serve.DbmsServer` (so cells share no state and parallelize
under ``--jobs``), an open-loop Poisson arrival stream at the offered
rate, and one row of the classic saturation curve — completed throughput,
latency percentiles, shed/timeout counts, queue wait and disk utilization.

Below the knee, throughput tracks offered load and p99 sits near the bare
service time; past it, throughput plateaus at the disk-array service
limit, queueing pushes p99 up to the admission bound, and the excess
offered load is shed.  Everything is seeded: the rows are byte-identical
across runs and across ``--jobs`` values.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..dbms.engine import MiniDbms
from ..serve import DbmsServer, OpenLoopLoadGenerator
from ..workloads.ops import OpMix
from .results import FigureResult

__all__ = ["serve_sweep"]


def serve_sweep(
    num_rows: int = 8_000,
    num_disks: int = 8,
    page_size: int = 4096,
    offered_loads: Sequence[int] = (200, 400, 800, 1600, 3200),
    duration_s: float = 1.0,
    max_concurrency: int = 16,
    queue_depth: int = 48,
    pool_frames: int = 64,
    deadline_us: Optional[float] = None,
    lookup_weight: float = 0.70,
    scan_weight: float = 0.20,
    insert_weight: float = 0.10,
    scan_span: int = 64,
    seed: int = 11,
) -> FigureResult:
    """Serving saturation curve: throughput and latency vs offered load."""
    result = FigureResult(
        "serve",
        "open-loop serving: throughput, latency percentiles and shedding vs offered load",
        [
            "offered_ops_s", "issued", "completed", "shed", "timeouts",
            "throughput_ops_s", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
            "queue_p99_ms", "mean_disk_util",
        ],
    )
    mix = OpMix(
        lookup=lookup_weight, scan=scan_weight, insert=insert_weight, scan_span=scan_span
    )
    for rate in offered_loads:
        db = MiniDbms(
            num_rows=num_rows, num_disks=num_disks, page_size=page_size,
            seed=seed, mature=False,
        )
        server = DbmsServer(
            db,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            pool_frames=pool_frames,
            deadline_us=deadline_us,
            seed=seed,
        )
        generator = OpenLoopLoadGenerator(
            server, rate_ops_s=rate, duration_s=duration_s, mix=mix, seed=seed
        )
        stats = generator.run()
        assert stats.conserved(), "conservation identity violated at end of run"
        percentiles = stats.percentiles_us()
        wait = stats.queue_wait_histogram()
        result.add(
            offered_ops_s=rate,
            issued=stats.issued,
            completed=stats.completed,
            shed=stats.shed_count,
            timeouts=stats.timeouts,
            throughput_ops_s=round(stats.throughput_ops_s(server.env.now), 1),
            p50_ms=round(percentiles["p50"] / 1e3, 2),
            p95_ms=round(percentiles["p95"] / 1e3, 2),
            p99_ms=round(percentiles["p99"] / 1e3, 2),
            p999_ms=round(percentiles["p999"] / 1e3, 2),
            queue_p99_ms=round(wait.quantile(0.99) / 1e3, 2) if wait is not None else 0.0,
            mean_disk_util=round(server.mean_utilization(), 3),
        )
    result.notes.append(
        f"{num_disks}-disk array, {max_concurrency} tokens, queue bound {queue_depth}, "
        f"pool {pool_frames} frames, mix {mix.lookup:g}/{mix.scan:g}/{mix.insert:g} "
        f"lookup/scan/insert over {num_rows} rows for {duration_s:g}s per cell"
    )
    return result
