"""The serving experiment: throughput and latency vs offered load.

One sweep cell per offered load: a fresh :class:`~repro.dbms.MiniDbms` and
:class:`~repro.serve.DbmsServer` (so cells share no state and parallelize
under ``--jobs``), an open-loop Poisson arrival stream at the offered
rate, and one row of the classic saturation curve — completed throughput,
latency percentiles, shed/timeout counts, queue wait and disk utilization.

Below the knee, throughput tracks offered load and p99 sits near the bare
service time; past it, throughput plateaus at the disk-array service
limit, queueing pushes p99 up to the admission bound, and the excess
offered load is shed.  Everything is seeded: the rows are byte-identical
across runs and across ``--jobs`` values.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..dbms.engine import MiniDbms
from ..serve import DbmsServer, OpenLoopLoadGenerator
from ..workloads.ops import OpMix
from .results import FigureResult

__all__ = ["serve_sweep", "serve_batch_race"]


def serve_sweep(
    num_rows: int = 8_000,
    num_disks: int = 8,
    page_size: int = 4096,
    offered_loads: Sequence[int] = (200, 400, 800, 1600, 3200),
    duration_s: float = 1.0,
    max_concurrency: int = 16,
    queue_depth: int = 48,
    pool_frames: int = 64,
    deadline_us: Optional[float] = None,
    lookup_weight: float = 0.70,
    scan_weight: float = 0.20,
    insert_weight: float = 0.10,
    scan_span: int = 64,
    distribution: Optional[str] = None,
    burstiness: float = 1.0,
    admission_mode: str = "fifo",
    batch_max: int = 16,
    batch_window_us: float = 2_000.0,
    concurrency: str = "none",
    seed: int = 11,
) -> FigureResult:
    """Serving saturation curve: throughput and latency vs offered load.

    The defaults reproduce the historical sweep bit-for-bit; the extra
    knobs are the scenario axes (``repro.scenario`` lowers serve specs
    here): key-popularity ``distribution`` (``"uniform"``/``"zipf"``/
    ``"zipf:THETA"``), arrival ``burstiness``, ``admission_mode``
    (``"fifo"`` or level-wise ``"batch"`` lookups), and page-level
    ``concurrency`` control.
    """
    result = FigureResult(
        "serve",
        "open-loop serving: throughput, latency percentiles and shedding vs offered load",
        [
            "offered_ops_s", "issued", "completed", "shed", "timeouts",
            "throughput_ops_s", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
            "queue_p99_ms", "mean_disk_util",
        ],
    )
    mix = OpMix(
        lookup=lookup_weight, scan=scan_weight, insert=insert_weight, scan_span=scan_span
    )
    for rate in offered_loads:
        db = MiniDbms(
            num_rows=num_rows, num_disks=num_disks, page_size=page_size,
            seed=seed, mature=False,
        )
        server = DbmsServer(
            db,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            pool_frames=pool_frames,
            deadline_us=deadline_us,
            admission_mode=admission_mode,
            batch_max=batch_max,
            batch_window_us=batch_window_us,
            concurrency=concurrency,
            seed=seed,
        )
        generator = OpenLoopLoadGenerator(
            server, rate_ops_s=rate, duration_s=duration_s, mix=mix, seed=seed,
            distribution=distribution, burstiness=burstiness,
        )
        stats = generator.run()
        assert stats.conserved(), "conservation identity violated at end of run"
        percentiles = stats.percentiles_us()
        wait = stats.queue_wait_histogram()
        result.add(
            offered_ops_s=rate,
            issued=stats.issued,
            completed=stats.completed,
            shed=stats.shed_count,
            timeouts=stats.timeouts,
            throughput_ops_s=round(stats.throughput_ops_s(server.env.now), 1),
            p50_ms=round(percentiles["p50"] / 1e3, 2),
            p95_ms=round(percentiles["p95"] / 1e3, 2),
            p99_ms=round(percentiles["p99"] / 1e3, 2),
            p999_ms=round(percentiles["p999"] / 1e3, 2),
            queue_p99_ms=round(wait.quantile(0.99) / 1e3, 2) if wait is not None else 0.0,
            mean_disk_util=round(server.mean_utilization(), 3),
        )
    result.notes.append(
        f"{num_disks}-disk array, {max_concurrency} tokens, queue bound {queue_depth}, "
        f"pool {pool_frames} frames, mix {mix.lookup:g}/{mix.scan:g}/{mix.insert:g} "
        f"lookup/scan/insert over {num_rows} rows for {duration_s:g}s per cell"
    )
    # Only non-default scenario knobs appear in the note, so the historical
    # default sweep's output stays byte-identical.
    knobs = []
    if distribution not in (None, "uniform"):
        knobs.append(f"{distribution} key popularity")
    if burstiness != 1.0:
        knobs.append(f"burstiness {burstiness:g}")
    if admission_mode != "fifo":
        knobs.append(f"admission {admission_mode} (max {batch_max}, window {batch_window_us:g}us)")
    if concurrency != "none":
        knobs.append(f"{concurrency} concurrency control")
    if knobs:
        result.notes.append("; ".join(knobs))
    return result


def serve_batch_race(
    num_rows: int = 8_000,
    num_disks: int = 4,
    page_size: int = 1024,
    offered_loads: Sequence[int] = (1600, 3200),
    duration_s: float = 1.5,
    max_concurrency: int = 2,
    queue_depth: int = 64,
    pool_frames: int = 48,
    batch_max: int = 32,
    batch_window_us: float = 8_000.0,
    lookup_weight: float = 0.90,
    insert_weight: float = 0.10,
    seed: int = 11,
) -> FigureResult:
    """Batched vs individual lookup admission on a lookup-heavy mix.

    Two runs per offered load over identical arrival streams: ``fifo``
    admits every lookup individually; ``batch`` collects them into
    size/window-bounded batches executed level-wise, so one admission
    token carries up to ``batch_max`` lookups, shared upper pages are
    read once, and each per-level prefetch wave lands sorted leaf reads
    near-sequentially on the striped disks.  Admission tokens are kept
    scarce (``max_concurrency=2``) because sequentiality is a property
    of the disk queue: many interleaved waves would shred it for the
    individual and batched modes alike.
    """
    result = FigureResult(
        "serve-batch",
        "batched vs individual lookup admission: throughput and latency per offered load",
        [
            "offered_ops_s", "mode", "lookup_throughput_ops_s", "lookups_completed",
            "completed", "shed", "p50_ms", "p99_ms", "batches", "mean_batch_size",
            "prefetch_waves",
        ],
    )
    mix = OpMix(lookup=lookup_weight, scan=0.0, insert=insert_weight)
    for rate in offered_loads:
        lookup_rates: dict[str, float] = {}
        for mode in ("fifo", "batch"):
            db = MiniDbms(
                num_rows=num_rows, num_disks=num_disks, page_size=page_size,
                seed=seed, mature=False,
            )
            server = DbmsServer(
                db,
                max_concurrency=max_concurrency,
                queue_depth=queue_depth,
                pool_frames=pool_frames,
                admission_mode=mode,
                batch_max=batch_max,
                batch_window_us=batch_window_us,
                seed=seed,
            )
            generator = OpenLoopLoadGenerator(
                server, rate_ops_s=rate, duration_s=duration_s, mix=mix, seed=seed
            )
            stats = generator.run()
            assert stats.conserved(), "conservation identity violated at end of run"
            elapsed_s = server.env.now / 1e6
            lookup_hist = stats.latency_histogram("lookup")
            lookup_rate = lookup_hist.count / elapsed_s if elapsed_s > 0 else 0.0
            lookup_rates[mode] = lookup_rate
            percentiles = stats.percentiles_us("lookup")
            result.add(
                offered_ops_s=rate,
                mode=mode,
                lookup_throughput_ops_s=round(lookup_rate, 1),
                lookups_completed=lookup_hist.count,
                completed=stats.completed,
                shed=stats.shed_count,
                p50_ms=round(percentiles["p50"] / 1e3, 2),
                p99_ms=round(percentiles["p99"] / 1e3, 2),
                batches=stats.batches,
                mean_batch_size=(
                    round(stats.batched_ops / stats.batches, 1) if stats.batches else 0.0
                ),
                prefetch_waves=int(server.reader.prefetch_waves),
            )
        if lookup_rates["fifo"] > 0:
            result.notes.append(
                f"load {rate}: batch/individual lookup throughput "
                f"{lookup_rates['batch'] / lookup_rates['fifo']:.2f}x"
            )
    result.notes.append(
        f"{num_disks}-disk array, {max_concurrency} tokens, batch_max {batch_max}, "
        f"window {batch_window_us:g}us, mix {mix.lookup:g}/{mix.insert:g} lookup/insert "
        f"over {num_rows} rows for {duration_s:g}s per cell"
    )
    return result
