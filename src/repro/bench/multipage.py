"""Multipage-sized tree nodes: the Section 2.1 latency/throughput trade-off.

The paper *argues* (without measuring) why fpB+-Trees keep single-page
nodes: striping a multipage node across disks and fetching its pages in
parallel improves the latency of one search, but in an OLTP mix the extra
seeks on every spindle destroy aggregate throughput, because throughput is
seek-limited.  This module turns that argument into a discrete-event
experiment:

* a tree with nodes of ``pages_per_node`` pages has a shallower page-level
  descent (fan-out grows with node size) but each node visit reads
  ``pages_per_node`` pages, striped across different disks and issued in
  parallel;
* ``concurrent_streams`` independent search streams share the disk array,
  as concurrent OLTP transactions share it in a real server.

With one stream, wider nodes win (parallel pages, fewer levels).  With
many streams, every disk is busy anyway and the extra seeks per search
make wide nodes strictly worse — exactly the paper's reasoning for
``target node size = one disk page``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..des import Environment
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from .results import FigureResult

__all__ = ["MultipageSearchModel", "simulate_search_load", "ablation_multipage_nodes"]


@dataclass(frozen=True)
class MultipageSearchModel:
    """Analytic geometry of a tree with nodes spanning several pages."""

    num_keys: int
    page_size: int = 16 * 1024
    pages_per_node: int = 1
    entry_bytes: int = 8
    header_bytes: int = 64

    @property
    def node_fanout(self) -> int:
        usable = self.pages_per_node * self.page_size - self.header_bytes
        return max(2, usable // self.entry_bytes)

    @property
    def levels(self) -> int:
        """Page-node levels from root to leaf."""
        levels = 1
        nodes = max(1, -(-self.num_keys // self.node_fanout))
        while nodes > 1:
            nodes = -(-nodes // self.node_fanout)
            levels += 1
        return levels

    @property
    def total_nodes(self) -> int:
        count = 0
        nodes = max(1, -(-self.num_keys // self.node_fanout))
        while True:
            count += nodes
            if nodes == 1:
                return count
            nodes = -(-nodes // self.node_fanout)


def simulate_search_load(
    model: MultipageSearchModel,
    num_disks: int = 10,
    concurrent_streams: int = 1,
    searches_per_stream: int = 20,
    seed: int = 0,
    disk: DiskParameters | None = None,
) -> tuple[float, float]:
    """Run concurrent random search streams; returns (avg latency us, throughput/s).

    Each search walks ``model.levels`` nodes.  A node visit reads
    ``pages_per_node`` pages on *distinct* disks in parallel (the paper's
    striping, e.g. "a 64KB node could be striped across 4 disks ... and
    read in parallel").  Random node placement models an uncached OLTP
    working set.
    """
    if disk is None:
        disk = DiskParameters(sequential_window_blocks=0)
    config = StorageConfig(
        page_size=model.page_size, num_disks=num_disks, buffer_pool_pages=8, disk=disk
    )
    env = Environment()
    array = DiskArray(env, config)
    rng = np.random.default_rng(seed)
    latencies: list[float] = []
    # Pre-draw the page ids each search touches (deterministic schedule).
    total_pages = max(model.total_nodes * model.pages_per_node, num_disks)

    def stream(stream_seed: int):
        stream_rng = np.random.default_rng(stream_seed)
        for __ in range(searches_per_stream):
            started = env.now
            for __level in range(model.levels):
                # One node: pages_per_node page reads on distinct disks.
                first = int(stream_rng.integers(0, total_pages))
                reads = [
                    array.read_page(first + offset)  # stripes round-robin
                    for offset in range(model.pages_per_node)
                ]
                yield env.all_of(reads)
            latencies.append(env.now - started)

    processes = [env.process(stream(int(rng.integers(0, 1 << 30)))) for __ in range(concurrent_streams)]
    env.run(until=env.all_of(processes))
    total_searches = concurrent_streams * searches_per_stream
    throughput = total_searches / (env.now / 1e6) if env.now > 0 else math.inf
    return float(np.mean(latencies)), throughput


def ablation_multipage_nodes(
    num_keys: int = 10_000_000,
    num_disks: int = 10,
    node_sizes: tuple = (1, 2, 4),
    stream_counts: tuple = (1, 16),
    searches_per_stream: int = 15,
) -> FigureResult:
    """Section 2.1's argument, measured: wide nodes help latency, hurt OLTP."""
    result = FigureResult(
        "ablation-multipage-nodes",
        "multipage-sized nodes: single-query latency vs OLTP throughput",
        ["pages_per_node", "streams", "levels", "latency_ms", "throughput_per_s"],
    )
    for pages in node_sizes:
        model = MultipageSearchModel(num_keys=num_keys, pages_per_node=pages)
        for streams in stream_counts:
            latency, throughput = simulate_search_load(
                model,
                num_disks=num_disks,
                concurrent_streams=streams,
                searches_per_stream=searches_per_stream,
            )
            result.add(
                pages_per_node=pages,
                streams=streams,
                levels=model.levels,
                latency_ms=round(latency / 1000, 2),
                throughput_per_s=round(throughput, 1),
            )
    return result
