"""The sharded-serving experiment: fleet scaling and boundary placement.

One sweep cell per ``(shard_count, placement, offered_load)`` — a fresh
key-range fleet (:func:`~repro.shard.build_fleet`) per cell, so cells
share no state and parallelize under ``--jobs`` — driving a block-Zipf
open-loop stream through the router and recording, per row:

* the fleet saturation story — issued / completed / shed plus lookup
  throughput and percentiles, which is where shard-count scaling shows
  (every fleet gets the *same per-shard hardware*, so a 4-shard fleet at
  an offered load that saturates 1 shard completes ~4x the lookups);
* the scatter–gather story — fragments dispatched, single- vs cross-shard
  scans and fragment timeouts, which is where boundary placement shows
  (optimized cuts split visibly fewer scans than equal-width cuts when
  the key popularity is skewed).

Each cell asserts fleet-wide conservation twice: once *mid-run* (the
clock frozen with requests genuinely in flight) and once at drain.
``placement="optimized"`` with one shard is the same fleet as
``equal_width`` (no cuts to place), so that combination is skipped — the
cell contributes no row under any ``--jobs`` split.
"""

from __future__ import annotations

from typing import Sequence

from ..serve import OpenLoopLoadGenerator
from ..shard import BoundaryPlanner, build_fleet
from ..workloads import KeyWorkload, OpMix, sample_ops
from .results import FigureResult

__all__ = ["shard_sweep"]


def shard_sweep(
    num_rows: int = 4_000,
    num_disks: int = 4,
    page_size: int = 4096,
    shard_counts: Sequence[int] = (1, 2, 4),
    placements: Sequence[str] = ("equal_width", "optimized"),
    offered_loads: Sequence[int] = (2000, 4000),
    duration_s: float = 0.5,
    max_concurrency: int = 8,
    queue_depth: int = 32,
    pool_frames: int = 64,
    lookup_weight: float = 0.70,
    scan_weight: float = 0.20,
    insert_weight: float = 0.10,
    scan_span: int = 64,
    distribution: str = "zipf",
    burstiness: float = 1.0,
    admission_mode: str = "fifo",
    batch_max: int = 16,
    batch_window_us: float = 2_000.0,
    sample_count: int = 4096,
    plan_seed: int = 3,
    seed: int = 11,
) -> FigureResult:
    """Sharded serving: throughput scaling and boundary-placement quality.

    ``admission_mode``/``batch_*`` select per-shard admission (``"batch"``
    groups each shard's point lookups into level-wise batches);
    ``burstiness`` shapes the open-loop arrival process.  Defaults
    reproduce the historical sweep bit-for-bit.
    """
    result = FigureResult(
        "shard",
        "key-range-sharded serving: fleet throughput and scan fan-out per "
        "shard count, boundary placement and offered load",
        [
            "shard_count", "placement", "offered_ops_s", "issued", "completed",
            "shed", "failed", "timeouts", "lookup_tput_ops_s", "p50_ms",
            "p99_ms", "scan_fragments", "cross_shard_scans",
            "single_shard_scans", "fragment_timeouts", "rr_inserts",
            "probe_in_flight",
        ],
    )
    mix = OpMix(
        lookup=lookup_weight, scan=scan_weight, insert=insert_weight, scan_span=scan_span
    )
    universe = KeyWorkload(num_rows, seed=7)
    sample = sample_ops(
        universe.keys.size, mix, distribution=distribution,
        count=sample_count, seed=plan_seed,
    )
    for shard_count in shard_counts:
        for placement in placements:
            if shard_count == 1 and placement == "optimized":
                # One shard has no boundaries to optimize: the fleet would
                # be identical to equal_width, so the cell emits no row.
                continue
            planner = BoundaryPlanner(universe.keys, shard_count)
            if placement == "equal_width":
                plan = planner.equal_width()
            elif placement == "optimized":
                plan = planner.optimized(sample)
            else:
                raise ValueError(f"unknown placement {placement!r}")
            for rate in offered_loads:
                router = build_fleet(
                    num_rows,
                    plan,
                    num_disks=num_disks,
                    page_size=page_size,
                    max_concurrency=max_concurrency,
                    queue_depth=queue_depth,
                    pool_frames=pool_frames,
                    admission_mode=admission_mode,
                    batch_max=batch_max,
                    batch_window_us=batch_window_us,
                    seed=seed,
                )
                generator = OpenLoopLoadGenerator(
                    router, rate_ops_s=rate, duration_s=duration_s, mix=mix,
                    seed=seed, distribution=distribution, burstiness=burstiness,
                )
                generator.start()
                # Freeze the clock mid-traffic: conservation must hold with
                # requests genuinely in flight, not just after the drain.
                router.run(until=duration_s * 1e6 / 2)
                router.check_conservation()
                probe_in_flight = router.fleet_stats().in_flight
                router.run()
                router.check_conservation()
                stats = router.stats
                lookup_hist = stats.latency_histogram("lookup")
                elapsed_s = router.env.now / 1e6
                percentiles = stats.percentiles_us("lookup")
                result.add(
                    shard_count=shard_count,
                    placement=placement,
                    offered_ops_s=rate,
                    issued=stats.issued,
                    completed=stats.completed,
                    shed=stats.shed_count,
                    failed=stats.failed,
                    timeouts=stats.timeouts,
                    lookup_tput_ops_s=round(
                        lookup_hist.count / elapsed_s if elapsed_s > 0 else 0.0, 1
                    ),
                    p50_ms=round(percentiles["p50"] / 1e3, 2),
                    p99_ms=round(percentiles["p99"] / 1e3, 2),
                    scan_fragments=router.scan_fragments,
                    cross_shard_scans=router.cross_shard_scans,
                    single_shard_scans=router.single_shard_scans,
                    fragment_timeouts=router.fragment_timeouts,
                    rr_inserts=router.rr_inserts,
                    probe_in_flight=probe_in_flight,
                )
    result.notes.append(
        f"per-shard hardware: {num_disks} disks, {max_concurrency} tokens, "
        f"queue bound {queue_depth}, pool {pool_frames} frames; "
        f"{distribution} key popularity, mix {mix.lookup:g}/{mix.scan:g}/"
        f"{mix.insert:g} lookup/scan/insert over {num_rows} rows for "
        f"{duration_s:g}s per cell; boundary plans from a "
        f"{sample_count}-op sample (seed {plan_seed})"
    )
    # Non-default scenario knobs only, keeping the default sweep's output
    # byte-identical to the historical one.
    knobs = []
    if burstiness != 1.0:
        knobs.append(f"burstiness {burstiness:g}")
    if admission_mode != "fifo":
        knobs.append(f"admission {admission_mode} (max {batch_max}, window {batch_window_us:g}us)")
    if knobs:
        result.notes.append("; ".join(knobs))
    return result
