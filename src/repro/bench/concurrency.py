"""The contended-serve experiment: page latches vs one coarse tree latch.

One row per ``(mode, seed)`` cell, same closed-loop write-heavy workload —
insert traffic forcing page splits while lookups and scans race through
the tree:

``coarse``
    Every operation serializes behind a single tree-wide latch (classic
    big-lock serving): a lookup arriving behind a splitting insert waits
    out the whole split.
``page``
    Optimistic latch-free reads with version validation plus
    latch-crabbing writes (:mod:`repro.btree.cc`): readers only pay for
    conflicts that actually happen.

Every cell records its full invocation/response history on the DES clock
and must pass the Wing–Gong linearizability checker — a rejected history
is archived as a replayable JSON artifact (the CI concurrency-smoke job
uploads it) and fails the run.  The headline claim is that page-level
concurrency control beats the coarse latch on p99 *lookup* latency under
write load while serving strictly no-worse goodput.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from ..faults import ChaosSchedule
from ..serve import ChaosRunner
from ..verify.linearizability import check_linearizable
from ..workloads.ops import OpMix
from .results import FigureResult

__all__ = ["concurrency_sweep"]

#: Where a rejected history is archived for replay (overridable per call).
DEFAULT_ARTIFACT_DIR = "test-artifacts/linearizability"


def concurrency_sweep(
    modes: Sequence[str] = ("coarse", "page"),
    seeds: Sequence[int] = (5, 13),
    num_rows: int = 500,
    num_disks: int = 4,
    page_size: int = 512,
    sessions: int = 6,
    ops_per_session: int = 25,
    think_time_us: float = 300.0,
    lookup_weight: float = 0.50,
    scan_weight: float = 0.10,
    insert_weight: float = 0.40,
    scan_span: int = 32,
    max_concurrency: int = 8,
    queue_depth: int = 64,
    pool_frames: int = 48,
    artifact_dir: Optional[str] = DEFAULT_ARTIFACT_DIR,
) -> FigureResult:
    """Contended serving under two concurrency-control regimes.

    Each cell is one :class:`~repro.serve.ChaosRunner` run (clean fault
    schedule — the chaos here is the concurrency itself) with history
    recording on; the row carries latency percentiles, latch-conflict
    counters and the linearizability verdict.
    """
    result = FigureResult(
        "concurrency",
        "contended closed-loop serving: coarse tree latch vs page-level "
        "optimistic reads + latch crabbing (every history checked linearizable)",
        [
            "mode", "seed", "ok_ops", "failed", "p99_lookup_ms", "p99_all_ms",
            "goodput_ops_s", "write_waits", "validation_failures",
            "read_restarts", "write_restarts", "pessimistic_writes",
            "history_ops", "pending_ops", "states_explored", "linearizable",
        ],
    )
    mix = OpMix(
        lookup=lookup_weight, scan=scan_weight, insert=insert_weight, scan_span=scan_span
    )
    for seed in seeds:
        for mode in modes:
            runner = ChaosRunner(
                ChaosSchedule.parse("", seed=seed),
                num_rows=num_rows,
                num_disks=num_disks,
                page_size=page_size,
                sessions=sessions,
                ops_per_session=ops_per_session,
                think_time_us=think_time_us,
                mix=mix,
                max_concurrency=max_concurrency,
                queue_depth=queue_depth,
                pool_frames=pool_frames,
                seed=seed,
                concurrency=mode,
                record_history=True,
            )
            report = runner.run()
            assert report["conserved"], f"conservation violated ({mode}, seed {seed})"
            assert report["lost_inserts"] == 0, f"inserts lost ({mode}, seed {seed})"
            history = runner.history.history()
            verdict = check_linearizable(history)
            if not verdict.ok and artifact_dir is not None:
                path = history.write(
                    Path(artifact_dir) / f"concurrency-{mode}-seed{seed}.json"
                )
                raise AssertionError(
                    f"non-linearizable history ({mode}, seed {seed}): "
                    f"{verdict.reason}; replayable artifact: {path}"
                )
            assert verdict.ok, f"non-linearizable history ({mode}, seed {seed})"
            latch = report["latch"]
            latency = report["snapshot"]["latency_us"]
            result.add(
                mode=mode,
                seed=seed,
                ok_ops=report["ok_ops"],
                failed=report["failed"],
                p99_lookup_ms=round(latency["lookup"]["p99"] / 1e3, 3),
                p99_all_ms=round(latency["all"]["p99"] / 1e3, 3),
                goodput_ops_s=report["goodput_ops_s"],
                write_waits=latch.get("write_waits", 0),
                validation_failures=latch.get("validation_failures", 0),
                read_restarts=latch.get("read_restarts", 0),
                write_restarts=latch.get("write_restarts", 0),
                pessimistic_writes=latch.get("pessimistic_writes", 0),
                history_ops=len(history.ops),
                pending_ops=len(history.pending),
                states_explored=verdict.states_explored,
                linearizable=int(verdict.ok),
            )
    result.notes.append(
        f"{sessions} closed-loop sessions x {ops_per_session} ops over "
        f"{num_rows} rows on {page_size}B pages (split-heavy), "
        f"mix {mix.lookup:g}/{mix.scan:g}/{mix.insert:g} lookup/scan/insert; "
        "page mode: optimistic reads + latch-crabbing writes; "
        "coarse mode: one tree-wide latch"
    )
    return result
