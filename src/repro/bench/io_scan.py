"""Timed range-scan I/O experiments (paper Figure 18).

Drives a discrete-event simulation of a range scan over a tree's leaf
pages: a scanner process consumes pages in key order, optionally keeping a
window of jump-pointer-array prefetches in flight ahead of itself.  The
disk array serves requests with realistic seek/transfer times, so scattered
leaf pages of a mature tree cost full seeks while bulkloaded trees scan
near-sequentially — exactly the contrast the paper exploits.

Overshooting (Section 2.2): with ``avoid_overshoot`` the scan searches the
end key up front and never prefetches past the end page; the ablation mode
keeps prefetching a full window beyond it, wasting I/Os on pages the scan
never consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..des import Environment
from ..storage.buffer import BufferPool
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from ..storage.pager import PageStore
from ..storage.prefetch import AsyncPageReader

__all__ = ["ScanTiming", "timed_range_scan", "leaf_pids_for_span", "first_key_of_leaf_page"]


@dataclass(frozen=True)
class ScanTiming:
    """Outcome of one simulated range scan."""

    elapsed_us: float
    pages_scanned: int
    disk_reads: int
    prefetches: int
    overshoot_reads: int

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0


def timed_range_scan(
    store: PageStore,
    leaf_pids: Sequence[int],
    start_path: Sequence[int] = (),
    end_path: Sequence[int] = (),
    extra_pids: Sequence[int] = (),
    *,
    num_disks: int = 1,
    use_prefetch: bool = False,
    prefetch_depth: int = 16,
    avoid_overshoot: bool = True,
    page_process_us: float = 100.0,
    page_size: Optional[int] = None,
    disk: Optional[DiskParameters] = None,
    pool_frames: Optional[int] = None,
) -> ScanTiming:
    """Simulate one range scan and return its timing.

    ``leaf_pids`` are the pages the scan consumes, in order.  ``start_path``
    / ``end_path`` are the search descents (the end-key search implements
    overshoot avoidance).  ``extra_pids`` are the leaf pages *after* the
    range — prefetched only in the overshooting ablation.
    """
    if page_size is None:
        page_size = store.page_size
    frames = pool_frames if pool_frames is not None else len(leaf_pids) + len(start_path) + len(end_path) + prefetch_depth + 16
    config = StorageConfig(
        page_size=page_size,
        num_disks=num_disks,
        buffer_pool_pages=max(frames, 8),
        disk=disk if disk is not None else DiskParameters(),
    )
    env = Environment()
    disks = DiskArray(env, config)
    pool = BufferPool(config, store)
    reader = AsyncPageReader(env, disks, pool)

    overshoot_targets = list(extra_pids)[:prefetch_depth] if not avoid_overshoot else []
    overshoot_issued = 0

    def scan():
        nonlocal overshoot_issued
        # Search for the start key (demand reads down the tree).
        for pid in start_path:
            yield from reader.demand(pid)
        if use_prefetch and avoid_overshoot:
            # Search for the end key too, remembering the range's end page.
            for pid in end_path:
                yield from reader.demand(pid)
        issued = 0
        for index, pid in enumerate(leaf_pids):
            if use_prefetch:
                while issued < min(index + prefetch_depth, len(leaf_pids)):
                    reader.prefetch(leaf_pids[issued])
                    issued += 1
                if not avoid_overshoot and index + prefetch_depth > len(leaf_pids):
                    # Keep the window full past the end of the range.
                    want = index + prefetch_depth - len(leaf_pids)
                    while overshoot_issued < min(want, len(overshoot_targets)):
                        reader.prefetch(overshoot_targets[overshoot_issued])
                        overshoot_issued += 1
            yield from reader.demand(pid)
            yield env.timeout(page_process_us)

    env.run(until=env.process(scan()))
    return ScanTiming(
        elapsed_us=env.now,
        pages_scanned=len(leaf_pids),
        disk_reads=disks.total_reads,
        prefetches=reader.prefetches,
        overshoot_reads=overshoot_issued,
    )


def leaf_pids_for_span(tree, start_key: int, end_key: int) -> tuple[list[int], list[int]]:
    """Leaf pages covering [start_key, end_key], plus the pages after them.

    Works for any of the four disk-resident index structures.  The second
    list (up to 64 following pages) feeds the overshooting ablation.
    """
    import numpy as np

    pids = tree.leaf_page_ids()
    firsts = [first_key_of_leaf_page(tree, pid) for pid in pids]
    lo = max(int(np.searchsorted(np.asarray(firsts), start_key, side="right")) - 1, 0)
    hi = max(int(np.searchsorted(np.asarray(firsts), end_key, side="right")) - 1, lo)
    return pids[lo : hi + 1], pids[hi + 1 : hi + 65]


def first_key_of_leaf_page(tree, pid: int) -> int:
    """Smallest key stored in a leaf page, for any supported tree type."""
    from ..baselines.disk_btree import DiskBPlusTree
    from ..core.cache_first import CacheFirstFpTree
    from ..core.disk_first import DiskFirstFpTree

    if isinstance(tree, DiskBPlusTree):  # covers micro-indexing too
        return int(tree.store.page(pid).keys[0])
    if isinstance(tree, DiskFirstFpTree):
        for node in tree.store.page(pid).leaf_nodes_in_order():
            if node.count:
                return int(node.keys[0])
        return 0
    if isinstance(tree, CacheFirstFpTree):
        first = tree._first_leaf_of_page(tree.store.page(pid))
        return int(first.keys[0]) if first is not None and first.count else 0
    raise TypeError(f"unsupported tree type {type(tree)!r}")
