"""Storage substrate: page store, CLOCK buffer pool, DES disk array, prefetch."""

from .buffer import BufferPool
from .config import DiskParameters, StorageConfig
from .disk import Disk, DiskArray
from .pager import PageStore
from .prefetch import AsyncPageReader

__all__ = [
    "BufferPool",
    "DiskParameters",
    "StorageConfig",
    "Disk",
    "DiskArray",
    "PageStore",
    "AsyncPageReader",
]
