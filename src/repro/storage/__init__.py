"""Storage substrate: page store, CLOCK buffer pool, DES disk array, prefetch,
plus the resilience layer (checksums, retries, hedged reads)."""

from .buffer import BufferPool, BufferPoolExhausted
from .config import DiskParameters, StorageConfig
from .disk import Disk, DiskArray, ReadReceipt, WriteReceipt
from .pager import PageStore, page_checksum
from .prefetch import AsyncPageReader, RetryPolicy

__all__ = [
    "BufferPool",
    "BufferPoolExhausted",
    "DiskParameters",
    "StorageConfig",
    "Disk",
    "DiskArray",
    "ReadReceipt",
    "WriteReceipt",
    "PageStore",
    "page_checksum",
    "AsyncPageReader",
    "RetryPolicy",
]
