"""Discrete-event disk-array model.

Each disk serves one request at a time from a FIFO queue, with a service
time from :class:`repro.storage.config.DiskParameters` that depends on how
far the head must move from the previous request's block.  Pages are striped
round-robin across disks (``page_id % num_disks``), which is what lets
jump-pointer-array prefetching overlap seeks on different spindles — the
mechanism behind the paper's Figure 18 speedups.

Two resilience hooks extend the fair-weather model:

* an optional :class:`~repro.faults.FaultInjector` perturbs individual
  reads — limped latency, transient timeouts (the command stalls, occupies
  the spindle, then fails with :class:`DiskTimeoutError`), corrupted
  deliveries (flagged on the :class:`ReadReceipt`, caught by the page
  checksum at the buffer pool), and permanent disk failures
  (:class:`DiskFailedError`);
* **mirrored striping** places every page on two spindles (chained
  declustering: the mirror of disk *d* is disk *d+1*), which is what makes
  retries and hedged reads useful against a slow or dead primary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Environment, Event, Resource
from ..faults.errors import DiskFailedError, DiskTimeoutError
from ..faults.injector import FaultInjector, ReadOutcome
from ..obs import MetricAttr, Observability, bind_counters
from .config import StorageConfig

__all__ = ["Disk", "DiskArray", "ReadReceipt", "WriteReceipt"]


@dataclass(frozen=True)
class ReadReceipt:
    """What a completed disk read hands back to the reader.

    ``corrupt`` means the device delivered data whose bits no longer match
    the stored checksum — the reader must not install the page.
    """

    page_id: int
    disk_id: int
    service_us: float
    corrupt: bool = False


@dataclass(frozen=True)
class WriteReceipt:
    """What a completed disk write hands back to the writer."""

    page_id: int
    disk_id: int
    service_us: float


class Disk:
    """A single spindle: FIFO service, head-position tracking.

    Counters live in the array's metrics registry (prefixed with this
    disk's track name, e.g. ``disk3.reads``) behind the attribute facade;
    completed reads feed a per-disk service-latency histogram, and every
    arrival samples the per-disk queue depth.
    """

    reads = MetricAttr("reads")
    writes = MetricAttr("writes")
    busy_time_us = MetricAttr("busy_time_us")
    faults = MetricAttr("faults")

    def __init__(self, env: Environment, array: "DiskArray", disk_id: int) -> None:
        self.env = env
        self.array = array
        self.disk_id = disk_id
        self.resource = Resource(env, capacity=1)
        self.head_block = -1
        self.track = f"{array.name}{disk_id}"
        obs = array.obs
        self._tracer = obs.tracer
        bind_counters(self, obs.metrics, self.track + ".", ("reads", "writes", "busy_time_us", "faults"))
        self._latency = obs.metrics.histogram(self.track + ".read_latency_us")
        self._queue_depth = obs.metrics.gauge(self.track + ".queue_depth")

    def _arrive(self) -> None:
        """Sample queue depth (waiters + in service) at request arrival."""
        depth = self.resource.queue_length + self.resource.count + 1
        self._queue_depth.set(depth)
        if self._tracer.enabled:
            self._tracer.counter(self.track + ".queue_depth", depth, track=self.track)

    def _span(self, name: str, start: float, page_id: int, outcome: str, us: float) -> None:
        if self._tracer.enabled:
            self._tracer.complete(
                name, self.track, start, cat="disk", page=page_id, outcome=outcome, us=us
            )

    def service_write(self, block: int, nbytes: int, page_id: int = -1):
        """Process generator: seize the disk, seek + transfer, release.

        Writes use the same positioning/transfer model as reads.  The
        read-fault injector never perturbs them: torn and lost writes are
        modelled above the spindle, at the WAL / write-back layer, where
        the crash points of a :class:`~repro.faults.FaultPlan` live.
        """
        self._arrive()
        with self.resource.request() as grant:
            yield grant
            start = self.env.now
            duration = self.array.config.disk.service_time_us(self.head_block, block, nbytes)
            self.head_block = block
            self.writes += 1
            self.busy_time_us += duration
            yield self.env.timeout(duration)
            self._span("write", start, page_id, "ok", duration)
            return WriteReceipt(page_id, self.disk_id, duration)

    def service(self, block: int, nbytes: int, page_id: int = -1):
        """Process generator: seize the disk, seek + transfer, release.

        Returns a :class:`ReadReceipt`, or raises a typed fault if the
        injector (when present) decides this read fails.  Every path that
        occupies the spindle — including a dead disk rejecting the command
        and a stalled command being declared lost — charges
        ``busy_time_us``, so utilization reflects real occupancy under any
        fault plan.
        """
        self._arrive()
        with self.resource.request() as grant:
            yield grant
            start = self.env.now
            injector = self.array.injector
            duration = self.array.config.disk.service_time_us(self.head_block, block, nbytes)
            if injector is None:
                self.head_block = block
                self.reads += 1
                self.busy_time_us += duration
                yield self.env.timeout(duration)
                self._latency.record(duration)
                self._span("read", start, page_id, "ok", duration)
                return ReadReceipt(page_id, self.disk_id, duration)

            decision = injector.decide(self.disk_id, self.env.now)
            if decision.outcome is ReadOutcome.DISK_FAILED:
                # A dead disk rejects the command quickly; the head is gone.
                # The rejection still occupies the spindle: charge it, or
                # utilization undercounts dead-disk occupancy.
                response = injector.plan.failed_response_us
                self.faults += 1
                self.busy_time_us += response
                yield self.env.timeout(response)
                self._span("read", start, page_id, "disk-failed", response)
                raise DiskFailedError(
                    self.disk_id, page_id, injector.profile(self.disk_id).fail_at_us or 0.0
                )
            duration *= decision.latency_multiplier
            self.head_block = block
            self.reads += 1
            if decision.outcome is ReadOutcome.TIMEOUT:
                # The command stalls and occupies the spindle until the
                # device declares it lost — lost commands are not free.
                stall = duration * injector.plan.timeout_stall_multiplier
                self.faults += 1
                self.busy_time_us += stall
                yield self.env.timeout(stall)
                self._span("read", start, page_id, "timeout", stall)
                raise DiskTimeoutError(self.disk_id, page_id, stall)
            self.busy_time_us += duration
            yield self.env.timeout(duration)
            self._latency.record(duration)
            if decision.outcome is ReadOutcome.CORRUPT:
                self.faults += 1
                self._span("read", start, page_id, "corrupt", duration)
            else:
                self._span("read", start, page_id, "ok", duration)
            return ReadReceipt(
                page_id,
                self.disk_id,
                duration,
                corrupt=decision.outcome is ReadOutcome.CORRUPT,
            )


class DiskArray:
    """A bank of disks with round-robin page striping.

    With ``mirrored=True`` every page also lives on the next spindle
    (chained declustering), at the same block position; readers choose a
    replica via ``read_page(page_id, replica=...)``.
    """

    total_reads = MetricAttr("total_reads")
    total_writes = MetricAttr("total_writes")

    def __init__(
        self,
        env: Environment,
        config: StorageConfig,
        injector: Optional[FaultInjector] = None,
        mirrored: bool = False,
        obs: Optional[Observability] = None,
        name: str = "disk",
    ) -> None:
        if mirrored and config.num_disks < 2:
            raise ValueError("mirrored striping needs at least two disks")
        self.env = env
        self.config = config
        self.injector = injector
        self.mirrored = mirrored
        #: Track-name prefix: spindle ``i`` reports as ``f"{name}{i}"``.
        self.name = name
        self.obs = obs if obs is not None else Observability()
        bind_counters(self, self.obs.metrics, f"{name}-array.", ("total_reads", "total_writes"))
        self.disks = [Disk(env, self, i) for i in range(config.num_disks)]

    @property
    def replicas_per_page(self) -> int:
        return 2 if self.mirrored else 1

    def replica_disks(self, page_id: int) -> list[int]:
        """Disk ids holding a copy of ``page_id`` (primary first)."""
        primary = self.config.disk_of(page_id)
        if not self.mirrored:
            return [primary]
        return [primary, (primary + 1) % self.config.num_disks]

    def read_page(self, page_id: int, replica: int = 0) -> Event:
        """Start an asynchronous page read; the event fires on completion.

        ``replica`` selects which copy to read (modulo the replica count),
        so retry loops can simply pass their attempt number.
        """
        if page_id < 0:
            raise ValueError(f"invalid page id {page_id}")
        self.total_reads += 1
        disks = self.replica_disks(page_id)
        disk = self.disks[disks[replica % len(disks)]]
        block = self.config.block_of(page_id)
        return self.env.process(disk.service(block, self.config.page_size, page_id))

    def write_page(self, page_id: int) -> Event:
        """Start an asynchronous page write; the event fires on completion.

        Writes always go to the primary replica — the durability model is
        single-copy (mirror resilvering is out of scope for the simulator).
        """
        if page_id < 0:
            raise ValueError(f"invalid page id {page_id}")
        self.total_writes += 1
        disk = self.disks[self.config.disk_of(page_id)]
        block = self.config.block_of(page_id)
        return self.env.process(disk.service_write(block, self.config.page_size, page_id))

    def write_at(self, disk_id: int, block: int, nbytes: int) -> Event:
        """Start a raw write of ``nbytes`` at an explicit block position.

        Used by the write-ahead log, whose appends advance sequentially
        through its dedicated spindle rather than striding by page id.
        """
        if not 0 <= disk_id < len(self.disks):
            raise ValueError(f"invalid disk id {disk_id}")
        self.total_writes += 1
        return self.env.process(self.disks[disk_id].service_write(block, nbytes))

    def utilization(self) -> list[float]:
        """Fraction of elapsed time each disk spent servicing requests."""
        if self.env.now <= 0:
            return [0.0] * len(self.disks)
        return [disk.busy_time_us / self.env.now for disk in self.disks]
