"""Discrete-event disk-array model.

Each disk serves one request at a time from a FIFO queue, with a service
time from :class:`repro.storage.config.DiskParameters` that depends on how
far the head must move from the previous request's block.  Pages are striped
round-robin across disks (``page_id % num_disks``), which is what lets
jump-pointer-array prefetching overlap seeks on different spindles — the
mechanism behind the paper's Figure 18 speedups.
"""

from __future__ import annotations

from ..des import Environment, Event, Resource
from .config import StorageConfig

__all__ = ["Disk", "DiskArray"]


class Disk:
    """A single spindle: FIFO service, head-position tracking."""

    def __init__(self, env: Environment, array: "DiskArray", disk_id: int) -> None:
        self.env = env
        self.array = array
        self.disk_id = disk_id
        self.resource = Resource(env, capacity=1)
        self.head_block = -1
        self.reads = 0
        self.busy_time_us = 0.0

    def service(self, block: int, nbytes: int):
        """Process generator: seize the disk, seek + transfer, release."""
        with self.resource.request() as grant:
            yield grant
            duration = self.array.config.disk.service_time_us(self.head_block, block, nbytes)
            self.head_block = block
            self.reads += 1
            self.busy_time_us += duration
            yield self.env.timeout(duration)


class DiskArray:
    """A bank of disks with round-robin page striping."""

    def __init__(self, env: Environment, config: StorageConfig) -> None:
        self.env = env
        self.config = config
        self.disks = [Disk(env, self, i) for i in range(config.num_disks)]
        self.total_reads = 0

    def read_page(self, page_id: int) -> Event:
        """Start an asynchronous page read; the event fires on completion."""
        if page_id < 0:
            raise ValueError(f"invalid page id {page_id}")
        self.total_reads += 1
        disk = self.disks[self.config.disk_of(page_id)]
        block = self.config.block_of(page_id)
        return self.env.process(disk.service(block, self.config.page_size))

    def utilization(self) -> list[float]:
        """Fraction of elapsed time each disk spent servicing requests."""
        if self.env.now <= 0:
            return [0.0] * len(self.disks)
        return [disk.busy_time_us / self.env.now for disk in self.disks]
