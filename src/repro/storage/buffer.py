"""Buffer pool with CLOCK replacement.

The pool tracks which pages are resident in which frame, assigns each frame a
base address in the simulated address space (so the cache model sees
realistic, stable addresses), counts hits/misses (the Figure 17 metric), and
charges the buffer-manager instruction overhead to the memory system's busy
time (the paper attributes the disk-optimized baseline's extra busy time to
exactly this overhead).

Replacement is the CLOCK (second-chance) algorithm, as in the paper's own
buffer manager (Section 4.1).  The pool is deliberately single-threaded: no
latching, and pin counts exist only to protect pages across recursive
operations when the pool is very small.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from ..faults.errors import PageChecksumError
from ..mem.hierarchy import MemorySystem
from ..mem.layout import AddressSpace
from ..obs import MetricAttr, Observability, bind_counters
from .config import StorageConfig
from .pager import PageStore

__all__ = ["BufferPool", "BufferPoolExhausted"]


class BufferPoolExhausted(RuntimeError):
    """Every frame is pinned; no victim exists.

    Carries pin diagnostics so the caller can see *who* is holding the pool
    hostage instead of guessing from a bare "exhausted" message:
    ``pinned_pages`` maps page id -> pin count, and ``pin_holders`` maps
    page id -> the owner labels passed to :meth:`BufferPool.pinned` (the
    serving layer passes its DES session/request names here, so a
    serving-time pool deadlock names the sessions holding the pins).
    """

    def __init__(
        self,
        frames: int,
        pinned_pages: dict[int, int],
        pin_holders: Optional[dict[int, tuple]] = None,
    ) -> None:
        self.frames = frames
        self.pinned_pages = dict(pinned_pages)
        self.pin_holders = {pid: tuple(owners) for pid, owners in (pin_holders or {}).items()}

        def describe(pid: int, count: int) -> str:
            owners = self.pin_holders.get(pid)
            if owners:
                return f"page {pid} (pins={count}, held by {', '.join(map(str, owners))})"
            return f"page {pid} (pins={count})"

        preview = ", ".join(
            describe(pid, count) for pid, count in list(pinned_pages.items())[:8]
        )
        if len(pinned_pages) > 8:
            preview += f", ... {len(pinned_pages) - 8} more"
        super().__init__(
            f"buffer pool exhausted: all {frames} frames pinned "
            f"({len(pinned_pages)} pinned pages: {preview})"
        )


class BufferPool:
    """CLOCK-replacement buffer pool over a :class:`PageStore`.

    Hit/miss/eviction counters live in the metrics registry behind the
    attribute facade (``pool.hits`` etc.), and the pool emits instant trace
    events for misses, evictions and flush-on-evict when tracing is on.
    """

    hits = MetricAttr("hits")
    misses = MetricAttr("misses")
    checksum_failures = MetricAttr("checksum_failures")
    evict_flushes = MetricAttr("evict_flushes")

    def __init__(
        self,
        config: StorageConfig,
        store: PageStore,
        mem: Optional[MemorySystem] = None,
        address_space: Optional[AddressSpace] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.mem = mem
        self.obs = obs if obs is not None else Observability()
        self._tracer = self.obs.tracer
        bind_counters(
            self, self.obs.metrics, "pool.",
            ("hits", "misses", "checksum_failures", "evict_flushes"),
        )
        self._residency = self.obs.metrics.gauge("pool.resident_pages")
        #: Verify page checksums on every fill (miss install).  On by
        #: default: the check is cheap and catches media rot at the exact
        #: boundary where a bad page would become visible to readers.
        self.verify_checksums = True
        frames = config.buffer_pool_pages
        self._frame_page: list[int] = [-1] * frames
        self._ref_bit = bytearray(frames)
        self._pin_count: list[int] = [0] * frames
        #: Per-frame owner labels of live pins (parallel to ``_pin_count``);
        #: populated only for pins that pass ``owner=``, so the common
        #: anonymous path costs nothing but an empty list.
        self._pin_owners: list[list[Any]] = [[] for __ in range(frames)]
        #: Per-frame occupancy generation, bumped whenever a frame changes
        #: (or loses) its page.  Lets :meth:`pinned` tell "the same page is
        #: back in the same frame" apart from "my pin is still the holder".
        self._frame_gen: list[int] = [0] * frames
        self._page_frame: dict[int, int] = {}
        self._hand = 0
        #: Pages whose in-memory content is newer than the durable image.
        #: Evicting one calls ``flush_hook`` first (flush-on-evict); with no
        #: hook the dirt is simply dropped, preserving the pre-WAL fiction
        #: that memory and disk are the same object.
        self._dirty: set[int] = set()
        #: Pages pinned by the no-steal policy: dirtied by an uncommitted
        #: transaction, so they must never be flushed (and therefore never
        #: evicted) until the transaction commits.
        self._no_steal: set[int] = set()
        #: Called with a page id before its frame is reused while dirty.
        self.flush_hook: Optional[Callable[[int], None]] = None
        self.evict_flushes = 0
        if mem is not None:
            space = address_space if address_space is not None else AddressSpace()
            self._base_address = space.alloc(
                frames * config.page_size, alignment=mem.config.line_size, label="buffer-pool"
            )
        else:
            self._base_address = 0

    # -- residency ---------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        """True if the page is resident (no side effects)."""
        return page_id in self._page_frame

    def frame_of(self, page_id: int) -> Optional[int]:
        """Frame index of a resident page, else None."""
        return self._page_frame.get(page_id)

    def frame_address(self, frame: int) -> int:
        """Simulated base address of a frame."""
        return self._base_address + frame * self.config.page_size

    @property
    def resident_pages(self) -> int:
        return len(self._page_frame)

    # -- the main entry point ------------------------------------------------

    def access(self, page_id: int) -> tuple[Any, int]:
        """Fetch a page through the pool; returns ``(page, base_address)``.

        A miss evicts via CLOCK and installs the page.  Buffer-manager
        instruction overhead is charged to the memory system's busy time.
        """
        if self.mem is not None:
            self.mem.busy(self.mem.cpu.buffer_pool_access)
        frame = self._page_frame.get(page_id)
        if frame is not None:
            self.hits += 1
            self._ref_bit[frame] = 1
        else:
            self.misses += 1
            frame = self._install(page_id)
        return self.store.page(page_id), self.frame_address(frame)

    def address_of(self, page_id: int) -> int:
        """Base address for a page, faulting it in if needed (no busy charge).

        Used for cheap re-derivation of addresses within an operation that
        already paid the buffer-manager cost via :meth:`access`.
        """
        frame = self._page_frame.get(page_id)
        if frame is None:
            self.misses += 1
            frame = self._install(page_id)
        return self.frame_address(frame)

    def install(self, page_id: int) -> int:
        """Make a page resident without touching hit/miss statistics.

        The preload path for "in memory" baseline curves: residency is a
        precondition of those experiments, not a measured event, so
        installing must not pollute the Figure 17-style hit rate.
        Returns the page's frame.
        """
        frame = self._page_frame.get(page_id)
        if frame is None:
            frame = self._install(page_id)
        return frame

    def fill(self, page_id: int, delivered_checksum: Optional[int] = None) -> tuple[Any, int]:
        """Install a page arriving from disk, verifying its checksum.

        ``delivered_checksum`` is the checksum of the bits as the disk
        delivered them (the reader computes it from the read receipt); it is
        compared against the checksum recorded at write time, so both media
        rot and in-flight corruption are caught here — before the page is
        visible to any reader — with a typed :class:`PageChecksumError`.
        """
        if delivered_checksum is not None:
            expected = self.store.expected_checksum(page_id)
            if delivered_checksum != expected:
                self.checksum_failures += 1
                raise PageChecksumError(page_id, expected, delivered_checksum)
        return self.access(page_id)

    def _install(self, page_id: int) -> int:
        if page_id not in self.store:
            raise KeyError(f"page {page_id} does not exist in the store")
        if self.verify_checksums and not self.store.verify_checksum(page_id):
            self.checksum_failures += 1
            raise PageChecksumError(
                page_id,
                self.store.expected_checksum(page_id),
                self.store.checksum(page_id),
            )
        frame = self._find_victim()
        old = self._frame_page[frame]
        if old >= 0:
            if old in self._dirty:
                # Flush-on-evict: the durable image must absorb the page's
                # dirt before the frame is reused.
                if self.flush_hook is not None:
                    self.evict_flushes += 1
                    if self._tracer.enabled:
                        self._tracer.instant("flush", track="pool", cat="pool", page=old)
                    self.flush_hook(old)
                self._dirty.discard(old)
            del self._page_frame[old]
            if self._tracer.enabled:
                self._tracer.instant("evict", track="pool", cat="pool", page=old)
        self._frame_page[frame] = page_id
        self._ref_bit[frame] = 1
        self._frame_gen[frame] += 1
        self._page_frame[page_id] = frame
        self._residency.set(len(self._page_frame))
        if self._tracer.enabled:
            self._tracer.instant("install", track="pool", cat="pool", page=page_id, frame=frame)
        return frame

    def _find_victim(self) -> int:
        frames = len(self._frame_page)
        # Two sweeps suffice: the first clears reference bits, the second
        # must find a frame unless everything is pinned.
        for __ in range(2 * frames + 1):
            frame = self._hand
            self._hand = (self._hand + 1) % frames
            if self._pin_count[frame] > 0:
                continue
            if self._frame_page[frame] in self._no_steal:
                continue
            if self._ref_bit[frame]:
                self._ref_bit[frame] = 0
                continue
            return frame
        pinned = {
            self._frame_page[frame]: self._pin_count[frame]
            for frame in range(frames)
            if self._pin_count[frame] > 0 or self._frame_page[frame] in self._no_steal
        }
        holders = {
            self._frame_page[frame]: tuple(self._pin_owners[frame])
            for frame in range(frames)
            if self._pin_owners[frame]
        }
        raise BufferPoolExhausted(frames, pinned, holders)

    # -- pinning -------------------------------------------------------------

    @contextmanager
    def pinned(self, page_id: int, owner: Any = None) -> Iterator[Any]:
        """Keep a page resident for the duration of a block.

        ``owner`` (optional) labels the pin for diagnostics: if the pool is
        later exhausted while this pin is live, the
        :class:`BufferPoolExhausted` error names it in ``pin_holders`` —
        the serving layer passes its session/request ids here so pool
        deadlocks under concurrency are attributable.
        """
        page, __ = self.access(page_id)
        frame = self._page_frame[page_id]
        generation = self._frame_gen[frame]
        self._pin_count[frame] += 1
        if owner is not None:
            self._pin_owners[frame].append(owner)
        try:
            yield page
        finally:
            # The page may have been invalidated (pin count reset) and the
            # frame handed to another occupant mid-block; only unpin if this
            # pin's occupancy still holds the frame.  Matching on the page
            # id alone is not enough: the same page can be re-installed into
            # the same frame after an invalidate, and decrementing then
            # would steal a newer holder's pin — the generation stamp tells
            # the two occupancies apart.
            if (
                self._page_frame.get(page_id) == frame
                and self._frame_gen[frame] == generation
                and self._pin_count[frame] > 0
            ):
                self._pin_count[frame] -= 1
                if owner is not None and owner in self._pin_owners[frame]:
                    self._pin_owners[frame].remove(owner)

    # -- dirty tracking ----------------------------------------------------------

    def mark_dirty(self, page_id: int, no_steal: bool = False) -> None:
        """Flag a resident page as newer than its durable image.

        ``no_steal=True`` additionally exempts the page from eviction until
        :meth:`release_no_steal` — the WAL's no-steal policy for pages
        dirtied by a transaction that has not committed yet.
        """
        self._dirty.add(page_id)
        if no_steal:
            self._no_steal.add(page_id)

    def is_dirty(self, page_id: int) -> bool:
        return page_id in self._dirty

    def mark_clean(self, page_id: int) -> None:
        """Drop a page's dirty flag (its image was just forced to disk)."""
        self._dirty.discard(page_id)

    def release_no_steal(self, page_id: int) -> None:
        """Make a no-steal page evictable again (its transaction committed)."""
        self._no_steal.discard(page_id)

    @property
    def dirty_pages(self) -> set[int]:
        return set(self._dirty)

    # -- maintenance -------------------------------------------------------------

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool (e.g. after it was freed).

        Any pins on the page die with it: the pin count must be reset, or
        the frame would be stuck holding a stale nonzero count and be
        excluded from eviction forever.
        """
        frame = self._page_frame.pop(page_id, None)
        if frame is not None:
            self._frame_page[frame] = -1
            self._ref_bit[frame] = 0
            self._pin_count[frame] = 0
            self._pin_owners[frame].clear()
            self._frame_gen[frame] += 1
            self._residency.set(len(self._page_frame))
        self._dirty.discard(page_id)
        self._no_steal.discard(page_id)

    def clear(self) -> None:
        """Empty the pool — the 'cleared before every experiment' state."""
        for frame in range(len(self._frame_page)):
            self._frame_page[frame] = -1
            self._ref_bit[frame] = 0
            self._pin_count[frame] = 0
            self._pin_owners[frame].clear()
            self._frame_gen[frame] += 1
        self._page_frame.clear()
        self._residency.set(0)
        self._dirty.clear()
        self._no_steal.clear()
        self._hand = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.checksum_failures = 0
        self.evict_flushes = 0
