"""Page store: page-id allocation and the simulated on-disk image.

The :class:`PageStore` owns the mapping from page ids to page objects.  A
"page object" is whatever node/page structure an index defines (see
:mod:`repro.btree`); the store does not interpret it.  Page ids are dense
integers so that striding them across a disk array is trivial, and freed ids
are recycled so space-overhead measurements (paper Figure 16) reflect real
page counts.

Every write (``allocate``/``place``/``replace``) also stamps a **page
checksum**.  Page objects are opaque, so the store models a page's bit
content with a per-page *media token*: the checksum recorded at write time
is a CRC over ``(page_id, token)``, and fault injection corrupts a page by
flipping bits in the token without restamping.  :meth:`checksum` recomputes
the CRC from the current token ("hash the bits as they are now");
:meth:`expected_checksum` returns the value recorded at write time — a
mismatch means the media rotted underneath us, exactly the latent-sector
errors the resilience layer must catch at the buffer-pool boundary.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Iterator, Optional

__all__ = ["PageStore", "page_checksum"]


def page_checksum(page_id: int, token: int) -> int:
    """CRC-32 of a page's simulated bit content."""
    return zlib.crc32(f"{page_id}:{token}".encode())


class PageStore:
    """Allocator and container for disk pages."""

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: dict[int, Any] = {}
        self._free_ids: list[int] = []
        self._next_id = 0
        self._tokens: dict[int, int] = {}
        self._checksums: dict[int, int] = {}
        self._write_counter = 0
        self._corruptions = 0
        self.allocations = 0
        self.frees = 0
        #: Optional hook ``(event, page_id) -> None`` with event one of
        #: ``"alloc"`` / ``"dirty"`` / ``"free"``; the WAL layer's
        #: transaction context registers here to track an update's write
        #: set.  ``None`` (the default) keeps the store observer-free.
        self.write_observer: Optional[Callable[[str, int], None]] = None

    # -- checksums -----------------------------------------------------------

    def _stamp(self, page_id: int) -> None:
        """Record the checksum of a page's content as of this write."""
        self._write_counter += 1
        token = self._write_counter
        self._tokens[page_id] = token
        self._checksums[page_id] = page_checksum(page_id, token)

    def checksum(self, page_id: int) -> int:
        """Checksum of the page's bits *as stored right now*."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        return page_checksum(page_id, self._tokens[page_id])

    def expected_checksum(self, page_id: int) -> int:
        """Checksum recorded when the page was last written."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        return self._checksums[page_id]

    def verify_checksum(self, page_id: int) -> bool:
        """True if the page's current bits still match the written checksum."""
        return self.checksum(page_id) == self._checksums[page_id]

    def corrupt_page(self, page_id: int) -> None:
        """Flip bits in a page's media (fault injection / chaos tests).

        The flip mask is derived from a monotonically increasing counter:
        a constant mask would make corruption self-inverse (two injected
        faults on the same page XOR back to the original token and the
        checksum passes again), silently un-detecting repeated faults.
        """
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        self._corruptions += 1
        # 0x9E3779B1 is odd, so distinct counter values give distinct masks
        # modulo 2**32 and no two corruptions can cancel each other out.
        mask = (0x5A5A5A5A ^ (self._corruptions * 0x9E3779B1)) & 0xFFFFFFFF
        self._tokens[page_id] ^= mask or 1

    def mark_dirty(self, page_id: int) -> None:
        """Record an in-place mutation of a page's content.

        Restamps the page (the media now holds the new bits) and notifies
        the write observer, if any — this is how an update's write set
        reaches the WAL transaction context.
        """
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        self._stamp(page_id)
        if self.write_observer is not None:
            self.write_observer("dirty", page_id)

    def scrub(self, page_id: int) -> None:
        """Rewrite a page's media from its (intact) page object, restamping."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        self._stamp(page_id)

    # -- allocation ----------------------------------------------------------

    def allocate(self, page: Any) -> int:
        """Store a new page, returning its page id."""
        if self._free_ids:
            page_id = self._free_ids.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = page
        self._stamp(page_id)
        self.allocations += 1
        if self.write_observer is not None:
            self.write_observer("alloc", page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page id for reuse."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        del self._pages[page_id]
        del self._tokens[page_id]
        del self._checksums[page_id]
        self._free_ids.append(page_id)
        self.frees += 1
        if self.write_observer is not None:
            self.write_observer("free", page_id)

    def place(self, page_id: int, page: Any) -> None:
        """Install a page under a specific id (used when loading an image)."""
        if page_id < 0:
            raise ValueError(f"invalid page id {page_id}")
        if page_id in self._pages:
            raise KeyError(f"page {page_id} is already allocated")
        self._pages[page_id] = page
        self._stamp(page_id)
        self._next_id = max(self._next_id, page_id + 1)
        self.allocations += 1

    def rebuild_free_list(self) -> None:
        """Recompute recyclable ids after placing pages at explicit ids."""
        self._free_ids = [
            page_id for page_id in range(self._next_id) if page_id not in self._pages
        ]

    def page(self, page_id: int) -> Any:
        """Fetch the page object for ``page_id``."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} is not allocated") from None

    def replace(self, page_id: int, page: Any) -> None:
        """Overwrite the page object stored under an existing id."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        self._pages[page_id] = page
        self._stamp(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def num_pages(self) -> int:
        """Number of live pages (the Figure 16 space metric)."""
        return len(self._pages)

    @property
    def total_bytes(self) -> int:
        """Live pages times page size."""
        return len(self._pages) * self.page_size

    def page_ids(self) -> Iterator[int]:
        """Iterate over live page ids (unspecified order)."""
        return iter(self._pages)

    def max_page_id(self) -> Optional[int]:
        """Largest id ever allocated, or None if none were."""
        return self._next_id - 1 if self._next_id else None
