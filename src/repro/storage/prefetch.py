"""Asynchronous page reading with prefetch, over the DES disk array.

:class:`AsyncPageReader` is the glue between scan processes and the disk
array: demand reads block the calling process until the page is resident,
while prefetches are fire-and-forget.  Duplicate requests for an in-flight
page coalesce onto the same I/O — a scanner that demands a page already being
prefetched simply waits for the remaining time, which is precisely how
jump-pointer-array prefetching converts disk latency into overlap (paper
Sections 2.2 and 4.3.2).
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment, Event
from .buffer import BufferPool
from .disk import DiskArray

__all__ = ["AsyncPageReader"]


class AsyncPageReader:
    """Coordinates demand reads and prefetches against one buffer pool."""

    def __init__(self, env: Environment, disks: DiskArray, pool: BufferPool) -> None:
        self.env = env
        self.disks = disks
        self.pool = pool
        self._inflight: dict[int, Event] = {}
        self.demand_hits = 0
        self.demand_reads = 0
        self.demand_covered = 0  # demand found the page already in flight
        self.prefetches = 0

    @property
    def outstanding(self) -> int:
        """Number of page reads currently in flight."""
        return len(self._inflight)

    def demand(self, page_id: int):
        """Process generator: block until ``page_id`` is resident."""
        if self.pool.contains(page_id):
            self.demand_hits += 1
            self.pool.access(page_id)  # refresh CLOCK reference bit
            return
        event = self._inflight.get(page_id)
        if event is None:
            event = self._start_read(page_id)
            self.demand_reads += 1
        else:
            self.demand_covered += 1
        yield event

    def prefetch(self, page_id: int) -> Optional[Event]:
        """Start a non-blocking read; returns its event, or None if unneeded."""
        if self.pool.contains(page_id) or page_id in self._inflight:
            return None
        self.prefetches += 1
        return self._start_read(page_id)

    def _start_read(self, page_id: int) -> Event:
        event = self.disks.read_page(page_id)
        self._inflight[page_id] = event
        event.callbacks.append(lambda __: self._complete(page_id))
        return event

    def _complete(self, page_id: int) -> None:
        self._inflight.pop(page_id, None)
        if not self.pool.contains(page_id):
            self.pool.access(page_id)

    def preload(self, page_ids) -> None:
        """Instantly mark pages resident (the 'in memory' baseline curves)."""
        for page_id in page_ids:
            if not self.pool.contains(page_id):
                self.pool.access(page_id)
