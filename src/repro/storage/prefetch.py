"""Asynchronous page reading with prefetch, retries and hedging.

:class:`AsyncPageReader` is the glue between scan processes and the disk
array: demand reads block the calling process until the page is resident,
while prefetches are fire-and-forget.  Duplicate requests for an in-flight
page coalesce onto the same I/O — a scanner that demands a page already being
prefetched simply waits for the remaining time, which is precisely how
jump-pointer-array prefetching converts disk latency into overlap (paper
Sections 2.2 and 4.3.2).

With a :class:`RetryPolicy` attached, every read becomes a *reliable read*:

* each attempt carries a DES-clock deadline (timeout-with-cancel — the
  reader abandons the wait; the spindle finishes on its own);
* failed or corrupt attempts are retried with exponential backoff and
  deterministic seeded jitter, alternating replicas when the array is
  mirrored;
* optionally, a **hedged read** is launched against the mirror replica once
  the primary has been quiet for ``hedge_after_us`` — converting the tail
  latency of a limping spindle into overlap, the same move jump-pointer
  prefetching makes against seek latency.

Completed reads install their page through :meth:`BufferPool.fill`, so every
corrupt delivery is caught by the page checksum at the pool boundary.
Without a policy the reader surfaces faults to the caller unretried.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..des import Environment, Event, WaitTimeout, first_success, with_timeout
from ..faults.errors import (
    DiskTimeoutError,
    PageChecksumError,
    ReadFailedError,
    StorageFault,
)
from ..obs import MetricAttr, Observability, bind_counters
from .buffer import BufferPool
from .disk import DiskArray, ReadReceipt

__all__ = ["AsyncPageReader", "RetryPolicy"]

#: XOR mask applied to a delivered checksum when the wire corrupts a read.
_WIRE_CORRUPTION = 0x00F00F00


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with DES-clock exponential backoff and hedging.

    ``timeout_us`` is the per-attempt deadline (``None`` waits forever);
    ``hedge_after_us``, when set on a mirrored array, launches a second read
    on the mirror replica once the primary has been in flight that long.
    Jitter is drawn from the reader's seeded RNG, so backoff sequences are
    deterministic per run.
    """

    max_attempts: int = 4
    timeout_us: Optional[float] = 60_000.0
    backoff_base_us: float = 1_000.0
    backoff_multiplier: float = 2.0
    backoff_cap_us: float = 64_000.0
    jitter_fraction: float = 0.25
    hedge_after_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_us is not None and self.timeout_us <= 0:
            raise ValueError(f"timeout_us must be positive or None, got {self.timeout_us}")
        if self.backoff_base_us < 0:
            raise ValueError(f"backoff_base_us must be >= 0, got {self.backoff_base_us}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if self.backoff_cap_us < self.backoff_base_us:
            raise ValueError("backoff_cap_us must be >= backoff_base_us")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}")
        if self.hedge_after_us is not None and self.hedge_after_us <= 0:
            raise ValueError(f"hedge_after_us must be positive or None, got {self.hedge_after_us}")

    def backoff_delay_us(self, retry: int, rng: random.Random) -> float:
        """Backoff before retry number ``retry`` (1-based), with jitter."""
        delay = min(
            self.backoff_base_us * self.backoff_multiplier ** (retry - 1),
            self.backoff_cap_us,
        )
        if self.jitter_fraction and delay > 0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return delay


class AsyncPageReader:
    """Coordinates demand reads and prefetches against one buffer pool.

    All counters live in the metrics registry behind the attribute facade
    (``reader.retries`` etc.); with tracing enabled the reader emits
    instant events for demand/prefetch issue, coalescing, retries,
    backoff, hedges and faults on the ``reader`` track.
    """

    demand_hits = MetricAttr("demand_hits")
    demand_reads = MetricAttr("demand_reads")
    demand_covered = MetricAttr("demand_covered")
    prefetches = MetricAttr("prefetches")
    prefetches_suppressed = MetricAttr("prefetches_suppressed")
    prefetch_waves = MetricAttr("prefetch_waves")
    prefetch_wave_pages = MetricAttr("prefetch_wave_pages")
    faults_seen = MetricAttr("faults_seen")
    retries = MetricAttr("retries")
    timeouts = MetricAttr("timeouts")
    checksum_failures = MetricAttr("checksum_failures")
    hedges = MetricAttr("hedges")
    hedge_wins = MetricAttr("hedge_wins")
    backoff_us = MetricAttr("backoff_us")

    def __init__(
        self,
        env: Environment,
        disks: DiskArray,
        pool: BufferPool,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.disks = disks
        self.pool = pool
        self.policy = policy
        self.obs = obs if obs is not None else Observability()
        self._tracer = self.obs.tracer
        bind_counters(
            self, self.obs.metrics, "reader.",
            (
                "demand_hits", "demand_reads", "demand_covered", "prefetches",
                "prefetches_suppressed", "prefetch_waves", "prefetch_wave_pages",
                "faults_seen", "retries", "timeouts",
                "checksum_failures", "hedges", "hedge_wins", "backoff_us",
            ),
        )
        self._rng = random.Random((seed << 8) ^ 0x5EED)
        self._inflight: dict[int, Event] = {}
        # Degradation switches (flipped by the query engine's ladder and
        # the serving layer's brownout controller).
        self.hedge_enabled = True
        self.prefetch_enabled = True
        #: When set, new prefetches are suppressed while that many page
        #: reads (demand or prefetch) are already in flight — a brownout
        #: bound on speculative I/O that never blocks demand reads.
        self.max_outstanding_prefetches: Optional[int] = None

    def _mark(self, name: str, **args) -> None:
        if self._tracer.enabled:
            self._tracer.instant(name, track="reader", cat="reader", **args)

    @property
    def outstanding(self) -> int:
        """Number of page reads currently in flight."""
        return len(self._inflight)

    def demand(self, page_id: int):
        """Process generator: block until ``page_id`` is resident.

        A demand that coalesced onto an in-flight read which then *fails*
        falls back to a read of its own rather than failing the caller.
        """
        if self.pool.contains(page_id):
            self.demand_hits += 1
            self.pool.access(page_id)  # refresh CLOCK reference bit
            return
        event = self._inflight.get(page_id)
        coalesced = event is not None
        if coalesced:
            self.demand_covered += 1
            self._mark("demand-coalesced", page=page_id)
        else:
            event = self._start_read(page_id)
            self.demand_reads += 1
            self._mark("demand", page=page_id)
        receipt = None
        try:
            receipt = yield event
        except (StorageFault, WaitTimeout):
            if not coalesced:
                raise
            if not self.pool.contains(page_id):
                # The read we piggybacked on died; recover with our own.
                self.demand_reads += 1
                receipt = yield self._start_read(page_id)
        if receipt is not None and not self.pool.contains(page_id):
            # Policy-less mode: the read completed but delivered corrupt
            # bits, so the fill was refused.  Surface the typed error.
            raise PageChecksumError(
                page_id,
                self.pool.store.expected_checksum(page_id),
                self._delivered_checksum(receipt),
            )

    def prefetch(self, page_id: int) -> Optional[Event]:
        """Start a non-blocking read; returns its event, or None if unneeded.

        Duplicate prefetches of an in-flight or resident page are no-ops and
        are not counted.  Returns None without reading when prefetching has
        been degraded off.
        """
        if not self.prefetch_enabled:
            return None
        if self.pool.contains(page_id) or page_id in self._inflight:
            return None
        if (
            self.max_outstanding_prefetches is not None
            and len(self._inflight) >= self.max_outstanding_prefetches
        ):
            self.prefetches_suppressed += 1
            return None
        self.prefetches += 1
        self._mark("prefetch", page=page_id)
        return self._start_read(page_id)

    def prefetch_wave(self, page_ids) -> int:
        """Issue one level's worth of prefetches as a single wave.

        Batched traversals hand the whole next frontier over at once (in
        sorted page-id order, so the spindles see near-sequential runs);
        resident and in-flight pages are skipped.  Every page goes through
        :meth:`prefetch`, so a wave honors the same degradation knobs as
        single prefetches — in particular a brownout-shrunken
        ``max_outstanding_prefetches`` bounds the wave and counts the
        overflow as suppressed.  Returns the number of reads started.
        """
        if not self.prefetch_enabled:
            return 0
        issued = 0
        for page_id in page_ids:
            if self.prefetch(page_id) is not None:
                issued += 1
        if issued:
            self.prefetch_waves += 1
            self.prefetch_wave_pages += issued
        return issued

    # -- read paths ----------------------------------------------------------

    def _start_read(self, page_id: int) -> Event:
        if self.policy is not None:
            event = self.env.process(self._reliable_read(page_id))
        else:
            event = self.disks.read_page(page_id)
        self._inflight[page_id] = event
        event.callbacks.append(lambda ev, pid=page_id: self._complete(pid, ev))
        return event

    def _reliable_read(self, page_id: int):
        """Process generator: read with retries, backoff and hedging."""
        policy = self.policy
        last_error: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff_delay_us(attempt, self._rng)
                self.retries += 1
                self.backoff_us += delay
                self._mark("retry", page=page_id, attempt=attempt, backoff_us=delay)
                yield self.env.timeout(delay)
            try:
                receipt = yield from self._attempt(page_id, attempt)
            except (StorageFault, WaitTimeout) as fault:
                self.faults_seen += 1
                if isinstance(fault, (DiskTimeoutError, WaitTimeout)):
                    self.timeouts += 1
                self._mark("fault", page=page_id, attempt=attempt, kind=type(fault).__name__)
                last_error = fault
                continue
            try:
                self._fill(receipt)
            except PageChecksumError as fault:
                last_error = fault
                continue
            return receipt
        raise ReadFailedError(page_id, policy.max_attempts, last_error)

    def _attempt(self, page_id: int, attempt: int):
        """One read attempt: deadline-bounded, optionally hedged."""
        read = self.disks.read_page(page_id, replica=attempt)
        deadline = self.policy.timeout_us
        if (
            self.hedge_enabled
            and self.policy.hedge_after_us is not None
            and self.disks.replicas_per_page > 1
        ):
            receipt = yield from self._race_with_hedge(page_id, read, attempt, deadline)
            return receipt
        if deadline is None:
            receipt = yield read
        else:
            receipt = yield with_timeout(self.env, read, deadline, detail=f"page {page_id}")
        return receipt

    def _race_with_hedge(self, page_id: int, primary: Event, attempt: int, deadline):
        """Wait briefly on the primary, then race it against the mirror.

        The attempt's total wait never exceeds ``deadline``: the hedge
        cutoff is clamped to the deadline, and the race afterwards only
        gets the genuinely remaining budget.  (An unclamped cutoff used to
        let an attempt run for ``cutoff + deadline``.)
        """
        cutoff = self.policy.hedge_after_us
        if deadline is not None and cutoff > deadline:
            cutoff = deadline
        try:
            receipt = yield with_timeout(self.env, primary, cutoff, detail="hedge cutoff")
            return receipt
        except WaitTimeout:
            pass  # primary is slow — hedge against the mirror
        if deadline is not None and deadline - cutoff <= 0:
            # The cutoff consumed the whole per-attempt budget: this
            # attempt is out of time before a hedge could help.
            raise WaitTimeout(deadline, f"page {page_id}")
        self.hedges += 1
        self._mark("hedge", page=page_id, attempt=attempt)
        hedge = self.disks.read_page(page_id, replica=attempt + 1)
        race = first_success(self.env, [primary, hedge])
        if deadline is not None:
            race = with_timeout(self.env, race, deadline - cutoff, detail=f"page {page_id}")
        winner, receipt = yield race
        if winner == 1:
            self.hedge_wins += 1
            self._mark("hedge-win", page=page_id, attempt=attempt)
        return receipt

    def _delivered_checksum(self, receipt: ReadReceipt) -> int:
        """Checksum of the bits as the disk delivered them."""
        checksum = self.pool.store.checksum(receipt.page_id)
        if receipt.corrupt:
            checksum ^= _WIRE_CORRUPTION
        return checksum

    def _fill(self, receipt: ReadReceipt):
        """Install a delivered page through the checksum-verified pool fill."""
        delivered = self._delivered_checksum(receipt)
        try:
            return self.pool.fill(receipt.page_id, delivered_checksum=delivered)
        except PageChecksumError:
            self.checksum_failures += 1
            self.faults_seen += 1
            raise

    def _complete(self, page_id: int, event: Event) -> None:
        self._inflight.pop(page_id, None)
        if not event.ok:
            return  # waiters saw the failure; prefetches just evaporate
        receipt = event.value
        if receipt is None or self.pool.contains(page_id):
            return
        try:
            self._fill(receipt)
        except PageChecksumError:
            pass  # counted in _fill; the page stays non-resident

    def preload(self, page_ids) -> None:
        """Instantly mark pages resident (the 'in memory' baseline curves).

        Residency is installed without touching the pool's hit/miss
        counters (routing through ``pool.access`` used to charge one miss
        per page, polluting the baseline's hit rate before the measured
        scan even started), and any statistics the installs did disturb
        (eviction counts in a small pool) are reset afterwards.
        """
        for page_id in page_ids:
            self.pool.install(page_id)
        self.pool.reset_stats()
