"""Storage-layer configuration.

Disk timing defaults approximate the paper's range-scan platform (Section
4.3.2): an SGI Origin 200 with Seagate Cheetah 4LP SCSI disks — 40 MB/s
transfer, ~1 ms track-to-track seeks, a few ms of seek + rotational delay
for random accesses, and 16 KB pages matching the file-system block size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskParameters", "StorageConfig"]


@dataclass(frozen=True)
class DiskParameters:
    """Per-disk timing model (all times in microseconds)."""

    seek_time_us: float = 5000.0  # average seek for a random access
    rotational_latency_us: float = 3000.0  # 10k RPM -> ~3 ms average
    track_to_track_us: float = 1000.0  # near-sequential repositioning
    transfer_rate_bytes_per_us: float = 40.0  # 40 MB/s sustained
    sequential_window_blocks: int = 16  # |Δblock| below this counts as "near"

    def __post_init__(self) -> None:
        if self.transfer_rate_bytes_per_us <= 0:
            raise ValueError(
                f"transfer_rate_bytes_per_us must be positive, got {self.transfer_rate_bytes_per_us}"
            )
        for name in ("seek_time_us", "rotational_latency_us", "track_to_track_us"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.sequential_window_blocks < 0:
            raise ValueError(
                f"sequential_window_blocks must be >= 0, got {self.sequential_window_blocks}"
            )

    def service_time_us(self, previous_block: int, block: int, nbytes: int) -> float:
        """Time to position and transfer ``nbytes`` at ``block``.

        A short hop from the previous block (within
        ``sequential_window_blocks``) pays only a track-to-track
        repositioning; anything farther pays the full seek plus average
        rotational delay.
        """
        transfer = nbytes / self.transfer_rate_bytes_per_us
        if previous_block < 0:
            return self.seek_time_us + self.rotational_latency_us + transfer
        distance = abs(block - previous_block)
        if distance == 0:
            return transfer
        if distance <= self.sequential_window_blocks:
            return self.track_to_track_us + transfer
        return self.seek_time_us + self.rotational_latency_us + transfer


@dataclass(frozen=True)
class StorageConfig:
    """Disk array and buffer-pool geometry."""

    page_size: int = 16 * 1024
    num_disks: int = 1
    buffer_pool_pages: int = 4096
    disk: DiskParameters = DiskParameters()

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page_size must be a positive power of two, got {self.page_size}")
        if self.num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {self.num_disks}")
        if self.buffer_pool_pages < 1:
            raise ValueError("buffer pool needs at least one frame")

    def disk_of(self, page_id: int) -> int:
        """Disk holding ``page_id`` (round-robin striping)."""
        return page_id % self.num_disks

    def block_of(self, page_id: int) -> int:
        """Block position of ``page_id`` on its disk."""
        return page_id // self.num_disks
