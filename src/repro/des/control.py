"""Control-flow helpers over the DES kernel: timeouts-with-cancel and races.

The kernel deliberately has no process interruption, so "cancelling" a wait
means *detaching from it*: :func:`with_timeout` and :func:`first_success`
return fresh events that resolve from whichever source wins, while the
losing events keep their observer callbacks attached — so a late failure is
always considered handled and never crashes the event loop.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .core import Environment, Event

__all__ = ["WaitTimeout", "with_timeout", "first_success"]


class WaitTimeout(Exception):
    """A wait placed on an event expired before the event triggered."""

    def __init__(self, delay: float, detail: str = "") -> None:
        self.delay = delay
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"wait expired after {delay:g} time units{suffix}")


def _forward(source: Event, target: Event) -> None:
    """Resolve ``target`` with ``source``'s result, if still unresolved."""
    if target.triggered:
        return
    if source.ok:
        target.succeed(source.value)
    else:
        target.fail(source.value)


def with_timeout(env: Environment, event: Event, delay: float, detail: str = "") -> Event:
    """Wait on ``event`` for at most ``delay`` time units.

    Returns a new event that mirrors ``event`` if it resolves in time, and
    fails with :class:`WaitTimeout` otherwise.  Either way the underlying
    event is left to run to completion; its late result (success *or*
    failure) is silently absorbed.
    """
    if delay < 0:
        raise ValueError(f"negative delay {delay}")
    result = Event(env)
    if event.processed:
        _forward(event, result)
        return result
    timer = env.timeout(delay)

    def on_event(ev: Event) -> None:
        _forward(ev, result)

    def on_timer(__: Event) -> None:
        if not result.triggered:
            result.fail(WaitTimeout(delay, detail))

    event.callbacks.append(on_event)
    timer.callbacks.append(on_timer)
    return result


def first_success(env: Environment, events: Iterable[Event]) -> Event:
    """Race ``events``; resolve with the first *success*.

    The returned event succeeds with ``(index, value)`` of the first event
    to succeed.  Unlike :class:`~repro.des.AnyOf`, individual failures do
    not abort the race — the result only fails (with the last failure) once
    *every* contender has failed.  Losers are absorbed as in
    :func:`with_timeout`.
    """
    contenders = list(events)
    if not contenders:
        raise ValueError("first_success() needs at least one event")
    result = Event(env)
    state = {"pending": len(contenders), "last_error": None}

    def observe(index: int, ev: Event) -> None:
        state["pending"] -= 1
        if result.triggered:
            return
        if ev.ok:
            result.succeed((index, ev.value))
        else:
            state["last_error"] = ev.value
            if state["pending"] == 0:
                result.fail(state["last_error"])

    # Every contender gets an observer even after the race is decided, so a
    # late failure is always handled and never crashes the event loop.
    for index, ev in enumerate(contenders):
        if ev.processed:
            observe(index, ev)
        else:
            ev.callbacks.append(lambda e, i=index: observe(i, e))
    return result
