"""Shared-resource primitives for the DES kernel.

Provides the abstractions the storage, DBMS and serving simulators need:

* :class:`Resource` — a counted resource (e.g. a disk's service slot or a
  pool of I/O server processes) with FIFO request queuing.
* :class:`PriorityResource` — the same, but waiters are granted by
  priority class (lower first) with FIFO fairness inside a class; the
  serving layer's admission controller runs on it.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (used for request queues between producers and server processes).

All follow the simpy idiom: ``request()``/``put()``/``get()`` return events
to be yielded from a process.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Request", "Store", "PriorityStore"]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    # Context-manager sugar: ``with resource.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)


class Resource:
    """A resource with integer capacity and FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event triggers when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit, waking the next waiter."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiting:
            # Released before it was ever granted: just drop it.
            self._waiting.remove(request)
            return
        else:
            raise SimulationError("release() of a request not issued on this resource")
        if self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource (e.g. a brownout shrinking a token pool).

        Growing grants queued waiters immediately; shrinking never preempts
        current holders — the pool drains down to the new capacity as they
        release.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A resource whose waiters are granted by priority, not arrival order.

    ``request(priority=...)`` claims a unit; among waiters, the smallest
    priority wins, and ties break FIFO via a sequence number — so equal
    priorities degrade to the plain :class:`Resource` fairness.  Requests
    already *holding* the resource are never preempted.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Request]] = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._heap)

    def request(self, priority: Any = 0) -> Request:
        """Claim one unit; among waiters, the lowest priority is granted first."""
        req = Request(self)
        if len(self._users) < self.capacity and not self._heap:
            self._users.add(req)
            req.succeed()
        else:
            heapq.heappush(self._heap, (priority, self._seq, req))
            self._seq += 1
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit (or abandon a queued claim), waking the best waiter."""
        if request in self._users:
            self._users.remove(request)
        else:
            before = len(self._heap)
            self._heap = [entry for entry in self._heap if entry[2] is not request]
            if len(self._heap) == before:
                raise SimulationError("release() of a request not issued on this resource")
            heapq.heapify(self._heap)
            return
        if self._heap and len(self._users) < self.capacity:
            __, __, nxt = heapq.heappop(self._heap)
            self._users.add(nxt)
            nxt.succeed()

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource; growth grants the best queued waiters."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self._heap and len(self._users) < self.capacity:
            __, __, nxt = heapq.heappop(self._heap)
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit an item (never blocks); returns an already-fired event."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
        event.succeed()
        return event

    def get(self) -> Event:
        """Take the oldest item; the event triggers with the item as value."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class PriorityStore(Store):
    """A store that hands out the smallest item first.

    Items must be mutually comparable; ties break FIFO via a sequence number.
    """

    def __init__(self, env: Environment, key: Optional[Callable[[Any], Any]] = None) -> None:
        super().__init__(env)
        self._key = key if key is not None else (lambda item: item)
        self._seq = 0
        self._heap: list[tuple[Any, int, Any]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any) -> Event:
        import heapq

        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            heapq.heappush(self._heap, (self._key(item), self._seq, item))
            self._seq += 1
        event.succeed()
        return event

    def get(self) -> Event:
        import heapq

        event = Event(self.env)
        if self._heap:
            __, __, item = heapq.heappop(self._heap)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event
