"""Discrete-event simulation kernel.

A small, dependency-free, simpy-flavoured event loop.  Simulation *processes*
are Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` resumes a process when the event it waits on is
triggered.  Time is a float with no unit attached — the storage layer uses
microseconds, but nothing in this module cares.

Only the features the reproduction needs are implemented: timeouts, generic
events, process joining, and ``AllOf``/``AnyOf`` condition events.  Process
interruption is deliberately left out; the disk and DBMS models never cancel
in-flight work.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding twice)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is *processed* once the environment has run
    its callbacks.  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator, resuming it whenever the yielded event triggers.

    A ``Process`` is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait on each other
    (``yield env.process(work())``).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the process at the current simulation time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target.processed:
            # Already processed: resume immediately at the current time.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate._ok = target.ok
            immediate._value = target.value
            immediate._triggered = True
            self.env._schedule(immediate)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _ConditionEvent(Event):
    """Base for AllOf / AnyOf."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        if not self._triggered and self._pending == 0:
            self._finalize()

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _finalize(self) -> None:
        raise NotImplementedError

    def _values(self) -> list[Any]:
        return [event.value for event in self.events if event.triggered and event.ok]


class AllOf(_ConditionEvent):
    """Triggers when every given event has triggered (fails fast on failure)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending <= 0 and all(e.triggered for e in self.events):
            self._finalize()

    def _finalize(self) -> None:
        self.succeed(self._values())


class AnyOf(_ConditionEvent):
    """Triggers as soon as one of the given events triggers."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._finalize()

    def _finalize(self) -> None:
        self.succeed(self._values())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._next_id = 0
        self._active_process: Optional[Process] = None
        #: Optional lifecycle hook, called as ``observer(kind, event)`` with
        #: ``kind`` in {"process", "step"}.  Purely observational — the
        #: kernel never lets the hook schedule or advance anything.  Used by
        #: :func:`repro.obs.attach_des_observer`; None (the default) costs
        #: one attribute check per step.
        self.observer: Optional[Callable[[str, Event], None]] = None
        #: Drain checks, called (in registration order) whenever
        #: :meth:`run` finds the event queue empty — both at a normal
        #: ``run()`` completion and when ``run(until=event)`` drains before
        #: its stop event fires.  A check that detects stuck processes
        #: (e.g. latch waiters parked forever — see
        #: :class:`repro.btree.cc.PageLatchManager`) should raise a
        #: diagnostic; returning normally lets the drain proceed.
        self.drain_checks: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        proc = Process(self, generator)
        if self.observer is not None:
            self.observer("process", proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling / execution --------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._next_id, event))
        self._next_id += 1

    def step(self) -> None:
        """Process the single next event in the queue."""
        when, __, event = heapq.heappop(self._queue)
        self._now = when
        if self.observer is not None:
            self.observer("step", event)
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event.ok:
            # A failed event nobody waited for: surface the error rather
            # than letting it pass silently.
            raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run up to that time), an :class:`Event`
        (run until it triggers, returning its value), or ``None`` (run until
        the queue drains).
        """
        if isinstance(until, Event):
            stop_event = until
            while self._queue:
                if stop_event.processed:
                    break
                self.step()
            if not stop_event.triggered:
                self._run_drain_checks()
                raise SimulationError("run(until=event): queue drained before event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while self._queue:
            self.step()
        self._run_drain_checks()
        return None

    def _run_drain_checks(self) -> None:
        for check in self.drain_checks:
            check()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
