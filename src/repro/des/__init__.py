"""Discrete-event simulation kernel (simpy-flavoured, dependency-free)."""

from .control import WaitTimeout, first_success, with_timeout
from .core import AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout
from .resources import PriorityResource, PriorityStore, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "PriorityResource",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "WaitTimeout",
    "first_success",
    "with_timeout",
]
