"""Typed, LSN-stamped write-ahead-log records and their binary framing.

Each record is framed as ``crc32(body) | body`` where the body packs the
LSN, record type, transaction id, page id and payload length ahead of the
payload bytes.  The CRC makes the tail self-validating: a torn append (a
crash mid-write leaving half a record) fails its CRC, so recovery can find
the longest valid prefix of the log without any external length metadata —
exactly how real engines detect a torn log tail.

Record types:

* ``BEGIN`` — a transaction started (informational; recovery keys off
  ``COMMIT`` only, so BEGIN-less logs also replay correctly);
* ``ALLOC`` / ``FREE`` — a page id entered / left the allocated set;
* ``PAGE_IMAGE`` — full after-image of one page (physical redo);
* ``COMMIT`` — the transaction is durable; payload carries the tree
  metadata (root, height, leaf head, entry count) as of the commit;
* ``CHECKPOINT`` — every committed page is on disk; redo may start here.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "RecordType",
    "LogRecord",
    "TreeMeta",
    "encode_record",
    "scan_records",
    "NO_PAGE",
]

#: Page-id placeholder for records not about a specific page.
NO_PAGE = -1

_HEADER = struct.Struct("<QBqqI")  # lsn, type, txn_id, page_id, payload length
_CRC = struct.Struct("<I")
_META = struct.Struct("<iiiq")  # root_pid, height, first_leaf_pid, entries


class RecordType(enum.IntEnum):
    """What one log record describes."""

    BEGIN = 1
    PAGE_IMAGE = 2
    ALLOC = 3
    FREE = 4
    COMMIT = 5
    CHECKPOINT = 6


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    type: RecordType
    txn_id: int
    page_id: int = NO_PAGE
    payload: bytes = b""


@dataclass(frozen=True)
class TreeMeta:
    """Tree-level metadata carried by COMMIT and CHECKPOINT records."""

    root_pid: int
    height: int
    first_leaf_pid: int
    entries: int

    def pack(self) -> bytes:
        return _META.pack(self.root_pid, self.height, self.first_leaf_pid, self.entries)

    @classmethod
    def unpack(cls, data: bytes) -> "TreeMeta":
        return cls(*_META.unpack(data[: _META.size]))


def encode_record(record: LogRecord) -> bytes:
    """Frame a record as ``crc | header | payload``."""
    body = _HEADER.pack(
        record.lsn, int(record.type), record.txn_id, record.page_id, len(record.payload)
    )
    body += record.payload
    return _CRC.pack(zlib.crc32(body)) + body


def scan_records(data: bytes) -> tuple[list[LogRecord], int]:
    """Parse the longest valid record prefix of a log byte stream.

    Returns ``(records, valid_bytes)``: parsing stops at the first record
    that is truncated, fails its CRC, or carries an out-of-sequence LSN —
    the torn tail a crash mid-append leaves behind.  Bytes past
    ``valid_bytes`` are garbage and must be discarded by recovery.
    """
    records: list[LogRecord] = []
    offset = 0
    expected_lsn = None
    while offset + _CRC.size + _HEADER.size <= len(data):
        (crc,) = _CRC.unpack_from(data, offset)
        body_start = offset + _CRC.size
        lsn, rtype, txn_id, page_id, payload_len = _HEADER.unpack_from(data, body_start)
        body_end = body_start + _HEADER.size + payload_len
        if body_end > len(data):
            break  # truncated payload
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            break  # torn or corrupted record
        if expected_lsn is not None and lsn != expected_lsn:
            break  # framing desynchronized
        try:
            record_type = RecordType(rtype)
        except ValueError:
            break
        records.append(
            LogRecord(lsn, record_type, txn_id, page_id, bytes(data[body_start + _HEADER.size : body_end]))
        )
        expected_lsn = lsn + 1
        offset = body_end
    return records, offset
