"""Crash consistency: write-ahead logging, write-back, and recovery.

The subsystem threads through the storage stack in three pieces:

* :class:`WriteAheadLog` — the append-only record log on its own
  DES-charged spindle (:mod:`repro.wal.log`, :mod:`repro.wal.records`);
* :class:`WalManager` — attaches to one tree, wraps updates in
  :class:`TransactionContext` transactions, enforces no-steal eviction and
  flush-on-evict write-back, and takes checkpoints
  (:mod:`repro.wal.manager`);
* :func:`recover` — rebuilds a consistent tree from a :class:`CrashImage`
  by redo-from-checkpoint replay, then verifies it with
  :mod:`repro.scrub` (:mod:`repro.wal.recovery`).
"""

from .log import WriteAheadLog
from .manager import CrashImage, TransactionContext, WalManager, WalStats
from .records import LogRecord, RecordType, TreeMeta, encode_record, scan_records
from .recovery import RecoveryError, RecoveryStats, recover

__all__ = [
    "WriteAheadLog",
    "CrashImage",
    "TransactionContext",
    "WalManager",
    "WalStats",
    "LogRecord",
    "RecordType",
    "TreeMeta",
    "encode_record",
    "scan_records",
    "RecoveryError",
    "RecoveryStats",
    "recover",
]
