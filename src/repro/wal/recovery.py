"""Redo-from-checkpoint recovery.

Recovery is a pure function of the crash image (log bytes + durable pages):

1. **Analysis** — parse the longest valid log prefix (a torn tail truncates
   at the first CRC-failing record) and collect the set of committed
   transaction ids.  Everything logged by a transaction with no ``COMMIT``
   in the valid prefix is discarded — that is how atomicity of multi-page
   splits falls out of the log format.
2. **Load** — install every durable page whose bytes still match the
   checksum stamped when its write began; a torn page write fails this
   check and is deferred to redo.
3. **Redo** — replay committed ``PAGE_IMAGE``/``FREE`` records after the
   last durable ``CHECKPOINT`` in LSN order (physical redo is idempotent,
   so replaying over an already-newer evict-flushed page is harmless), then
   restore the tree metadata from the last committed ``COMMIT``.
4. **Verify** — run the :mod:`repro.scrub` structural verifier over the
   recovered tree.

Because every step is deterministic, the same crash image always recovers
to the same tree — byte-identical under
:func:`repro.image.dump_tree_bytes`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..des import Environment
from ..faults.errors import StorageFault
from ..image import decode_page
from ..storage.config import StorageConfig
from ..storage.disk import DiskArray
from .manager import CrashImage, SYSTEM_TXN
from .records import RecordType, TreeMeta, scan_records

__all__ = ["RecoveryError", "RecoveryStats", "recover"]


class RecoveryError(StorageFault):
    """The crash image cannot be recovered to a consistent tree."""


@dataclass(frozen=True)
class RecoveryStats:
    """What recovery found and did, for tests and benchmarks."""

    wal_bytes: int
    valid_wal_bytes: int
    truncated_bytes: int
    records_scanned: int
    records_replayed: int
    committed_txns: frozenset[int]
    discarded_txns: frozenset[int]
    torn_pages: tuple[int, ...]
    pages_loaded: int
    pages_restored: int
    recovery_us: float


def recover(
    image: CrashImage,
    make_tree: Callable[[], object],
) -> tuple[object, RecoveryStats]:
    """Rebuild a consistent tree from a :class:`CrashImage`.

    ``make_tree`` must construct a fresh, WAL-free tree of the same type
    and configuration as the crashed one; its initial pages are discarded
    and replaced by the recovered image.  (Attach a new
    :class:`~repro.wal.WalManager` *after* recovery to resume logging.)

    Returns ``(tree, stats)``.  Raises :class:`RecoveryError` if a torn
    page cannot be healed from the log, and lets the scrub verifier's
    :class:`~repro.btree.base.IndexCorruptionError` propagate if the
    recovered structure is inconsistent.
    """
    records, valid_bytes = scan_records(image.wal_data)

    # Analysis: committed vs. discarded transactions, last durable checkpoint.
    committed = frozenset(r.txn_id for r in records if r.type is RecordType.COMMIT)
    discarded = frozenset(
        r.txn_id
        for r in records
        if r.txn_id != SYSTEM_TXN and r.txn_id not in committed
    )
    checkpoint_idx = -1
    meta: Optional[TreeMeta] = None
    for idx, record in enumerate(records):
        if record.type is RecordType.CHECKPOINT:
            checkpoint_idx = idx
            meta = TreeMeta.unpack(record.payload)
    if meta is None:
        raise RecoveryError("no durable CHECKPOINT record; the log is unusable")

    # Load: fresh tree, durable pages that pass their checksum.
    tree = make_tree()
    store, pool = tree.store, tree.pool
    for page_id in list(store.page_ids()):
        store.free(page_id)
        pool.invalidate(page_id)
    torn: list[int] = []
    loaded = 0
    for page_id in sorted(image.pages):
        data = image.pages[page_id]
        if zlib.crc32(data) != image.checksums[page_id]:
            torn.append(page_id)  # torn write: heal from the log, or fail
            continue
        store.place(page_id, decode_page(tree, data))
        loaded += 1

    # Redo: committed records after the checkpoint, in LSN order.
    replayed = 0
    restored: set[int] = set()
    freed: set[int] = set()
    for record in records[checkpoint_idx + 1 :]:
        if record.txn_id not in committed:
            continue
        if record.type is RecordType.PAGE_IMAGE:
            page = decode_page(tree, record.payload)
            if record.page_id in store:
                store.replace(record.page_id, page)
            else:
                store.place(record.page_id, page)
            restored.add(record.page_id)
            freed.discard(record.page_id)
            replayed += 1
        elif record.type is RecordType.FREE:
            if record.page_id in store:
                store.free(record.page_id)
                pool.invalidate(record.page_id)
            restored.discard(record.page_id)
            freed.add(record.page_id)
            replayed += 1
        elif record.type is RecordType.COMMIT:
            meta = TreeMeta.unpack(record.payload)

    unhealed = [pid for pid in torn if pid not in restored and pid not in freed]
    if unhealed:
        raise RecoveryError(
            f"torn page(s) {unhealed} have no committed after-image in the log"
        )

    store.rebuild_free_list()
    pool.clear()
    tree.root_pid = meta.root_pid
    tree.height = meta.height
    tree.first_leaf_pid = meta.first_leaf_pid
    tree._entries = meta.entries

    # Charge simulated disk time: one sequential sweep of the valid log
    # prefix, then a read-modify-write per page redo touched.
    env = Environment()
    config = StorageConfig(page_size=image.page_size, num_disks=1, buffer_pool_pages=1)
    log_device = DiskArray(env, config)
    data_device = DiskArray(env, config)
    if valid_bytes:
        sweep = env.process(log_device.disks[0].service(0, valid_bytes))
        env.run(until=sweep)
    for page_id in sorted(restored):
        env.run(until=data_device.read_page(page_id))
        env.run(until=data_device.write_page(page_id))

    from ..scrub import scrub_tree

    scrub_tree(tree)

    stats = RecoveryStats(
        wal_bytes=len(image.wal_data),
        valid_wal_bytes=valid_bytes,
        truncated_bytes=len(image.wal_data) - valid_bytes,
        records_scanned=len(records),
        records_replayed=replayed,
        committed_txns=committed,
        discarded_txns=discarded,
        torn_pages=tuple(torn),
        pages_loaded=loaded,
        pages_restored=len(restored),
        recovery_us=env.now,
    )
    return tree, stats
