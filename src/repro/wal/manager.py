"""Transaction wrapping and the durable-image write path.

:class:`WalManager` attaches to one tree's :class:`~repro.btree.context.TreeEnvironment`
and threads crash consistency through the whole update path:

* **Logging** — it registers as the page store's write observer, so every
  in-place page mutation (``store.mark_dirty``), allocation and free that
  happens inside a :meth:`transaction` block is logged: a full page
  after-image per mutation (physical redo), ``ALLOC``/``FREE`` for the
  allocation map, and a ``COMMIT`` carrying the tree metadata.  Logging
  per-mutation rather than per-transaction means a crash point can land
  *between* the page writes of a multi-page split — the exact torn states
  recovery must handle.
* **No-steal** — pages dirtied by the open transaction are exempted from
  eviction (:meth:`BufferPool.mark_dirty` with ``no_steal=True``), so the
  durable image never contains uncommitted data and recovery needs no undo.
* **No-force with flush-on-evict** — commit forces only the log.  Data
  pages reach the durable image lazily, when the CLOCK sweep evicts them
  (the pool's ``flush_hook`` lands here) or eagerly at a checkpoint, which
  forces every committed-dirty page and then logs ``CHECKPOINT`` so redo
  can start there.

Every durable write — log appends and page flushes — is charged simulated
disk time through a private DES environment: the log device sees cheap
sequential appends, the data device pays per-page seeks.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..des import Environment
from ..faults.errors import SimulatedCrash
from ..faults.injector import CrashInjector, WriteOutcome
from ..faults.plan import FaultPlan
from ..image import encode_page
from ..obs import MetricAttr, Observability, bind_counters
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from .log import WriteAheadLog
from .records import NO_PAGE, RecordType, TreeMeta

__all__ = ["TransactionContext", "WalManager", "WalStats", "CrashImage"]

#: Transaction id used by records not owned by any transaction.
SYSTEM_TXN = 0


@dataclass
class TransactionContext:
    """Write set of one open transaction."""

    txn_id: int
    #: Pages touched (dict used as an ordered set — first-touch order).
    written: dict[int, None] = field(default_factory=dict)
    began: bool = False

    def note(self, page_id: int) -> None:
        self.written[page_id] = None


@dataclass(frozen=True)
class CrashImage:
    """Everything that survives a crash: the log and the durable pages.

    ``checksums`` maps each durable page to the checksum recorded when its
    write *started* — for a torn page write, ``pages`` holds only the bytes
    that reached the platter while ``checksums`` holds the full content's
    checksum, so the tear is detected exactly the way real engines detect
    it: the page fails its checksum at read time.
    """

    wal_data: bytes
    pages: dict[int, bytes]
    checksums: dict[int, int]
    page_size: int


@dataclass(frozen=True)
class WalStats:
    """Counters surfaced to benchmarks and :class:`~repro.dbms.MiniDbms`."""

    commits: int
    wal_appends: int
    wal_bytes: int
    pages_flushed: int
    evict_flushes: int
    checkpoints: int
    write_us: float


class WalManager:
    """Crash consistency for one tree: WAL, write-back, checkpoints."""

    commits = MetricAttr("commits")
    checkpoints = MetricAttr("checkpoints")
    pages_flushed = MetricAttr("pages_flushed")

    def __init__(
        self,
        tree,
        plan: Optional[FaultPlan] = None,
        disk: Optional[DiskParameters] = None,
        checkpoint_interval: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        """Attach to ``tree`` (which must expose ``env``/``store``/``pool``).

        ``checkpoint_interval`` > 0 checkpoints automatically every that
        many commits; 0 means checkpoints happen only on explicit
        :meth:`checkpoint` calls.

        Attaching snapshots every live page into the durable image without
        charging disk time — a bulk-loaded tree is taken to be on disk
        already, so logging-overhead measurements see only the update
        path's own writes.
        """
        if checkpoint_interval < 0:
            raise ValueError(f"checkpoint_interval must be >= 0, got {checkpoint_interval}")
        self.tree = tree
        self.store = tree.store
        self.pool = tree.pool
        self.page_size = tree.env.page_size
        self.checkpoint_interval = checkpoint_interval
        self.crash = CrashInjector(plan) if plan is not None else None
        self.io_env = Environment()
        self.obs = obs if obs is not None else Observability()
        # The WAL stack's durable writes advance the private I/O clock, so
        # an unbound tracer handed to this manager timestamps on it.
        if self.obs.tracer.enabled and self.obs.tracer.clock is None:
            self.obs.tracer.clock = lambda: self.io_env.now
        self._tracer = self.obs.tracer
        bind_counters(
            self, self.obs.metrics, "walmgr.", ("commits", "checkpoints", "pages_flushed")
        )
        disk_params = disk if disk is not None else DiskParameters()
        self._data_device = DiskArray(
            self.io_env,
            StorageConfig(page_size=self.page_size, num_disks=1, buffer_pool_pages=1, disk=disk_params),
            obs=self.obs,
            name="wal-data",
        )
        self.log = WriteAheadLog(
            self.io_env, page_size=self.page_size, disk=disk_params, crash=self.crash,
            obs=self.obs,
        )
        #: The simulated on-disk image: encoded page bytes and the checksum
        #: stamped when each write began (see :class:`CrashImage`).
        self.durable_pages: dict[int, bytes] = {}
        self.durable_checksums: dict[int, int] = {}
        self._txn: Optional[TransactionContext] = None
        self._next_txn_id = 1
        #: I/O time (on the WAL's private clock) the most recent committed
        #: transaction spent making itself durable — log appends included.
        #: The serving layer charges this on *its* clock so commit latency
        #: is visible in end-to-end percentiles.
        self.last_commit_write_us = 0.0
        # Wire into the substrate.  The bound methods are captured once so
        # detach() can compare identities (a fresh ``self._observe`` access
        # would create a new bound-method object every time).
        self._observer_cb = self._observe
        self._flush_cb = self.flush_page
        tree.env.wal = self
        self.store.write_observer = self._observer_cb
        self.pool.flush_hook = self._flush_cb
        self._snapshot_all()
        self.log.append(
            RecordType.CHECKPOINT, SYSTEM_TXN, NO_PAGE, self._meta().pack(), crashable=False
        )

    # -- transactions --------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[TransactionContext]:
        """Make the enclosed page writes atomic.

        Reentrant: a nested ``transaction()`` joins the enclosing one, so
        :class:`~repro.dbms.MiniDbms` can wrap a heap-table write plus an
        index update (which wraps itself) in a single commit.

        A :class:`SimulatedCrash` escaping the block leaves the durable
        state (log + pages) frozen exactly as the crash left it — read it
        with :meth:`crash_state` and hand it to
        :func:`repro.wal.recover`.  Any other exception discards the
        transaction without logging it; the in-memory tree may then be
        inconsistent with the durable image (this simulator has redo but
        no undo), so the tree should be considered poisoned.
        """
        if self._txn is not None:
            yield self._txn
            return
        txn = TransactionContext(self._next_txn_id)
        self._next_txn_id += 1
        self._txn = txn
        io_start = self.io_env.now
        try:
            yield txn
            self._commit(txn)
            self.last_commit_write_us = self.io_env.now - io_start
        finally:
            self._txn = None

    def _observe(self, event: str, page_id: int) -> None:
        """Write-observer callback from the page store.

        Outside a transaction the event is ignored: maintenance writes
        (media scrubs, image loads) are unlogged by design.
        """
        txn = self._txn
        if txn is None:
            return
        if not txn.began:
            txn.began = True
            self.log.append(RecordType.BEGIN, txn.txn_id)
        if event == "free":
            txn.written.pop(page_id, None)
            self.pool.mark_clean(page_id)
            self.pool.release_no_steal(page_id)
            self.log.append(RecordType.FREE, txn.txn_id, page_id)
            return
        txn.note(page_id)
        # No-steal: an uncommitted page must never reach the durable image.
        self.pool.mark_dirty(page_id, no_steal=True)
        if event == "alloc":
            # A just-allocated page is an empty shell; its content is
            # imaged by the mark-dirty that follows once it is populated.
            self.log.append(RecordType.ALLOC, txn.txn_id, page_id)
            return
        # Physical redo: full after-image of the page as of this mutation.
        # Logging every mutation (not one image per page per transaction)
        # is what puts crash points *inside* a multi-page split.
        data = encode_page(self.tree, self.store.page(page_id))
        self.log.append(RecordType.PAGE_IMAGE, txn.txn_id, page_id, data)

    def _commit(self, txn: TransactionContext) -> None:
        """Force the commit record; release the write set for eviction."""
        if not txn.began:
            return  # read-only transaction: nothing to make durable
        self.log.append(RecordType.COMMIT, txn.txn_id, NO_PAGE, self._meta().pack())
        self.commits += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "commit", track="walmgr", cat="wal",
                txn=txn.txn_id, pages=len(txn.written),
            )
        for page_id in txn.written:
            self.pool.release_no_steal(page_id)
        if self.checkpoint_interval and self.commits % self.checkpoint_interval == 0:
            # The transaction is committed — drop it before the checkpoint's
            # open-transaction guard runs (transaction() clears it again).
            self._txn = None
            self.checkpoint()

    def _meta(self) -> TreeMeta:
        return TreeMeta(
            self.tree.root_pid, self.tree.height, self.tree.first_leaf_pid, self.tree.num_entries
        )

    # -- the durable-page write path -----------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write one page's current content to the durable image.

        Called by the buffer pool before reusing a dirty page's frame
        (flush-on-evict) and by :meth:`checkpoint`.  The crash injector can
        tear the write: only half the bytes land, under the full content's
        checksum, so recovery sees a checksum-failing page.
        """
        data = encode_page(self.tree, self.store.page(page_id))
        checksum = zlib.crc32(data)
        outcome = WriteOutcome.OK
        count = 0
        if self.crash is not None:
            outcome = self.crash.on_page_write()
            count = self.crash.page_writes
        if self._tracer.enabled:
            self._tracer.instant(
                "flush-page", track="walmgr", cat="wal",
                page=page_id, outcome=outcome.value,
            )
        if outcome is WriteOutcome.TORN:
            self.durable_pages[page_id] = data[: max(1, len(data) // 2)]
            self.durable_checksums[page_id] = checksum
            self._charge_page_write(page_id)
            raise SimulatedCrash("page-write-torn", count)
        self.durable_pages[page_id] = data
        self.durable_checksums[page_id] = checksum
        self._charge_page_write(page_id)
        self.pages_flushed += 1
        self.pool.mark_clean(page_id)
        if outcome is WriteOutcome.CRASH_AFTER:
            raise SimulatedCrash("page-write", count)

    def _charge_page_write(self, page_id: int) -> None:
        event = self._data_device.write_page(page_id)
        self.io_env.run(until=event)

    def note_page_split(self) -> None:
        """Crash hook at the start of an index page split.

        Called by the tree (see ``DiskFirstFpTree._split_page_and_insert``)
        the instant a split begins — before any of its page images are
        logged — so the armed ``crash_on_page_splits`` point dies with the
        split's transaction open and every concurrent writer in flight.
        """
        if self.crash is None:
            return
        outcome = self.crash.on_page_split()
        if outcome is WriteOutcome.CRASH_AFTER:
            if self._tracer.enabled:
                self._tracer.instant(
                    "crash-on-split", track="walmgr", cat="wal",
                    count=self.crash.page_splits,
                )
            raise SimulatedCrash("page-split", self.crash.page_splits)

    def checkpoint(self) -> int:
        """Force every committed-dirty page, then log ``CHECKPOINT``.

        Returns the number of pages flushed.  Must be called between
        transactions (the force policy would otherwise write uncommitted
        data); an open transaction raises.
        """
        if self._txn is not None and self._txn.began:
            raise RuntimeError("checkpoint inside an open transaction")
        # Committed frees leave stale pages behind in the durable image;
        # the checkpoint is the moment they are reclaimed.
        live = set(self.store.page_ids())
        for page_id in [pid for pid in self.durable_pages if pid not in live]:
            del self.durable_pages[page_id]
            del self.durable_checksums[page_id]
        to_flush = sorted(set(self.pool.dirty_pages) | (live - set(self.durable_pages)))
        start = self.io_env.now
        for page_id in to_flush:
            self.flush_page(page_id)
        self.log.append(RecordType.CHECKPOINT, SYSTEM_TXN, NO_PAGE, self._meta().pack())
        self.checkpoints += 1
        if self._tracer.enabled:
            self._tracer.complete(
                "checkpoint", "walmgr", start, cat="wal", pages=len(to_flush)
            )
        return len(to_flush)

    def _snapshot_all(self) -> None:
        """Seed the durable image with every live page (no disk charge)."""
        for page_id in sorted(self.store.page_ids()):
            data = encode_page(self.tree, self.store.page(page_id))
            self.durable_pages[page_id] = data
            self.durable_checksums[page_id] = zlib.crc32(data)
            self.pool.mark_clean(page_id)

    # -- introspection -------------------------------------------------------

    def crash_state(self) -> CrashImage:
        """Freeze the post-crash durable state for recovery."""
        return CrashImage(
            wal_data=self.log.data,
            pages=dict(self.durable_pages),
            checksums=dict(self.durable_checksums),
            page_size=self.page_size,
        )

    def stats(self) -> WalStats:
        return WalStats(
            commits=self.commits,
            wal_appends=self.log.appends,
            wal_bytes=self.log.bytes_written,
            pages_flushed=self.pages_flushed,
            evict_flushes=self.pool.evict_flushes,
            checkpoints=self.checkpoints,
            write_us=self.io_env.now,
        )

    def detach(self) -> None:
        """Unhook from the tree's substrate (used when swapping managers)."""
        if self.store.write_observer is self._observer_cb:
            self.store.write_observer = None
        if self.pool.flush_hook is self._flush_cb:
            self.pool.flush_hook = None
        if getattr(self.tree.env, "wal", None) is self:
            self.tree.env.wal = None
