"""The write-ahead log device.

The log is an append-only byte stream on its own dedicated spindle.  Every
append is charged simulated disk time through the DES: because appends
advance block-sequentially, most of them pay only a track-to-track
repositioning plus transfer — the cheap sequential writes that make WAL
cheaper than in-place page writes, which is the whole point of logging.

Crash injection hooks in here: a :class:`~repro.faults.CrashInjector`
consulted on every append can declare the append *torn* (only the first
half of the record's bytes reach the platter before power dies) or declare
a crash immediately *after* the append is durable.  Both raise
:class:`~repro.faults.SimulatedCrash` once the surviving bytes are in
place, so ``WriteAheadLog.data`` is exactly the post-crash media image.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment
from ..faults.errors import SimulatedCrash
from ..faults.injector import CrashInjector, WriteOutcome
from ..obs import MetricAttr, Observability, bind_counters
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from .records import LogRecord, NO_PAGE, RecordType, encode_record, scan_records

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """Append-only record log on a dedicated simulated spindle.

    Counters live in the observability registry behind the attribute
    facade; each append is recorded as a span on the ``wal`` track,
    timestamped on the log's own I/O clock.
    """

    appends = MetricAttr("appends")
    torn_appends = MetricAttr("torn_appends")
    bytes_written = MetricAttr("bytes_written")
    write_us = MetricAttr("write_us")

    def __init__(
        self,
        env: Environment,
        page_size: int = 16 * 1024,
        disk: Optional[DiskParameters] = None,
        crash: Optional[CrashInjector] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.page_size = page_size
        self.crash = crash
        self.obs = obs if obs is not None else Observability()
        self._tracer = self.obs.tracer
        bind_counters(
            self, self.obs.metrics, "wal.",
            ("appends", "torn_appends", "bytes_written", "write_us"),
        )
        config = StorageConfig(
            page_size=page_size,
            num_disks=1,
            buffer_pool_pages=1,
            disk=disk if disk is not None else DiskParameters(),
        )
        self._device = DiskArray(env, config, obs=self.obs, name="wal-disk")
        self._data = bytearray()
        self._next_lsn = 1

    # -- durable state -------------------------------------------------------

    @property
    def data(self) -> bytes:
        """The on-media byte image of the log (includes any torn tail)."""
        return bytes(self._data)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def records(self) -> list[LogRecord]:
        """The valid record prefix currently on media."""
        return scan_records(self._data)[0]

    # -- appending -----------------------------------------------------------

    def append(
        self,
        record_type: RecordType,
        txn_id: int,
        page_id: int = NO_PAGE,
        payload: bytes = b"",
        crashable: bool = True,
    ) -> LogRecord:
        """Stamp the next LSN on a record and write it to the log device.

        Raises :class:`SimulatedCrash` if the crash injector fires on this
        append — after the surviving bytes (all of them for a crash-after,
        half of them for a torn append) are on media and their disk time is
        charged.  ``crashable=False`` bypasses the injector (and its
        counters) — used for the attach-time checkpoint so that "crash
        after the Nth append" counts only update-path appends.
        """
        record = LogRecord(self._next_lsn, record_type, txn_id, page_id, payload)
        encoded = encode_record(record)
        outcome = WriteOutcome.OK
        count = 0
        if crashable and self.crash is not None:
            outcome = self.crash.on_wal_append()
            count = self.crash.wal_appends
        start = self.env.now
        if outcome is WriteOutcome.TORN:
            torn = encoded[: max(1, len(encoded) // 2)]
            self._write_bytes(torn)
            self.torn_appends += 1
            if self._tracer.enabled:
                self._tracer.complete(
                    "append", "wal", start, cat="wal",
                    lsn=record.lsn, type=record_type.name, bytes=len(torn), outcome="torn",
                )
            raise SimulatedCrash("wal-append-torn", count)
        self._write_bytes(encoded)
        self._next_lsn += 1
        self.appends += 1
        if self._tracer.enabled:
            self._tracer.complete(
                "append", "wal", start, cat="wal",
                lsn=record.lsn, type=record_type.name, bytes=len(encoded), outcome="ok",
            )
        if outcome is WriteOutcome.CRASH_AFTER:
            raise SimulatedCrash("wal-append", count)
        return record

    def _write_bytes(self, chunk: bytes) -> None:
        block = len(self._data) // self.page_size
        before = self.env.now
        event = self._device.write_at(0, block, len(chunk))
        self.env.run(until=event)
        self.write_us += self.env.now - before
        self._data.extend(chunk)
        self.bytes_written += len(chunk)
