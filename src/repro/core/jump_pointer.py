"""External jump-pointer array (paper Section 3.3; design from Chen et al. 2001).

Cache-first fpB+-Trees cannot rely on an internal jump-pointer array —
consecutive leaf-parent nodes may sit in distinct overflow pages — so they
maintain an *external* chunked list of all leaf page ids, in key order.
Range scans walk it to prefetch leaf pages ahead of the scan position.

The structure is a linked list of fixed-size chunks.  Inserting next to a
full chunk splits it (leaving slack in both halves), so updates stay O(chunk)
and page-id order is always maintained.  Leaf pages keep a *hint* (their
chunk) so position lookups are O(1) amortized; hints are refreshed lazily on
use, exactly as in the original design.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

__all__ = ["ExternalJumpPointerArray"]


class _Chunk:
    __slots__ = ("pids", "next", "prev")

    def __init__(self) -> None:
        self.pids: list[int] = []
        self.next: Optional["_Chunk"] = None
        self.prev: Optional["_Chunk"] = None


class ExternalJumpPointerArray:
    """Ordered collection of leaf page ids supporting mid-list insertion."""

    def __init__(self, chunk_capacity: int = 64) -> None:
        if chunk_capacity < 2:
            raise ValueError("chunk capacity must be at least 2")
        self.chunk_capacity = chunk_capacity
        self._head: Optional[_Chunk] = None
        self._hints: dict[int, _Chunk] = {}  # leaf pid -> chunk (may be stale)

    def build(self, leaf_pids: Iterable[int]) -> None:
        """(Re)build from an ordered pid sequence (bulkload)."""
        self._head = None
        self._hints.clear()
        tail: Optional[_Chunk] = None
        fill = max(1, self.chunk_capacity // 2)  # leave slack for insertions
        chunk: Optional[_Chunk] = None
        for pid in leaf_pids:
            if chunk is None or len(chunk.pids) >= fill:
                new = _Chunk()
                if tail is None:
                    self._head = new
                else:
                    tail.next = new
                    new.prev = tail
                tail = new
                chunk = new
            chunk.pids.append(pid)
            self._hints[pid] = chunk

    def _locate(self, pid: int) -> tuple[_Chunk, int]:
        """Find pid's chunk and index, repairing a stale hint if needed."""
        hinted = self._hints.get(pid)
        if hinted is not None and pid in hinted.pids:
            return hinted, hinted.pids.index(pid)
        chunk = self._head
        while chunk is not None:
            if pid in chunk.pids:
                self._hints[pid] = chunk
                return chunk, chunk.pids.index(pid)
            chunk = chunk.next
        raise KeyError(f"leaf page {pid} is not in the jump-pointer array")

    def insert_after(self, left_pid: int, new_pid: int) -> None:
        """Insert a new leaf page immediately after an existing one."""
        chunk, index = self._locate(left_pid)
        if len(chunk.pids) >= self.chunk_capacity:
            # Split the chunk; both halves get room.
            sibling = _Chunk()
            half = len(chunk.pids) // 2
            sibling.pids = chunk.pids[half:]
            chunk.pids = chunk.pids[:half]
            sibling.next = chunk.next
            sibling.prev = chunk
            if chunk.next is not None:
                chunk.next.prev = sibling
            chunk.next = sibling
            for pid in sibling.pids:
                self._hints[pid] = sibling
            if index >= half:
                chunk, index = sibling, index - half
        chunk.pids.insert(index + 1, new_pid)
        self._hints[new_pid] = chunk

    def append(self, pid: int) -> None:
        """Add a leaf page at the end (tree growing to the right)."""
        if self._head is None:
            self.build([pid])
            return
        tail = self._head
        while tail.next is not None:
            tail = tail.next
        if len(tail.pids) >= self.chunk_capacity:
            new = _Chunk()
            new.prev = tail
            tail.next = new
            tail = new
        tail.pids.append(pid)
        self._hints[pid] = tail

    def remove(self, pid: int) -> None:
        """Drop a leaf page (page deallocation)."""
        chunk, index = self._locate(pid)
        del chunk.pids[index]
        self._hints.pop(pid, None)

    def iter_from(self, start_pid: Optional[int] = None) -> Iterator[int]:
        """Yield pids in order, starting at ``start_pid`` (or the beginning)."""
        chunk = self._head
        index = 0
        if start_pid is not None:
            chunk, index = self._locate(start_pid)
        while chunk is not None:
            yield from chunk.pids[index:]
            chunk = chunk.next
            index = 0

    def to_list(self) -> list[int]:
        return list(self.iter_from())

    def __len__(self) -> int:
        total = 0
        chunk = self._head
        while chunk is not None:
            total += len(chunk.pids)
            chunk = chunk.next
        return total
