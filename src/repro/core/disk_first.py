"""Disk-first fpB+-Tree (paper Section 3.1).

Starts from a disk-optimized B+-Tree — one page per overall-tree node — but
organizes each page's keys and pointers as a small cache-optimized tree of
multi-line nodes (Figure 5) instead of one huge sorted array.  Non-leaf
in-page nodes use 2-byte line offsets; in-page leaf nodes hold child page
ids (interior pages) or tuple ids (leaf pages).  Node widths come from the
Table 2 optimizer.

Operation highlights (Section 3.1.2):

* *Search* is two-granularity: a page-level descent, with a prefetched
  in-page tree walk inside every page.
* *Insertion* shifts entries only inside one small node.  A full node splits
  within the page if line slots are free; if not, the page is either
  **reorganized** in place (when total occupancy is still far below the page
  fan-out) or **split** (when fewer than one empty slot per in-page leaf
  node remains).
* *Deletion* is lazy, shifting within one node.
* *Range scans* prefetch all the in-page leaf nodes of a page before
  scanning it, and remember the end page to avoid overshooting.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..btree.base import Index, IndexCorruptionError, ScanResult, as_key_array, chunk_evenly
from ..btree.context import TreeEnvironment
from ..btree.keys import INVALID_PAGE_ID, TUPLE_ID_SIZE
from ..btree.search import child_slot, insertion_slot
from .inpage import LEAF, NONLEAF, DiskFirstLayout, FpPage, InPageNode
from .optimizer import DiskFirstWidths

__all__ = ["DiskFirstFpTree"]


class DiskFirstFpTree(Index):
    """fpB+-Tree built disk-first: a cache-optimized tree inside each page."""

    name = "disk-first fpB+tree"

    def __init__(
        self,
        env: Optional[TreeEnvironment] = None,
        widths: Optional[DiskFirstWidths] = None,
        **env_kwargs,
    ) -> None:
        self.env = env if env is not None else TreeEnvironment(**env_kwargs)
        mem = self.env.mem
        self.layout = DiskFirstLayout(
            self.env.page_size,
            self.env.keyspec,
            line_size=self.env.line_size,
            widths=widths,
            t1=mem.config.t1 if mem else 150,
            tnext=mem.config.tnext if mem else 10,
        )
        self.store = self.env.store
        self.pool = self.env.pool
        self.tracer = self.env.tracer
        self.keyspec = self.env.keyspec
        self.height = 1
        self._entries = 0
        self.node_splits = 0
        self.page_splits = 0
        self.reorganizations = 0
        self.root_pid = self._new_page(level=0)
        self._init_empty_page(self.root_pid)
        self.first_leaf_pid = self.root_pid

    # -- page helpers -----------------------------------------------------------

    def _new_page(self, level: int) -> int:
        return self.store.allocate(FpPage(level, self.layout.total_lines))

    def _init_empty_page(self, pid: int) -> None:
        page = self.store.page(pid)
        node = self.layout.new_node(page, LEAF, hint=self.layout.root_hint(pid))
        page.root_line = node.line

    def _page(self, pid: int) -> tuple[FpPage, int]:
        page, base = self.pool.access(pid)
        self.tracer.read(base, 16)  # page header
        return page, base

    # -- traced in-page operations ---------------------------------------------------

    def _fetch_node(self, base: int, node: InPageNode) -> None:
        self.tracer.prefetch(self.layout.node_address(base, node), self.layout.node_bytes(node))
        self.tracer.read(self.layout.node_address(base, node), 4)
        self.tracer.visit_node()

    def _inpage_descend(
        self, page: FpPage, base: int, key: int, record_path: bool = False, side: str = "right"
    ) -> tuple[InPageNode, list[tuple[InPageNode, int]]]:
        """Walk the in-page tree to the in-page leaf node for ``key``."""
        path: list[tuple[InPageNode, int]] = []
        node = page.root
        self._fetch_node(base, node)
        while node.kind == NONLEAF:
            slot = child_slot(
                node.keys, node.count, key,
                self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
                side=side,
            )
            self.tracer.read(self.layout.ptr_address(base, node, slot), 2)
            if record_path:
                path.append((node, slot))
            node = page.nodes[int(node.ptrs[slot])]
            self._fetch_node(base, node)
        return node, path

    def _locate_child_pid(self, page: FpPage, base: int, key: int, side: str = "right") -> int:
        """Route ``key`` through an interior page to a child page id."""
        node, __ = self._inpage_descend(page, base, key, side=side)
        slot = child_slot(
            node.keys, node.count, key,
            self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
            side=side,
        )
        self.tracer.read(self.layout.ptr_address(base, node, slot), 4)
        return int(node.ptrs[slot])

    def _node_insert(
        self, page: FpPage, base: int, node: InPageNode, slot: int, key: int, value: int
    ) -> None:
        """Shift within one small node and write the new entry."""
        moved = node.count - slot
        if moved > 0:
            node.keys[slot + 1 : node.count + 1] = node.keys[slot:node.count].copy()
            node.ptrs[slot + 1 : node.count + 1] = node.ptrs[slot:node.count].copy()
            self.tracer.move(
                self.layout.key_address(base, node, slot + 1),
                self.layout.key_address(base, node, slot),
                moved * self.keyspec.size,
            )
            ptr_size = self.layout.ptr_size(node)
            self.tracer.move(
                self.layout.ptr_address(base, node, slot + 1),
                self.layout.ptr_address(base, node, slot),
                moved * ptr_size,
            )
        node.keys[slot] = key
        node.ptrs[slot] = value
        node.count += 1
        self.tracer.write(self.layout.key_address(base, node, slot), self.keyspec.size)
        self.tracer.write(self.layout.ptr_address(base, node, slot), self.layout.ptr_size(node))
        self.tracer.write(self.layout.node_address(base, node), 4)  # node header

    # -- public interface ----------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._entries

    @property
    def num_pages(self) -> int:
        return self.store.num_pages

    def bulkload(self, keys: Sequence[int], tids: Sequence[int], fill: float = 1.0) -> None:
        fill = self.check_fill(fill)
        keys = as_key_array(keys, self.keyspec)
        tids = np.asarray(tids, dtype=np.uint32)
        if keys.shape != tids.shape:
            raise ValueError("keys and tids must have the same length")
        if np.any(keys[:-1] > keys[1:]):
            raise ValueError("bulkload requires sorted keys")
        if self._entries:
            raise RuntimeError("bulkload requires an empty tree")
        if keys.size == 0:
            return
        self.store.free(self.root_pid)
        self.pool.invalidate(self.root_pid)

        per_page = max(1, int(self.layout.page_fanout * fill))
        level_pids: list[int] = []
        level_firsts: list[int] = []
        start = 0
        prev_pid = INVALID_PAGE_ID
        for size in chunk_evenly(len(keys), per_page):
            pid = self._new_page(level=0)
            page = self.store.page(pid)
            self._rebuild_page(
                pid, page, keys[start : start + size], tids[start : start + size], spread=True
            )
            page.prev_page = prev_pid
            if prev_pid != INVALID_PAGE_ID:
                self.store.page(prev_pid).next_page = pid
            level_pids.append(pid)
            level_firsts.append(int(keys[start]))
            prev_pid = pid
            start += size
        self.first_leaf_pid = level_pids[0]

        level = 1
        while len(level_pids) > 1:
            parent_pids: list[int] = []
            parent_firsts: list[int] = []
            start = 0
            prev_pid = INVALID_PAGE_ID
            for size in chunk_evenly(len(level_pids), per_page):
                pid = self._new_page(level=level)
                page = self.store.page(pid)
                self._rebuild_page(
                    pid,
                    page,
                    np.asarray(level_firsts[start : start + size], dtype=self.keyspec.dtype),
                    np.asarray(level_pids[start : start + size], dtype=np.uint32),
                    spread=False,
                )
                page.prev_page = prev_pid
                if prev_pid != INVALID_PAGE_ID:
                    self.store.page(prev_pid).next_page = pid
                parent_pids.append(pid)
                parent_firsts.append(level_firsts[start])
                prev_pid = pid
                start += size
            level_pids, level_firsts = parent_pids, parent_firsts
            level += 1
        self.root_pid = level_pids[0]
        self.height = level
        self._entries = int(keys.size)

    def _descend_to_leaf_page(self, key: int, record_path: bool = False, side: str = "right"):
        """Page-level descent; returns (pid, page, base, path_of_pids).

        ``side="left"`` biases toward the leftmost candidate leaf page
        (range scans must catch duplicates spanning page boundaries).
        """
        path: list[int] = []
        pid = self.root_pid
        page, base = self._page(pid)
        while page.level > 0:
            if record_path:
                path.append(pid)
            pid = self._locate_child_pid(page, base, key, side=side)
            page, base = self._page(pid)
        return pid, page, base, path

    def search(self, key: int) -> Optional[int]:
        self.tracer.call_overhead()
        __, page, base, __ = self._descend_to_leaf_page(key)
        node, __ = self._inpage_descend(page, base, key)
        slot = insertion_slot(
            node.keys, node.count, key,
            self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
        )
        if slot < node.count and int(node.keys[slot]) == key:
            self.tracer.read(self.layout.ptr_address(base, node, slot), TUPLE_ID_SIZE)
            return int(node.ptrs[slot])
        return None

    # -- insertion ----------------------------------------------------------------------

    def insert(self, key: int, tid: int) -> None:
        self.tracer.call_overhead()
        with self._update_txn():
            pid, page, base, path = self._descend_to_leaf_page(key, record_path=True)
            self._insert_entry(pid, page, base, key, tid, path)
            self._entries += 1

    def _insert_entry(
        self, pid: int, page: FpPage, base: int, key: int, value: int, path_above: list[int]
    ) -> None:
        """Insert an entry into a page's in-page tree, splitting as needed."""
        node, node_path = self._inpage_descend(page, base, key, record_path=True)
        slot = insertion_slot(
            node.keys, node.count, key,
            self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
        )
        if node.count < node.capacity:
            self._node_insert(page, base, node, slot, key, value)
            page.total += 1
            self.store.mark_dirty(pid)
            return
        if self._try_node_split(page, base, node, node_path, slot, key, value):
            page.total += 1
            self.store.mark_dirty(pid)
            return
        # No room to grow the in-page tree: reorganize or split the page.
        if page.total < self.layout.page_fanout - self.layout.max_leaf_nodes:
            self._reorganize_page(pid, page, base)
            # Retry: the even redistribution guarantees a free slot.
            node, node_path = self._inpage_descend(page, base, key, record_path=True)
            slot = insertion_slot(
                node.keys, node.count, key,
                self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
            )
            if node.count < node.capacity:
                self._node_insert(page, base, node, slot, key, value)
            elif not self._try_node_split(page, base, node, node_path, slot, key, value):
                raise IndexCorruptionError("reorganized page still has no room")
            page.total += 1
            self.store.mark_dirty(pid)
            return
        self._split_page_and_insert(pid, page, base, key, value, path_above)

    def _try_node_split(
        self,
        page: FpPage,
        base: int,
        node: InPageNode,
        node_path: list[tuple[InPageNode, int]],
        slot: int,
        key: int,
        value: int,
    ) -> bool:
        """Split a full in-page node if the page has line slots for it."""
        # Determine the chain of splits: the node itself, plus every full
        # ancestor, plus possibly a new in-page root.
        kinds = [node.kind]
        depth = len(node_path) - 1
        while depth >= 0 and node_path[depth][0].count >= node_path[depth][0].capacity:
            kinds.append(NONLEAF)
            depth -= 1
        needs_new_root = depth < 0 and (
            not node_path or node_path[0][0].count >= node_path[0][0].capacity
        )
        if not node_path:
            needs_new_root = True  # splitting the root node itself
        if needs_new_root:
            kinds.append(NONLEAF)
        # Reserve the lines up front; roll back on failure.
        reserved: list[tuple[int, int]] = []
        for kind in kinds:
            width = self.layout.lines_needed(kind)
            line = page.alloc.alloc(width)
            if line is None:
                for got_line, got_width in reversed(reserved):
                    page.alloc.free(got_line, got_width)
                return False
            reserved.append((line, width))
        for got_line, got_width in reversed(reserved):
            page.alloc.free(got_line, got_width)
        self._node_split_insert(page, base, node, node_path, slot, key, value)
        return True

    def _node_split_insert(
        self,
        page: FpPage,
        base: int,
        node: InPageNode,
        node_path: list[tuple[InPageNode, int]],
        slot: int,
        key: int,
        value: int,
    ) -> None:
        """Split ``node`` (allocation guaranteed) and insert the entry."""
        self.node_splits += 1
        new_node = self.layout.new_node(page, node.kind)
        assert new_node is not None, "allocation was pre-checked"
        half = node.count // 2
        moved = node.count - half
        new_node.keys[:moved] = node.keys[half:node.count]
        new_node.ptrs[:moved] = node.ptrs[half:node.count]
        new_node.count = moved
        node.count = half
        self.tracer.move(
            self.layout.key_address(base, new_node, 0),
            self.layout.key_address(base, node, half),
            moved * self.keyspec.size,
        )
        self.tracer.move(
            self.layout.ptr_address(base, new_node, 0),
            self.layout.ptr_address(base, node, half),
            moved * self.layout.ptr_size(node),
        )
        if slot <= half and not (slot == half and node.kind == NONLEAF):
            self._node_insert(page, base, node, slot, key, value)
        else:
            self._node_insert(page, base, new_node, slot - half, key, value)
        separator = int(new_node.keys[0])
        if node_path:
            parent, parent_slot = node_path[-1]
            if separator < int(parent.keys[parent_slot]):
                # Stale leftmost separator: refresh to the left node's minimum.
                parent.keys[parent_slot] = node.keys[0]
                self.tracer.write(
                    self.layout.key_address(base, parent, parent_slot), self.keyspec.size
                )
            if parent.count < parent.capacity:
                self._node_insert(page, base, parent, parent_slot + 1, separator, new_node.line)
            else:
                self._node_split_insert(
                    page, base, parent, node_path[:-1], parent_slot + 1, separator, new_node.line
                )
        else:
            new_root = self.layout.new_node(page, NONLEAF)
            assert new_root is not None, "allocation was pre-checked"
            new_root.keys[0] = min(int(node.keys[0]) if node.count else separator, separator)
            new_root.ptrs[0] = node.line
            new_root.keys[1] = separator
            new_root.ptrs[1] = new_node.line
            new_root.count = 2
            page.root_line = new_root.line
            self.tracer.write(self.layout.node_address(base, new_root), 16)

    # -- reorganize / rebuild --------------------------------------------------------------

    def _collect_entries(self, page: FpPage) -> tuple[np.ndarray, np.ndarray]:
        nodes = page.leaf_nodes_in_order()
        keys = np.concatenate([n.keys[: n.count] for n in nodes]) if nodes else self.keyspec.empty(0)
        ptrs = (
            np.concatenate([n.ptrs[: n.count] for n in nodes])
            if nodes
            else np.zeros(0, dtype=np.uint32)
        )
        return keys, ptrs

    def _rebuild_page(
        self, pid: int, page: FpPage, keys: np.ndarray, ptrs: np.ndarray, spread: bool
    ) -> None:
        """Rebuild a page's in-page tree from scratch with the given entries.

        ``spread=True`` distributes entries evenly over the maximum number of
        in-page leaf nodes (so later insertions find empty slots); False
        packs nodes full, as bulkload does for interior pages.
        """
        layout = self.layout
        page.nodes.clear()
        page.alloc.clear()
        page.total = int(len(keys))
        n = len(keys)
        if n == 0:
            self._init_empty_page(pid)
            return
        if spread:
            node_count = min(layout.max_leaf_nodes, max(1, n))
            node_count = max(node_count, -(-n // layout.leaf_capacity))
            base_size, remainder = divmod(n, node_count)
            sizes = [base_size + (1 if i < remainder else 0) for i in range(node_count)]
        else:
            sizes = chunk_evenly(n, layout.leaf_capacity)
        # Reserve the in-page root at its staggered position first, so the
        # top-level nodes of different pages do not conflict in the cache
        # (Section 4.1).  Optimizer-chosen layouts pack full pages to within
        # a couple of lines, so the stagger only applies when there is
        # enough slack to absorb the fragmentation it causes.
        needed_lines = len(sizes) * layout.leaf_width
        count = len(sizes)
        while count > 1:
            count = -(-count // layout.nonleaf_capacity)
            needed_lines += count * layout.nonleaf_width
        slack = (layout.total_lines - 1) - needed_lines
        root_hint = layout.root_hint(pid)
        use_stagger = slack >= layout.leaf_width + layout.nonleaf_width
        preallocated_root: Optional[InPageNode] = None
        if len(sizes) > 1 and use_stagger:
            preallocated_root = layout.new_node(page, NONLEAF, hint=root_hint)
        leaf_nodes: list[InPageNode] = []
        firsts: list[int] = []
        start = 0
        single_leaf_hint = root_hint if (len(sizes) == 1 and use_stagger) else 0
        for size in sizes:
            node = layout.new_node(page, LEAF, hint=single_leaf_hint)
            if node is None:
                raise IndexCorruptionError(f"page rebuild overflow: {n} entries in page {pid}")
            node.keys[:size] = keys[start : start + size]
            node.ptrs[:size] = ptrs[start : start + size]
            node.count = size
            leaf_nodes.append(node)
            firsts.append(int(keys[start]))
            start += size

        current = leaf_nodes
        current_firsts = firsts
        while len(current) > 1:
            chunks = chunk_evenly(len(current), layout.nonleaf_capacity)
            parents: list[InPageNode] = []
            parent_firsts: list[int] = []
            start = 0
            for size in chunks:
                if len(chunks) == 1 and preallocated_root is not None:
                    parent = preallocated_root
                    preallocated_root = None
                else:
                    parent = layout.new_node(page, NONLEAF)
                if parent is None:
                    raise IndexCorruptionError(f"page rebuild overflow (non-leaf) in page {pid}")
                parent.keys[:size] = current_firsts[start : start + size]
                parent.ptrs[:size] = [child.line for child in current[start : start + size]]
                parent.count = size
                parents.append(parent)
                parent_firsts.append(current_firsts[start])
                start += size
            current, current_firsts = parents, parent_firsts
        if preallocated_root is not None:
            # The reservation turned out to be unused (single leaf node).
            self.layout.free_node(page, preallocated_root)
        page.root_line = current[0].line

    def _rebuild_page_from_nodes(self, pid: int, page: FpPage, leaf_nodes: list[InPageNode]) -> None:
        """Re-place existing leaf nodes in ``page`` and rebuild its non-leaf tree.

        Used by page splits: the leaf nodes themselves (and their entry
        arrays) are preserved; only placement and the small non-leaf index
        over them are reconstructed.
        """
        layout = self.layout
        page.nodes.clear()
        page.alloc.clear()
        live = [n for n in leaf_nodes if n.count]
        if not live:
            page.total = 0
            self._init_empty_page(pid)
            return
        page.total = sum(n.count for n in live)
        for node in live:
            line = page.alloc.alloc(node.width)
            if line is None:
                raise IndexCorruptionError(f"page {pid} cannot hold its leaf nodes")
            node.line = line
            page.nodes[line] = node
        firsts = [int(n.keys[0]) for n in live]
        current: list[InPageNode] = list(live)
        current_firsts = firsts
        while len(current) > 1:
            parents: list[InPageNode] = []
            parent_firsts: list[int] = []
            start = 0
            for size in chunk_evenly(len(current), layout.nonleaf_capacity):
                parent = layout.new_node(page, NONLEAF)
                if parent is None:
                    raise IndexCorruptionError(f"page {pid} cannot hold its non-leaf nodes")
                parent.keys[:size] = current_firsts[start : start + size]
                parent.ptrs[:size] = [child.line for child in current[start : start + size]]
                parent.count = size
                parents.append(parent)
                parent_firsts.append(current_firsts[start])
                start += size
            current, current_firsts = parents, parent_firsts
        page.root_line = current[0].line

    def _charge_nonleaf_rebuild(self, page: FpPage, base: int) -> None:
        """Charge touching the (small) in-page non-leaf structure."""
        for node in page.nodes.values():
            if node.kind == NONLEAF:
                used = node.count * (self.keyspec.size + 2)
                address = self.layout.node_address(base, node)
                self.tracer.move(address, address, used)

    def _charge_rebuild(self, page: FpPage, base: int) -> None:
        """Charge the cost of touching every node during a rebuild."""
        for node in page.nodes.values():
            used = node.count * (self.keyspec.size + self.layout.ptr_size(node))
            address = self.layout.node_address(base, node)
            self.tracer.move(address, address, used)

    def _reorganize_page(self, pid: int, page: FpPage, base: int) -> None:
        self.reorganizations += 1
        keys, ptrs = self._collect_entries(page)
        self._rebuild_page(pid, page, keys, ptrs, spread=True)
        self._charge_rebuild(page, base)

    # -- page split --------------------------------------------------------------------------

    def _split_page_and_insert(
        self, pid: int, page: FpPage, base: int, key: int, value: int, path_above: list[int]
    ) -> None:
        """Split a page by moving half its in-page *leaf nodes* to a new page.

        Per Section 3.1.2, only the leaf nodes are copied (the moved half);
        the small in-page non-leaf structures are rebuilt in both pages.
        This keeps the split cost comparable to the baseline's half-page
        copy, rather than rewriting two full pages.
        """
        self.page_splits += 1
        wal = getattr(self.env, "wal", None)
        if wal is not None:
            # Crash point: the machine can die the instant a split begins,
            # mid-transaction, leaving the WAL to roll the whole thing back.
            wal.note_page_split()
        nodes = page.leaf_nodes_in_order()
        if len(nodes) < 2:
            # Degenerate single-node page (tiny page sizes): split entries.
            keys_all, ptrs_all = self._collect_entries(page)
            half_entries = len(keys_all) // 2
            new_pid = self._new_page(page.level)
            new_page = self.store.page(new_pid)
            self._rebuild_page(pid, page, keys_all[:half_entries], ptrs_all[:half_entries], spread=True)
            self._rebuild_page(new_pid, new_page, keys_all[half_entries:], ptrs_all[half_entries:], spread=True)
            new_base = self.pool.address_of(new_pid)
            self._charge_rebuild(page, base)
            self._charge_rebuild(new_page, new_base)
            new_page.next_page = page.next_page
            new_page.prev_page = pid
            if page.next_page != INVALID_PAGE_ID:
                self.store.page(page.next_page).prev_page = new_pid
                self.store.mark_dirty(page.next_page)
            page.next_page = new_pid
            self.store.mark_dirty(pid)
            self.store.mark_dirty(new_pid)
            separator = int(keys_all[half_entries])
            if key < separator:
                self._insert_entry(pid, page, base, key, value, path_above)
            else:
                self._insert_entry(new_pid, new_page, new_base, key, value, path_above)
            self._insert_page_separator(pid, separator, new_pid, path_above)
            return
        half = len(nodes) // 2
        left_nodes, right_nodes = nodes[:half], nodes[half:]
        old_addresses = {id(n): self.layout.node_address(base, n) for n in right_nodes}
        new_pid = self._new_page(page.level)
        new_page = self.store.page(new_pid)
        self._rebuild_page_from_nodes(pid, page, left_nodes)
        self._rebuild_page_from_nodes(new_pid, new_page, right_nodes)
        new_base = self.pool.address_of(new_pid)
        # Charge: the moved half's leaf-node contents are copied to the new
        # page, and the (small) non-leaf structures are rebuilt in both.
        for node in right_nodes:
            used = node.count * (self.keyspec.size + 4)
            self.tracer.move(
                self.layout.node_address(new_base, node), old_addresses[id(node)], used
            )
        self._charge_nonleaf_rebuild(page, base)
        self._charge_nonleaf_rebuild(new_page, new_base)
        # Sibling links (maintained at every page level).
        new_page.next_page = page.next_page
        new_page.prev_page = pid
        if page.next_page != INVALID_PAGE_ID:
            self.store.page(page.next_page).prev_page = new_pid
            self.store.mark_dirty(page.next_page)
        page.next_page = new_pid
        self.store.mark_dirty(pid)
        self.store.mark_dirty(new_pid)
        live_right = [n for n in right_nodes if n.count]
        separator = int(live_right[0].keys[0]) if live_right else key
        # Insert the pending entry into the correct half.
        if key < separator:
            target_pid, target_page, target_base = pid, page, base
        else:
            target_pid, target_page, target_base = new_pid, new_page, new_base
        self._insert_entry(target_pid, target_page, target_base, key, value, path_above)
        self._insert_page_separator(pid, separator, new_pid, path_above)

    def _insert_page_separator(
        self, left_pid: int, separator: int, new_pid: int, path_above: list[int]
    ) -> None:
        """Insert (separator, new page) into the parent page after a split."""
        if not path_above:
            new_root_pid = self._new_page(self.store.page(left_pid).level + 1)
            new_root = self.store.page(new_root_pid)
            left_page = self.store.page(left_pid)
            left_keys, __ = self._collect_entries(left_page)
            left_min = int(left_keys[0]) if len(left_keys) else separator
            self._rebuild_page(
                new_root_pid,
                new_root,
                np.asarray([min(left_min, separator), separator], dtype=self.keyspec.dtype),
                np.asarray([left_pid, new_pid], dtype=np.uint32),
                spread=False,
            )
            self.root_pid = new_root_pid
            self.height += 1
            self.store.mark_dirty(new_root_pid)
            return
        parent_pid = path_above[-1]
        parent_page, parent_base = self._page(parent_pid)
        self._refresh_stale_separator(parent_page, parent_base, left_pid, separator)
        self._insert_entry(
            parent_pid, parent_page, parent_base, separator, new_pid, path_above[:-1]
        )

    def _refresh_stale_separator(
        self, parent_page: FpPage, parent_base: int, left_pid: int, separator: int
    ) -> None:
        """If the left child's recorded separator exceeds the new one, refresh it.

        Only the leftmost routing chain can be stale (keys below every
        separator clamp to child 0), so the entry is found by descending for
        the new separator.
        """
        node, __ = self._inpage_descend(parent_page, parent_base, separator)
        slot = int(np.searchsorted(node.keys[: node.count], separator, side="left"))
        # Skip over equal-key entries for other children.
        while (
            slot < node.count
            and int(node.keys[slot]) == separator
            and int(node.ptrs[slot]) != left_pid
        ):
            slot += 1
        # Refresh on <= : if the left child's recorded key equals the new
        # separator, inserting by binary search would land *before* the left
        # child's entry, breaking the order against the sibling chain.
        if slot < node.count and int(node.ptrs[slot]) == left_pid and separator <= int(node.keys[slot]):
            left_keys, __ = self._collect_entries(self.store.page(left_pid))
            if len(left_keys):
                node.keys[slot] = int(left_keys[0])
                self.tracer.write(
                    self.layout.key_address(parent_base, node, slot), self.keyspec.size
                )

    # -- deletion --------------------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        self.tracer.call_overhead()
        with self._update_txn():
            pid, page, base, __ = self._descend_to_leaf_page(key)
            node, __ = self._inpage_descend(page, base, key)
            slot = insertion_slot(
                node.keys, node.count, key,
                self.layout.key_address(base, node, 0), self.keyspec.size, self.tracer,
            )
            if slot >= node.count or int(node.keys[slot]) != key:
                return False
            moved = node.count - slot - 1
            if moved > 0:
                node.keys[slot : node.count - 1] = node.keys[slot + 1 : node.count].copy()
                node.ptrs[slot : node.count - 1] = node.ptrs[slot + 1 : node.count].copy()
                self.tracer.move(
                    self.layout.key_address(base, node, slot),
                    self.layout.key_address(base, node, slot + 1),
                    moved * self.keyspec.size,
                )
                self.tracer.move(
                    self.layout.ptr_address(base, node, slot),
                    self.layout.ptr_address(base, node, slot + 1),
                    moved * self.layout.ptr_size(node),
                )
            node.count -= 1
            page.total -= 1
            self.tracer.write(self.layout.node_address(base, node), 4)
            self.store.mark_dirty(pid)
            self._entries -= 1
            return True

    # -- range scan ---------------------------------------------------------------------------------

    def range_scan(self, start_key: int, end_key: int) -> ScanResult:
        if end_key < start_key:
            return ScanResult(0, 0)
        self.tracer.call_overhead()
        __, page, base, __ = self._descend_to_leaf_page(start_key, side="left")
        count = 0
        tid_sum = 0
        while True:
            nodes = page.leaf_nodes_in_order()
            # Cache-granularity jump-pointer prefetch: the in-page space
            # management structure locates every leaf node in the page, so
            # they are all prefetched before scanning (Section 3.3).
            for node in nodes:
                self.tracer.prefetch(
                    self.layout.node_address(base, node), self.layout.node_bytes(node)
                )
            done = False
            for node in nodes:
                if node.count == 0:
                    continue
                lo = int(np.searchsorted(node.keys[: node.count], start_key, side="left"))
                hi = int(np.searchsorted(node.keys[: node.count], end_key, side="right"))
                taken = hi - lo
                if taken > 0:
                    self.tracer.scan(
                        self.layout.key_address(base, node, lo), taken * self.keyspec.size
                    )
                    self.tracer.scan(
                        self.layout.ptr_address(base, node, lo), taken * TUPLE_ID_SIZE
                    )
                    count += taken
                    tid_sum += int(node.ptrs[lo:hi].sum(dtype=np.uint64))
                if hi < node.count:
                    done = True
            if done or page.next_page == INVALID_PAGE_ID:
                break
            page, base = self._page(page.next_page)
        return ScanResult(count, tid_sum)

    def range_scan_reverse(self, start_key: int, end_key: int) -> ScanResult:
        """Scan [start_key, end_key] walking leaf pages right-to-left."""
        if end_key < start_key:
            return ScanResult(0, 0)
        self.tracer.call_overhead()
        __, page, base, __ = self._descend_to_leaf_page(end_key)
        count = 0
        tid_sum = 0
        while True:
            nodes = page.leaf_nodes_in_order()
            for node in nodes:
                self.tracer.prefetch(
                    self.layout.node_address(base, node), self.layout.node_bytes(node)
                )
            done = False
            for node in reversed(nodes):
                if node.count == 0:
                    continue
                lo = int(np.searchsorted(node.keys[: node.count], start_key, side="left"))
                hi = int(np.searchsorted(node.keys[: node.count], end_key, side="right"))
                taken = hi - lo
                if taken > 0:
                    self.tracer.scan(
                        self.layout.key_address(base, node, lo), taken * self.keyspec.size
                    )
                    self.tracer.scan(
                        self.layout.ptr_address(base, node, lo), taken * TUPLE_ID_SIZE
                    )
                    count += taken
                    tid_sum += int(node.ptrs[lo:hi].sum(dtype=np.uint64))
                if lo > 0:
                    done = True
            if done or page.prev_page == INVALID_PAGE_ID:
                break
            page, base = self._page(page.prev_page)
        return ScanResult(count, tid_sum)

    # -- introspection ---------------------------------------------------------------------------------

    def leaf_page_ids(self) -> list[int]:
        pids = []
        pid = self.first_leaf_pid
        while pid != INVALID_PAGE_ID:
            pids.append(pid)
            pid = self.store.page(pid).next_page
        return pids

    def page_path(self, key: int) -> list[int]:
        """Page ids visited by a search (untraced; for I/O experiments)."""
        path = [self.root_pid]
        page = self.store.page(self.root_pid)
        while page.level > 0:
            node = page.root
            while node.kind == NONLEAF:
                slot = max(
                    int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0
                )
                node = page.nodes[int(node.ptrs[slot])]
            slot = max(int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0)
            pid = int(node.ptrs[slot])
            path.append(pid)
            page = self.store.page(pid)
        return path

    def leaf_pids_via_jump_pointers(self) -> list[int]:
        """Leaf page ids gathered from the leaf-parent level (Section 3.3).

        This is the internal jump-pointer array used for I/O prefetching:
        the in-page leaf nodes of leaf-parent pages collectively hold every
        leaf page id in order.
        """
        if self.height == 1:
            return [self.root_pid]
        # Find the leftmost page at level 1.
        pid = self.root_pid
        page = self.store.page(pid)
        while page.level > 1:
            first_node = page.leaf_nodes_in_order()[0]
            pid = int(first_node.ptrs[0])
            page = self.store.page(pid)
        pids: list[int] = []
        while pid != INVALID_PAGE_ID:
            page = self.store.page(pid)
            for node in page.leaf_nodes_in_order():
                pids.extend(int(p) for p in node.ptrs[: node.count])
            pid = page.next_page
        return pids

    def items(self) -> Iterable[tuple[int, int]]:
        pid = self.first_leaf_pid
        while pid != INVALID_PAGE_ID:
            page = self.store.page(pid)
            for node in page.leaf_nodes_in_order():
                for i in range(node.count):
                    yield int(node.keys[i]), int(node.ptrs[i])
            pid = page.next_page

    def validate(self) -> None:
        seen_entries = 0
        leaf_pids: list[int] = []

        def check_page(pid: int) -> tuple[int, list[int]]:
            """Validate one page; returns (entry count, child pids)."""
            page = self.store.page(pid)
            if page.root_line < 0 or page.root_line not in page.nodes:
                raise IndexCorruptionError(f"page {pid} has no root node")
            # Allocator consistency: every node's lines marked used.
            for node in page.nodes.values():
                for line in range(node.line, node.line + node.width):
                    if not page.alloc.is_used(line):
                        raise IndexCorruptionError(f"page {pid} node lines not allocated")
            entries = 0
            children: list[int] = []
            last_key = None
            for node in page.leaf_nodes_in_order():
                if node.count > node.capacity:
                    raise IndexCorruptionError(f"page {pid} node overfull")
                keys = node.keys[: node.count]
                if np.any(keys[:-1] > keys[1:]):
                    raise IndexCorruptionError(f"page {pid} node keys unsorted")
                if node.count:
                    if last_key is not None and int(keys[0]) < last_key:
                        raise IndexCorruptionError(f"page {pid} leaf nodes out of order")
                    last_key = int(keys[-1])
                entries += node.count
                children.extend(int(p) for p in node.ptrs[: node.count])
            for node in page.nodes.values():
                if node.kind == NONLEAF:
                    for i in range(node.count):
                        if int(node.ptrs[i]) not in page.nodes:
                            raise IndexCorruptionError(f"page {pid} dangling in-page pointer")
            if entries != page.total:
                raise IndexCorruptionError(
                    f"page {pid} total mismatch: counted {entries}, header {page.total}"
                )
            return entries, children

        def walk(pid: int, level: int) -> None:
            nonlocal seen_entries
            page = self.store.page(pid)
            if page.level != level:
                raise IndexCorruptionError(f"page {pid} level {page.level}, expected {level}")
            entries, children = check_page(pid)
            if level == 0:
                seen_entries += entries
                leaf_pids.append(pid)
            else:
                for child in children:
                    walk(child, level - 1)

        walk(self.root_pid, self.height - 1)
        if seen_entries != self._entries:
            raise IndexCorruptionError(
                f"entry count mismatch: walk={seen_entries} counter={self._entries}"
            )
        if leaf_pids and leaf_pids != self.leaf_page_ids():
            raise IndexCorruptionError("leaf page chain disagrees with tree order")
        if self.height > 1 and leaf_pids != self.leaf_pids_via_jump_pointers():
            raise IndexCorruptionError("jump-pointer array disagrees with leaf chain")
