"""Cache-first fpB+-Tree (paper Section 3.2).

Starts from a cache-optimized tree of uniform multi-line nodes (ignoring
page boundaries), then places those nodes into disk pages to salvage I/O
performance (Figure 8):

* **Leaf pages** hold only leaf nodes, and the leaf nodes within one page
  are consecutive siblings — good range-scan I/O.
* **Non-leaf nodes** are placed *aggressively*: a parent and as many of its
  descendants as fit share a page.  The bulkload computes how many levels of
  a full subtree fit per page and spreads the remaining slots ("underflow")
  evenly over the next level's children with a bitmap.  Children that do
  not fit become the top node of their own page — except **leaf parents**,
  which go to shared overflow pages (their children are in leaf pages, so a
  page of their own would hold one node).
* Non-leaf child pointers are page id + in-page offset (6 bytes); search
  touches the buffer manager only when crossing a page boundary.

Structural bookkeeping (who is whose parent) is kept as Python object
references; the *costs* of the paper's lookup mechanisms — the per-leaf-page
back pointer and the leaf-parent sibling links used to find parents during
leaf-page splits — are charged explicitly where the paper uses them.

Non-leaf node splits in full pages follow Figure 9(c): the page's top node
splits and the page divides into two, keeping each half's co-located
subtrees together, rather than orphaning nodes or cascading promotions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..btree.base import Index, IndexCorruptionError, ScanResult, as_key_array, chunk_evenly
from ..btree.context import TreeEnvironment
from ..btree.keys import INVALID_PAGE_ID, TUPLE_ID_SIZE
from ..btree.search import child_slot, insertion_slot
from .jump_pointer import ExternalJumpPointerArray
from .optimizer import (
    CACHE_FIRST_NODE_HEADER_BYTES,
    PAGE_HEADER_BYTES,
    CacheFirstWidths,
    optimize_cache_first,
)

__all__ = ["CacheFirstFpTree", "CfNode", "CfPage"]

PAGE_NONLEAF = "nonleaf"
PAGE_OVERFLOW = "overflow"
PAGE_LEAF = "leaf"


class CfNode:
    """A uniform-width cache-optimized node."""

    __slots__ = (
        "is_leaf",
        "count",
        "keys",
        "tids",
        "children",
        "parent",
        "next_leaf",
        "next_parent",
        "in_page_level",
        "pid",
        "slot",
    )

    def __init__(self, is_leaf: bool, capacity: int, key_dtype: np.dtype) -> None:
        self.is_leaf = is_leaf
        self.count = 0
        self.keys = np.zeros(capacity, dtype=key_dtype)
        self.tids = np.zeros(capacity, dtype=np.uint32) if is_leaf else None
        self.children: Optional[list["CfNode"]] = None if is_leaf else []
        self.parent: Optional["CfNode"] = None
        self.next_leaf: Optional["CfNode"] = None  # leaf chain
        self.next_parent: Optional["CfNode"] = None  # leaf-parent chain
        self.in_page_level = 0
        self.pid = -1
        self.slot = -1

    @property
    def is_leaf_parent(self) -> bool:
        return not self.is_leaf and bool(self.children) and self.children[0].is_leaf


class CfPage:
    """A disk page holding up to ``slots`` cache-first nodes."""

    __slots__ = ("kind", "slots", "used", "next_page", "prev_page", "back_pointer")

    def __init__(self, kind: str, slot_count: int) -> None:
        self.kind = kind
        self.slots: list[Optional[CfNode]] = [None] * slot_count
        self.used = 0
        self.next_page = INVALID_PAGE_ID  # leaf page chain
        self.prev_page = INVALID_PAGE_ID
        self.back_pointer: Optional[CfNode] = None  # parent of first leaf node

    def free_slot(self) -> Optional[int]:
        for index, node in enumerate(self.slots):
            if node is None:
                return index
        return None

    def nodes(self) -> list[CfNode]:
        return [node for node in self.slots if node is not None]


class CacheFirstFpTree(Index):
    """fpB+-Tree built cache-first: nodes first, page placement second."""

    name = "cache-first fpB+tree"

    def __init__(
        self,
        env: Optional[TreeEnvironment] = None,
        widths: Optional[CacheFirstWidths] = None,
        num_keys_hint: int = 10_000_000,
        **env_kwargs,
    ) -> None:
        self.env = env if env is not None else TreeEnvironment(**env_kwargs)
        mem = self.env.mem
        if widths is None:
            widths = optimize_cache_first(
                self.env.page_size,
                key_size=self.env.keyspec.size,
                num_keys=num_keys_hint,
                line_size=self.env.line_size,
                t1=mem.config.t1 if mem else 150,
                tnext=mem.config.tnext if mem else 10,
            )
        self.widths = widths
        self.store = self.env.store
        self.pool = self.env.pool
        self.tracer = self.env.tracer
        self.keyspec = self.env.keyspec
        self.node_bytes = widths.node_bytes
        self.nonleaf_capacity = widths.nonleaf_capacity
        self.leaf_capacity = widths.leaf_capacity
        self.slots_per_page = widths.nodes_per_page
        if self.slots_per_page < 2:
            raise ValueError("page too small for cache-first placement")
        # How many levels of a full subtree fit in one page (Section 3.2.1).
        self.full_levels = 1
        total = 1
        while total + self.widths.nonleaf_capacity ** self.full_levels <= self.slots_per_page:
            total += self.widths.nonleaf_capacity ** self.full_levels
            self.full_levels += 1

        self.height = 1
        self._entries = 0
        self.node_splits = 0
        self.leaf_page_splits = 0
        self.nonleaf_page_splits = 0
        self._current_pid: int = -1  # page the current operation is inside
        self._overflow_pids: list[int] = []
        self.jump_pointers = ExternalJumpPointerArray()

        root_page_pid = self.store.allocate(CfPage(PAGE_LEAF, self.slots_per_page))
        self.root = CfNode(True, self.leaf_capacity, self.keyspec.dtype)
        self._place_node(self.root, root_page_pid, 0)
        self.first_leaf = self.root
        self.jump_pointers.build([root_page_pid])

    # -- placement helpers ---------------------------------------------------------

    def _new_page(self, kind: str) -> int:
        return self.store.allocate(CfPage(kind, self.slots_per_page))

    def _place_node(self, node: CfNode, pid: int, slot: int) -> None:
        page = self.store.page(pid)
        if page.slots[slot] is not None:
            raise IndexCorruptionError(f"slot {slot} of page {pid} already occupied")
        page.slots[slot] = node
        page.used += 1
        node.pid = pid
        node.slot = slot

    def _unplace_node(self, node: CfNode) -> None:
        page = self.store.page(node.pid)
        page.slots[node.slot] = None
        page.used -= 1
        node.pid = -1
        node.slot = -1

    def _overflow_slot(self) -> tuple[int, int]:
        """A free slot in an overflow page, allocating a new page if needed."""
        for pid in self._overflow_pids:
            slot = self.store.page(pid).free_slot()
            if slot is not None:
                return pid, slot
        pid = self._new_page(PAGE_OVERFLOW)
        self._overflow_pids.append(pid)
        return pid, 0

    # -- simulated addresses ----------------------------------------------------------

    def _node_address(self, node: CfNode) -> int:
        base = self.pool.address_of(node.pid)
        return base + PAGE_HEADER_BYTES + node.slot * self.node_bytes

    def _key_address(self, node: CfNode, slot: int) -> int:
        return self._node_address(node) + CACHE_FIRST_NODE_HEADER_BYTES + slot * self.keyspec.size

    def _ptr_address(self, node: CfNode, slot: int) -> int:
        entry = TUPLE_ID_SIZE if node.is_leaf else 6
        capacity = self.leaf_capacity if node.is_leaf else self.nonleaf_capacity
        return (
            self._node_address(node)
            + CACHE_FIRST_NODE_HEADER_BYTES
            + capacity * self.keyspec.size
            + slot * entry
        )

    # -- traced node access -------------------------------------------------------------

    def _visit(self, node: CfNode) -> None:
        """Fetch a node, paying the buffer manager only on page crossings."""
        if node.pid != self._current_pid:
            self.pool.access(node.pid)
            self.tracer.read(self.pool.address_of(node.pid), 16)
            self._current_pid = node.pid
        self.tracer.prefetch(self._node_address(node), self.node_bytes)
        self.tracer.read(self._node_address(node), CACHE_FIRST_NODE_HEADER_BYTES)
        self.tracer.visit_node()

    def _begin_op(self) -> None:
        self._current_pid = -1
        self.tracer.call_overhead()

    def _descend(self, key: int, side: str = "right") -> CfNode:
        node = self.root
        self._visit(node)
        while not node.is_leaf:
            slot = child_slot(
                node.keys, node.count, key,
                self._key_address(node, 0), self.keyspec.size, self.tracer,
                side=side,
            )
            self.tracer.read(self._ptr_address(node, slot), 6)
            node = node.children[slot]
            self._visit(node)
        return node

    # -- public interface ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._entries

    @property
    def num_pages(self) -> int:
        return self.store.num_pages

    def search(self, key: int) -> Optional[int]:
        self._begin_op()
        leaf = self._descend(key)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if slot < leaf.count and int(leaf.keys[slot]) == key:
            self.tracer.read(self._ptr_address(leaf, slot), TUPLE_ID_SIZE)
            return int(leaf.tids[slot])
        return None

    # -- bulkload -------------------------------------------------------------------------------

    def bulkload(self, keys: Sequence[int], tids: Sequence[int], fill: float = 1.0) -> None:
        fill = self.check_fill(fill)
        keys = as_key_array(keys, self.keyspec)
        tids = np.asarray(tids, dtype=np.uint32)
        if keys.shape != tids.shape:
            raise ValueError("keys and tids must have the same length")
        if np.any(keys[:-1] > keys[1:]):
            raise ValueError("bulkload requires sorted keys")
        if self._entries:
            raise RuntimeError("bulkload requires an empty tree")
        if keys.size == 0:
            return
        # Discard the empty bootstrap structure.
        self.store.free(self.root.pid)
        self.pool.invalidate(self.root.pid)
        self._overflow_pids.clear()

        # 1. Build the logical node tree, bottom-up.
        per_leaf = max(1, int(self.leaf_capacity * fill))
        per_nonleaf = max(2, int(self.nonleaf_capacity * fill))
        leaves: list[CfNode] = []
        firsts: list[int] = []
        start = 0
        previous: Optional[CfNode] = None
        for size in chunk_evenly(len(keys), per_leaf):
            node = CfNode(True, self.leaf_capacity, self.keyspec.dtype)
            node.keys[:size] = keys[start : start + size]
            node.tids[:size] = tids[start : start + size]
            node.count = size
            if previous is not None:
                previous.next_leaf = node
            leaves.append(node)
            firsts.append(int(keys[start]))
            previous = node
            start += size
        self.first_leaf = leaves[0]

        level_nodes = leaves
        level_firsts = firsts
        height = 1
        while len(level_nodes) > 1:
            parents: list[CfNode] = []
            parent_firsts: list[int] = []
            start = 0
            previous = None
            for size in chunk_evenly(len(level_nodes), per_nonleaf):
                parent = CfNode(False, self.nonleaf_capacity, self.keyspec.dtype)
                parent.keys[:size] = level_firsts[start : start + size]
                parent.children = list(level_nodes[start : start + size])
                parent.count = size
                for child in parent.children:
                    child.parent = parent
                if height == 1 and previous is not None:
                    previous.next_parent = parent  # leaf-parent sibling links
                parents.append(parent)
                parent_firsts.append(level_firsts[start])
                previous = parent
                start += size
            level_nodes, level_firsts = parents, parent_firsts
            height += 1
        self.root = level_nodes[0]
        self.height = height
        self._entries = int(keys.size)

        # 2. Place leaf nodes into leaf pages (consecutive siblings per page).
        leaf_pids: list[int] = []
        prev_pid = INVALID_PAGE_ID
        for chunk_start in range(0, len(leaves), self.slots_per_page):
            pid = self._new_page(PAGE_LEAF)
            page = self.store.page(pid)
            chunk = leaves[chunk_start : chunk_start + self.slots_per_page]
            for index, node in enumerate(chunk):
                self._place_node(node, pid, index)
            page.back_pointer = chunk[0].parent
            page.prev_page = prev_pid
            if prev_pid != INVALID_PAGE_ID:
                self.store.page(prev_pid).next_page = pid
            leaf_pids.append(pid)
            prev_pid = pid
        self.jump_pointers.build(leaf_pids)

        # 3. Place non-leaf nodes: aggressive parent-child grouping.
        if not self.root.is_leaf:
            self._place_top_node(self.root)

    def _place_top_node(self, node: CfNode) -> None:
        """Make ``node`` the top-level node of a fresh page and fill below it."""
        pid = self._new_page(PAGE_NONLEAF)
        node.in_page_level = 0
        self._place_node(node, pid, 0)
        self._place_children(node)

    def _place_children(self, node: CfNode) -> None:
        """Place ``node``'s children per the aggressive scheme (Section 3.2.1)."""
        if node.is_leaf_parent:
            return  # children are leaf nodes, already in leaf pages
        page = self.store.page(node.pid)
        child_level = node.in_page_level + 1
        children = node.children
        if child_level < self.full_levels:
            selected = set(range(len(children)))
        elif child_level == self.full_levels:
            # Spread the underflow slots evenly across the children (bitmap).
            free = self.slots_per_page - page.used
            pick = min(free, len(children))
            if pick > 0:
                selected = {(i * len(children)) // pick for i in range(pick)}
            else:
                selected = set()
        else:
            selected = set()
        for index, child in enumerate(children):
            if index in selected:
                slot = page.free_slot()
            else:
                slot = None
            if slot is not None:
                child.in_page_level = child_level
                self._place_node(child, node.pid, slot)
                self._place_children(child)
            elif child.is_leaf_parent:
                overflow_pid, overflow_slot = self._overflow_slot()
                child.in_page_level = 0
                self._place_node(child, overflow_pid, overflow_slot)
            else:
                self._place_top_node(child)

    # -- insertion -----------------------------------------------------------------------------------

    def insert(self, key: int, tid: int) -> None:
        self._begin_op()
        leaf = self._descend(key)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if leaf.count < self.leaf_capacity:
            self._leaf_insert(leaf, slot, key, tid)
        else:
            self._split_leaf_and_insert(leaf, slot, key, tid)
        self._entries += 1

    def _leaf_insert(self, leaf: CfNode, slot: int, key: int, tid: int) -> None:
        moved = leaf.count - slot
        if moved > 0:
            leaf.keys[slot + 1 : leaf.count + 1] = leaf.keys[slot:leaf.count].copy()
            leaf.tids[slot + 1 : leaf.count + 1] = leaf.tids[slot:leaf.count].copy()
            self.tracer.move(
                self._key_address(leaf, slot + 1), self._key_address(leaf, slot),
                moved * self.keyspec.size,
            )
            self.tracer.move(
                self._ptr_address(leaf, slot + 1), self._ptr_address(leaf, slot),
                moved * TUPLE_ID_SIZE,
            )
        leaf.keys[slot] = key
        leaf.tids[slot] = tid
        leaf.count += 1
        self.tracer.write(self._key_address(leaf, slot), self.keyspec.size)
        self.tracer.write(self._ptr_address(leaf, slot), TUPLE_ID_SIZE)
        self.tracer.write(self._node_address(leaf), 4)

    def _nonleaf_insert(self, node: CfNode, slot: int, key: int, child: CfNode) -> None:
        moved = node.count - slot
        if moved > 0:
            node.keys[slot + 1 : node.count + 1] = node.keys[slot:node.count].copy()
            self.tracer.move(
                self._key_address(node, slot + 1), self._key_address(node, slot),
                moved * self.keyspec.size,
            )
            self.tracer.move(
                self._ptr_address(node, slot + 1), self._ptr_address(node, slot),
                moved * 6,
            )
        node.keys[slot] = key
        node.children.insert(slot, child)
        node.count += 1
        child.parent = node
        self.tracer.write(self._key_address(node, slot), self.keyspec.size)
        self.tracer.write(self._ptr_address(node, slot), 6)
        self.tracer.write(self._node_address(node), 4)

    def _split_leaf_and_insert(self, leaf: CfNode, slot: int, key: int, tid: int) -> None:
        """Split a full leaf node, inside its (possibly just split) leaf page."""
        self.node_splits += 1
        page = self.store.page(leaf.pid)
        if page.free_slot() is None:
            self._split_leaf_page(leaf.pid)
            page = self.store.page(leaf.pid)  # leaf may have moved
        new_slot = page.free_slot()
        assert new_slot is not None, "leaf page split must free slots"
        new_leaf = CfNode(True, self.leaf_capacity, self.keyspec.dtype)
        self._place_node(new_leaf, leaf.pid, new_slot)
        half = leaf.count // 2
        moved = leaf.count - half
        new_leaf.keys[:moved] = leaf.keys[half:leaf.count]
        new_leaf.tids[:moved] = leaf.tids[half:leaf.count]
        new_leaf.count = moved
        leaf.count = half
        self.tracer.move(
            self._key_address(new_leaf, 0), self._key_address(leaf, half),
            moved * self.keyspec.size,
        )
        self.tracer.move(
            self._ptr_address(new_leaf, 0), self._ptr_address(leaf, half),
            moved * TUPLE_ID_SIZE,
        )
        new_leaf.next_leaf = leaf.next_leaf
        leaf.next_leaf = new_leaf
        if slot <= half:
            self._leaf_insert(leaf, slot, key, tid)
        else:
            self._leaf_insert(new_leaf, slot - half, key, tid)
        self._insert_into_parent(leaf, int(new_leaf.keys[0]), new_leaf)

    def _insert_into_parent(self, left: CfNode, separator: int, new_node: CfNode) -> None:
        parent = left.parent
        if parent is None:
            self._grow_root(left, separator, new_node)
            return
        self._visit(parent)
        pslot = self._child_index(parent, left)
        if separator <= int(parent.keys[pslot]) and left.count:
            # Stale leftmost separator (or equal-key boundary): refresh so the
            # new entry sorts after the left child's.
            parent.keys[pslot] = left.keys[0]
            self.tracer.write(self._key_address(parent, pslot), self.keyspec.size)
        if parent.count < self.nonleaf_capacity:
            self._nonleaf_insert(parent, pslot + 1, separator, new_node)
            return
        self._split_nonleaf_and_insert(parent, pslot + 1, separator, new_node)

    def _child_index(self, parent: CfNode, child: CfNode) -> int:
        for index, candidate in enumerate(parent.children):
            if candidate is child:
                return index
        raise IndexCorruptionError("child not found in its recorded parent")

    def _grow_root(self, left: CfNode, separator: int, right: CfNode) -> None:
        new_root = CfNode(False, self.nonleaf_capacity, self.keyspec.dtype)
        left_min = int(left.keys[0]) if left.count else separator
        new_root.keys[0] = min(left_min, separator)
        new_root.keys[1] = separator
        new_root.children = [left, right]
        new_root.count = 2
        left.parent = new_root
        right.parent = new_root
        self._place_top_node_shallow(new_root)
        self.root = new_root
        self.height += 1
        if left.is_leaf:
            self.store.page(left.pid).back_pointer = new_root

    def _place_top_node_shallow(self, node: CfNode) -> None:
        """Place a single new node as top of a fresh page (no recursion)."""
        pid = self._new_page(PAGE_NONLEAF)
        node.in_page_level = 0
        self._place_node(node, pid, 0)
        self.tracer.move(self._node_address(node), self._node_address(node), self.node_bytes)

    def _split_nonleaf_and_insert(self, node: CfNode, slot: int, key: int, child: CfNode) -> None:
        """Split a full non-leaf node and insert the pending (key, child)."""
        new_node = self._split_nonleaf_node(node)
        half = node.count  # counts were already halved by the split
        if slot < half:
            self._nonleaf_insert(node, slot, key, child)
        elif slot == half:
            self._nonleaf_insert(new_node, 0, key, child)
        else:
            self._nonleaf_insert(new_node, slot - half, key, child)
        self._insert_into_parent(node, int(new_node.keys[0]), new_node)

    def _split_nonleaf_node(self, node: CfNode) -> CfNode:
        """Split a full non-leaf node in two, honoring the placement rules.

        The sibling is allocated (in priority order): in the node's own page;
        for leaf parents, in an overflow page; for a page's top node, as the
        top of a new page — the Figure 9(c) page split, which carries the
        moved children's co-located subtrees along; otherwise, after first
        splitting the page at its top node to make room, with "own new page"
        as the final fallback.  Entry redistribution and the leaf-parent
        sibling chain are handled here; the separator is NOT propagated —
        callers do that (with or without a pending insert).
        """
        self.node_splits += 1
        old_pid = node.pid
        new_node = CfNode(False, self.nonleaf_capacity, self.keyspec.dtype)
        page = self.store.page(node.pid)
        free = page.free_slot()
        page_split_mode = False
        if free is not None:
            new_node.in_page_level = node.in_page_level
            self._place_node(new_node, node.pid, free)
        elif node.is_leaf_parent:
            pid, overflow_slot = self._overflow_slot()
            new_node.in_page_level = 0
            self._place_node(new_node, pid, overflow_slot)
            self.pool.access(pid)  # the overflow page is touched
        elif self._top_of_page(node) is node:
            # Figure 9(c): the top node's split divides the page in two.
            self.nonleaf_page_splits += 1
            new_pid = self._new_page(PAGE_NONLEAF)
            new_node.in_page_level = 0
            self._place_node(new_node, new_pid, 0)
            page_split_mode = True
        else:
            # Make room by splitting the page at its top node, then retry.
            self._split_page_at_top(self._top_of_page(node))
            free = self.store.page(node.pid).free_slot()
            if free is not None:
                new_node.in_page_level = node.in_page_level
                self._place_node(new_node, node.pid, free)
            else:
                # Fallback: the overflowed sibling gets its own page.
                new_pid = self._new_page(PAGE_NONLEAF)
                new_node.in_page_level = 0
                self._place_node(new_node, new_pid, 0)
                page_split_mode = True

        half = node.count // 2
        moved = node.count - half
        new_node.keys[:moved] = node.keys[half:node.count]
        new_node.children = node.children[half:]
        node.children = node.children[:half]
        new_node.count = moved
        node.count = half
        for grandchild in new_node.children:
            grandchild.parent = new_node
        self.tracer.move(
            self._key_address(new_node, 0), self._key_address(node, half),
            moved * self.keyspec.size,
        )
        self.tracer.move(
            self._ptr_address(new_node, 0), self._ptr_address(node, half),
            moved * 6,
        )
        if node.is_leaf_parent:
            new_node.next_parent = node.next_parent
            node.next_parent = new_node
            self._fix_back_pointers(new_node)
        elif page_split_mode:
            # Carry the moved children's co-located subtrees to the new page.
            for grandchild in new_node.children:
                if not grandchild.is_leaf and grandchild.pid == old_pid:
                    self._move_subtree(grandchild, old_pid, new_node.pid)
        return new_node

    def _top_of_page(self, node: CfNode) -> CfNode:
        """The in-page-level-0 ancestor sharing ``node``'s page."""
        top = node
        while top.parent is not None and top.parent.pid == top.pid:
            top = top.parent
        return top

    def _split_page_at_top(self, top: CfNode) -> None:
        """Split a full page by splitting its top node (no pending insert)."""
        new_node = self._split_nonleaf_node(top)
        self._insert_into_parent(top, int(new_node.keys[0]), new_node)

    def _move_subtree(self, node: CfNode, from_pid: int, to_pid: int) -> None:
        """Move a node (and its co-located descendants) to another page."""
        new_page = self.store.page(to_pid)
        slot = new_page.free_slot()
        if slot is None:
            raise IndexCorruptionError("page split ran out of slots while moving subtrees")
        old_address = self._node_address(node)
        self._unplace_node(node)
        self._place_node(node, to_pid, slot)
        self.tracer.move(self._node_address(node), old_address, self.node_bytes)
        if node.is_leaf_parent:
            self._fix_back_pointers(node)
            return
        if node.is_leaf:
            return
        for child in node.children:
            if not child.is_leaf and child.pid == from_pid:
                self._move_subtree(child, from_pid, to_pid)

    def _fix_back_pointers(self, parent: CfNode) -> None:
        """Repair leaf-page back pointers after leaf-parent changes.

        A leaf page's back pointer names the parent of its first leaf node.
        Charges the paper's lookup: read the parent's child list.
        """
        self.tracer.read(self._ptr_address(parent, 0), parent.count * 6)
        for child in parent.children or []:
            page = self.store.page(child.pid)
            if page.slots and self._first_leaf_of_page(page) is child:
                page.back_pointer = child.parent

    # -- leaf page split ------------------------------------------------------------------------------------

    def _first_leaf_of_page(self, page: CfPage) -> Optional[CfNode]:
        """The first (leftmost) leaf node resident in a leaf page.

        The chain has no prev links, so the first node is the resident that
        no other resident's ``next_leaf`` points to.
        """
        residents = page.nodes()
        if not residents:
            return None
        pointed_to = {id(node.next_leaf) for node in residents if node.next_leaf is not None}
        for node in residents:
            if id(node) not in pointed_to:
                return node
        return residents[0]

    def _page_leaves_in_order(self, page: CfPage) -> list[CfNode]:
        first = self._first_leaf_of_page(page)
        out = []
        node = first
        while node is not None and node.pid == first.pid:
            out.append(node)
            node = node.next_leaf
        return out

    def _split_leaf_page(self, pid: int) -> None:
        """Move the second half of a full leaf page's nodes to a new page."""
        self.leaf_page_splits += 1
        page = self.store.page(pid)
        ordered = self._page_leaves_in_order(page)
        half = len(ordered) // 2
        moving = ordered[half:]
        new_pid = self._new_page(PAGE_LEAF)
        new_page = self.store.page(new_pid)
        # Charge the paper's parent lookup: walk from the back pointer along
        # the leaf-parent sibling links, scanning child arrays.
        walker = page.back_pointer
        while walker is not None:
            self.tracer.read(self._node_address(walker), CACHE_FIRST_NODE_HEADER_BYTES)
            self.tracer.read(self._ptr_address(walker, 0), walker.count * 6)
            last_child = walker.children[walker.count - 1] if walker.count else None
            if last_child is None or (last_child.pid == pid and last_child is ordered[-1]):
                break
            if last_child.pid != pid:
                break
            walker = walker.next_parent
        for index, node in enumerate(moving):
            old_address = self._node_address(node)
            self._unplace_node(node)
            self._place_node(node, new_pid, index)
            self.tracer.move(self._node_address(node), old_address, self.node_bytes)
            # Parent's child pointer must be rewritten (6 bytes).
            if node.parent is not None:
                pslot = self._child_index(node.parent, node)
                self.tracer.write(self._ptr_address(node.parent, pslot), 6)
        new_page.back_pointer = moving[0].parent
        new_page.next_page = page.next_page
        new_page.prev_page = pid
        if page.next_page != INVALID_PAGE_ID:
            self.store.page(page.next_page).prev_page = new_pid
        page.next_page = new_pid
        self.jump_pointers.insert_after(pid, new_pid)

    # -- deletion ---------------------------------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        self._begin_op()
        leaf = self._descend(key)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if slot >= leaf.count or int(leaf.keys[slot]) != key:
            return False
        moved = leaf.count - slot - 1
        if moved > 0:
            leaf.keys[slot : leaf.count - 1] = leaf.keys[slot + 1 : leaf.count].copy()
            leaf.tids[slot : leaf.count - 1] = leaf.tids[slot + 1 : leaf.count].copy()
            self.tracer.move(
                self._key_address(leaf, slot), self._key_address(leaf, slot + 1),
                moved * self.keyspec.size,
            )
            self.tracer.move(
                self._ptr_address(leaf, slot), self._ptr_address(leaf, slot + 1),
                moved * TUPLE_ID_SIZE,
            )
        leaf.count -= 1
        self.tracer.write(self._node_address(leaf), 4)
        self._entries -= 1
        return True

    # -- range scan ------------------------------------------------------------------------------------------------

    def range_scan(self, start_key: int, end_key: int) -> ScanResult:
        if end_key < start_key:
            return ScanResult(0, 0)
        self._begin_op()
        # Left-biased descent so duplicates spanning node/page boundaries
        # are scanned from their first occurrence.
        leaf = self._descend(start_key, side="left")
        count = 0
        tid_sum = 0
        prefetched_pid = -1
        node: Optional[CfNode] = leaf
        while node is not None:
            if node.pid != prefetched_pid:
                # New leaf page: prefetch all its resident leaf nodes using
                # the in-page space-management structure (Section 3.3).
                if node.pid != self._current_pid:
                    self.pool.access(node.pid)
                    self._current_pid = node.pid
                page = self.store.page(node.pid)
                for resident in page.nodes():
                    self.tracer.prefetch(self._node_address(resident), self.node_bytes)
                prefetched_pid = node.pid
            lo = int(np.searchsorted(node.keys[: node.count], start_key, side="left"))
            hi = int(np.searchsorted(node.keys[: node.count], end_key, side="right"))
            taken = hi - lo
            if taken > 0:
                self.tracer.scan(self._key_address(node, lo), taken * self.keyspec.size)
                self.tracer.scan(self._ptr_address(node, lo), taken * TUPLE_ID_SIZE)
                count += taken
                tid_sum += int(node.tids[lo:hi].sum(dtype=np.uint64))
            if hi < node.count:
                break
            node = node.next_leaf
        return ScanResult(count, tid_sum)

    def range_scan_reverse(self, start_key: int, end_key: int) -> ScanResult:
        """Scan [start_key, end_key] walking leaf pages right-to-left.

        Leaf nodes carry only forward links, but leaf *pages* are chained
        both ways and each page's nodes are consecutive siblings, so a
        reverse scan walks pages backwards and nodes in reverse within
        each page.
        """
        if end_key < start_key:
            return ScanResult(0, 0)
        self._begin_op()
        leaf = self._descend(end_key)
        pid = leaf.pid
        count = 0
        tid_sum = 0
        while True:
            if pid != self._current_pid:
                self.pool.access(pid)
                self._current_pid = pid
            page = self.store.page(pid)
            for resident in page.nodes():
                self.tracer.prefetch(self._node_address(resident), self.node_bytes)
            done = False
            for node in reversed(self._page_leaves_in_order(page)):
                if node.count == 0:
                    continue
                lo = int(np.searchsorted(node.keys[: node.count], start_key, side="left"))
                hi = int(np.searchsorted(node.keys[: node.count], end_key, side="right"))
                taken = hi - lo
                if taken > 0:
                    self.tracer.scan(self._key_address(node, lo), taken * self.keyspec.size)
                    self.tracer.scan(self._ptr_address(node, lo), taken * TUPLE_ID_SIZE)
                    count += taken
                    tid_sum += int(node.tids[lo:hi].sum(dtype=np.uint64))
                if lo > 0:
                    done = True
            page = self.store.page(pid)
            if done or page.prev_page == INVALID_PAGE_ID:
                break
            pid = page.prev_page
        return ScanResult(count, tid_sum)

    # -- introspection -----------------------------------------------------------------------------------------------

    def leaf_page_ids(self) -> list[int]:
        pids: list[int] = []
        node = self.first_leaf
        while node is not None:
            if not pids or pids[-1] != node.pid:
                pids.append(node.pid)
            node = node.next_leaf
        return pids

    def page_path(self, key: int) -> list[int]:
        """Page ids visited by a search (untraced; for I/O experiments).

        Consecutive nodes on the same page cost one page visit — the
        cache-first search's page-id comparison trick (Section 3.2.2).
        """
        path: list[int] = []
        node = self.root
        while True:
            if not path or path[-1] != node.pid:
                path.append(node.pid)
            if node.is_leaf:
                return path
            slot = max(int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0)
            node = node.children[slot]

    def items(self) -> Iterable[tuple[int, int]]:
        node = self.first_leaf
        while node is not None:
            for i in range(node.count):
                yield int(node.keys[i]), int(node.tids[i])
            node = node.next_leaf

    def overflow_page_count(self) -> int:
        return len(self._overflow_pids)

    def validate(self) -> None:
        # 1. Node/page slot-table consistency and page typing.
        for pid in list(self.store.page_ids()):
            page = self.store.page(pid)
            if not isinstance(page, CfPage):
                raise IndexCorruptionError(f"foreign page {pid} in store")
            used = 0
            for slot, node in enumerate(page.slots):
                if node is None:
                    continue
                used += 1
                if node.pid != pid or node.slot != slot:
                    raise IndexCorruptionError(f"node location mismatch at page {pid} slot {slot}")
                if page.kind == PAGE_LEAF and not node.is_leaf:
                    raise IndexCorruptionError(f"non-leaf node in leaf page {pid}")
                if page.kind != PAGE_LEAF and node.is_leaf:
                    raise IndexCorruptionError(f"leaf node in non-leaf page {pid}")
            if used != page.used:
                raise IndexCorruptionError(f"page {pid} used-count mismatch")

        # 2. Tree walk: keys sorted, separators valid, parents consistent.
        entries = 0
        leaves: list[CfNode] = []

        def walk(node: CfNode, depth: int) -> None:
            nonlocal entries
            capacity = self.leaf_capacity if node.is_leaf else self.nonleaf_capacity
            if node.count > capacity:
                raise IndexCorruptionError("node overfull")
            keys = node.keys[: node.count]
            if np.any(keys[:-1] > keys[1:]):
                raise IndexCorruptionError("node keys unsorted")
            if node.is_leaf:
                if depth != self.height:
                    raise IndexCorruptionError("leaves at unequal depth")
                entries += node.count
                leaves.append(node)
                return
            if len(node.children) != node.count:
                raise IndexCorruptionError("child list length mismatch")
            for i, child in enumerate(node.children):
                if child.parent is not node:
                    raise IndexCorruptionError("child's parent pointer wrong")
                if i > 0 and child.count and int(child.keys[0]) < int(node.keys[i]):
                    raise IndexCorruptionError("separator too large")
                walk(child, depth + 1)

        walk(self.root, 1)
        if entries != self._entries:
            raise IndexCorruptionError(
                f"entry count mismatch: walk={entries} counter={self._entries}"
            )

        # 3. Leaf chain matches tree order; page residency is contiguous.
        chain: list[CfNode] = []
        node = self.first_leaf
        while node is not None:
            chain.append(node)
            node = node.next_leaf
        if leaves and [id(n) for n in chain] != [id(n) for n in leaves]:
            raise IndexCorruptionError("leaf chain disagrees with tree order")
        seen_pids: set[int] = set()
        previous_pid = -1
        for leaf in chain:
            if leaf.pid != previous_pid:
                if leaf.pid in seen_pids:
                    raise IndexCorruptionError("leaf page nodes are not contiguous siblings")
                seen_pids.add(leaf.pid)
                previous_pid = leaf.pid

        # 4. Back pointers and jump-pointer array.
        for pid in self.leaf_page_ids():
            page = self.store.page(pid)
            first = self._first_leaf_of_page(page)
            if first is not None and first.parent is not None:
                if page.back_pointer is not first.parent:
                    raise IndexCorruptionError(f"leaf page {pid} back pointer wrong")
        if self.jump_pointers.to_list() != self.leaf_page_ids():
            raise IndexCorruptionError("external jump-pointer array out of sync")

        # 5. Leaf-parent sibling chain covers all leaf parents in order.
        if self.height >= 2:
            parents_in_order: list[CfNode] = []
            seen_parent = None
            for leaf in chain:
                if leaf.parent is not seen_parent:
                    seen_parent = leaf.parent
                    parents_in_order.append(leaf.parent)
            node = parents_in_order[0]
            chained: list[CfNode] = []
            while node is not None:
                chained.append(node)
                node = node.next_parent
            if [id(n) for n in chained] != [id(n) for n in parents_in_order]:
                raise IndexCorruptionError("leaf-parent sibling chain broken")
