"""Optimal node-width selection (paper Section 3.1.1 and Table 2).

All three cache-sensitive schemes size their cache-granularity units with
the same optimization goal **G**: *maximize the number of entry slots in a
leaf page while keeping the analytic search cost within ``tolerance`` (10%)
of the best achievable*.  The analytic cost of searching an ``L``-level tree
whose non-leaf nodes span ``w`` cache lines and leaf nodes span ``x`` lines,
with every node prefetched on visit, is::

    cost = (L - 1) * (T1 + (w - 1) * Tnext)  +  T1 + (x - 1) * Tnext

where T1 is the full miss latency and Tnext the additional pipelined-miss
latency.  As in the paper, the enumeration is cheap (at most 32x32
combinations) and is done once at index-creation time.

Byte-layout constants are chosen to match the paper's reported fan-outs
exactly (Table 2): a 64-byte page header, a 4-byte in-page node header for
disk-first in-page nodes, and a 6-byte node header for cache-first nodes
(whose non-leaf entries carry 6-byte page-id+offset pointers; Section 4.3.1's
"fan-out of a nonleaf node is 57" for 576-byte nodes pins the header size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "search_cost",
    "DiskFirstWidths",
    "CacheFirstWidths",
    "MicroIndexWidths",
    "optimize_disk_first",
    "optimize_cache_first",
    "optimize_micro_index",
    "optimal_pbtree_width",
    "PAGE_HEADER_BYTES",
    "INPAGE_NODE_HEADER_BYTES",
    "CACHE_FIRST_NODE_HEADER_BYTES",
]

PAGE_HEADER_BYTES = 64
INPAGE_NODE_HEADER_BYTES = 4
CACHE_FIRST_NODE_HEADER_BYTES = 6


def search_cost(levels: int, nonleaf_lines: int, leaf_lines: int, t1: int, tnext: int) -> float:
    """Analytic cost of one root-to-leaf search with per-node prefetch."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    nonleaf = t1 + (nonleaf_lines - 1) * tnext
    leaf = t1 + (leaf_lines - 1) * tnext
    return (levels - 1) * nonleaf + leaf


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# -- disk-first ------------------------------------------------------------------


@dataclass(frozen=True)
class DiskFirstWidths:
    """Selected in-page tree shape for a disk-first fpB+-Tree."""

    nonleaf_bytes: int
    leaf_bytes: int
    levels: int
    leaf_nodes: int  # in-page leaf nodes per page
    nonleaf_capacity: int  # entries per in-page non-leaf node
    leaf_capacity: int  # entries per in-page leaf node
    page_fanout: int  # total entry slots per page
    cost: float
    cost_ratio: float  # cost / best achievable cost


def _inpage_tree_leaves(usable: int, levels: int, nonleaf_bytes: int, leaf_bytes: int, fanout: int) -> int:
    """Max leaf nodes for an L-level in-page tree that fits in ``usable`` bytes.

    The tree has ``levels - 1`` non-leaf levels above the leaves; the top
    level is a single (possibly fan-out-restricted) root — Figure 7(a)'s
    trick for fitting overflowing trees.
    """
    if levels == 1:
        return 1 if leaf_bytes <= usable else 0
    best = 0
    upper_bound = min(usable // leaf_bytes, fanout ** (levels - 1))
    lo, hi = 1, upper_bound
    while lo <= hi:
        mid = (lo + hi) // 2
        # Non-leaf node counts bottom-up: leaf parents, then up to the root.
        space = mid * leaf_bytes
        nodes = mid
        for __ in range(levels - 1):
            nodes = _ceil_div(nodes, fanout)
            space += nodes * nonleaf_bytes
        feasible = nodes == 1 and space <= usable
        if feasible:
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def optimize_disk_first(
    page_size: int,
    key_size: int = 4,
    line_size: int = 64,
    t1: int = 150,
    tnext: int = 10,
    max_lines: int = 32,
    tolerance: float = 0.10,
    offset_size: int = 2,
    ptr_size: int = 4,
) -> DiskFirstWidths:
    """Pick (non-leaf width, leaf width, levels) for disk-first in-page trees."""
    usable = page_size - PAGE_HEADER_BYTES
    candidates: list[DiskFirstWidths] = []
    fallbacks: list[DiskFirstWidths] = []
    for w in range(1, max_lines + 1):
        nonleaf_capacity = (w * line_size - INPAGE_NODE_HEADER_BYTES) // (key_size + offset_size)
        if nonleaf_capacity < 2:
            continue
        for x in range(1, max_lines + 1):
            leaf_capacity = (x * line_size - INPAGE_NODE_HEADER_BYTES) // (key_size + ptr_size)
            if leaf_capacity < 1:
                continue
            # Per the paper, each (w, x) pair contributes one candidate: the
            # level count L that utilizes the most page space (maximum
            # fan-out), with ties broken toward the shallower (cheaper) tree.
            # Degenerate single-node "trees" (L=1) waste almost the whole
            # page and are not reasonable candidates unless nothing deeper
            # fits.
            best = None
            levels = 2
            while True:
                leaves = _inpage_tree_leaves(usable, levels, w * line_size, x * line_size, nonleaf_capacity)
                if leaves <= 0:
                    break
                if best is None or leaves * leaf_capacity > best[1]:
                    best = (levels, leaves * leaf_capacity, leaves)
                levels += 1
            pool = candidates
            if best is None:
                # Degenerate single-node layout: kept only as a last resort
                # (e.g. pages too small for any two-level in-page tree).
                leaves = _inpage_tree_leaves(usable, 1, w * line_size, x * line_size, nonleaf_capacity)
                if leaves <= 0:
                    continue
                best = (1, leaves * leaf_capacity, leaves)
                pool = fallbacks
            levels, fanout, leaves = best
            pool.append(
                DiskFirstWidths(
                    nonleaf_bytes=w * line_size,
                    leaf_bytes=x * line_size,
                    levels=levels,
                    leaf_nodes=leaves,
                    nonleaf_capacity=nonleaf_capacity,
                    leaf_capacity=leaf_capacity,
                    page_fanout=fanout,
                    cost=search_cost(levels, w, x, t1, tnext),
                    cost_ratio=0.0,
                )
            )
    return _select(candidates if candidates else fallbacks, tolerance)


def _select(candidates, tolerance):
    if not candidates:
        raise ValueError("no feasible node widths for this page size")
    best_cost = min(c.cost for c in candidates)
    eligible = [c for c in candidates if c.cost <= best_cost * (1 + tolerance)]
    winner = max(eligible, key=lambda c: (c.page_fanout, -c.cost))
    ratio = winner.cost / best_cost
    return type(winner)(**{**winner.__dict__, "cost_ratio": ratio})


# -- cache-first ------------------------------------------------------------------


@dataclass(frozen=True)
class CacheFirstWidths:
    """Selected node size for a cache-first fpB+-Tree."""

    node_bytes: int
    nonleaf_capacity: int
    leaf_capacity: int
    nodes_per_page: int
    page_fanout: int  # entry slots in a full leaf page
    levels: int  # tree levels assumed for the cost model
    cost: float
    cost_ratio: float


def optimize_cache_first(
    page_size: int,
    key_size: int = 4,
    num_keys: int = 10_000_000,
    line_size: int = 64,
    t1: int = 150,
    tnext: int = 10,
    max_lines: int = 32,
    tolerance: float = 0.10,
    child_ptr_size: int = 6,  # page id + in-page offset
    tid_size: int = 4,
) -> CacheFirstWidths:
    """Pick the uniform node size for cache-first fpB+-Trees.

    The tree's depth — and hence the cost — depends on how many keys it
    holds; ``num_keys`` defaults to the paper's 10M-key experiments.
    """
    candidates: list[CacheFirstWidths] = []
    for w in range(1, max_lines + 1):
        node_bytes = w * line_size
        if node_bytes > page_size - PAGE_HEADER_BYTES:
            break
        nonleaf_capacity = (node_bytes - CACHE_FIRST_NODE_HEADER_BYTES) // (key_size + child_ptr_size)
        leaf_capacity = (node_bytes - CACHE_FIRST_NODE_HEADER_BYTES) // (key_size + tid_size)
        if nonleaf_capacity < 2 or leaf_capacity < 1:
            continue
        leaves = max(1, _ceil_div(num_keys, leaf_capacity))
        levels = 1
        nodes = leaves
        while nodes > 1:
            nodes = _ceil_div(nodes, nonleaf_capacity)
            levels += 1
        nodes_per_page = (page_size - PAGE_HEADER_BYTES) // node_bytes
        if nodes_per_page < 2:
            continue  # placement needs several nodes per page
        candidates.append(
            CacheFirstWidths(
                node_bytes=node_bytes,
                nonleaf_capacity=nonleaf_capacity,
                leaf_capacity=leaf_capacity,
                nodes_per_page=nodes_per_page,
                page_fanout=nodes_per_page * leaf_capacity,
                levels=levels,
                cost=levels * (t1 + (w - 1) * tnext),
                cost_ratio=0.0,
            )
        )
    return _select(candidates, tolerance)


# -- micro-indexing -----------------------------------------------------------------


@dataclass(frozen=True)
class MicroIndexWidths:
    """Selected sub-array size for micro-indexing pages."""

    subarray_bytes: int
    subarray_keys: int
    capacity: int  # entries per page
    num_subarrays: int
    micro_bytes: int  # line-aligned size of the micro-index region
    page_fanout: int
    cost: float
    cost_ratio: float


def micro_page_capacity(
    page_size: int, subarray_bytes: int, key_size: int = 4, tid_size: int = 4, line_size: int = 64
) -> MicroIndexWidths:
    """Compute the entry capacity of a micro-indexed page for one sub-array size.

    Layout: header | micro-index (line-aligned) | key array (line-aligned)
    | pointer array.  Returned with cost fields zeroed.
    """
    keys_per_subarray = subarray_bytes // key_size
    if keys_per_subarray < 1:
        raise ValueError("sub-array smaller than one key")
    capacity = (page_size - PAGE_HEADER_BYTES) // (key_size + tid_size)
    while capacity > 0:
        num_subarrays = _ceil_div(capacity, keys_per_subarray)
        micro_bytes = _align(num_subarrays * key_size, line_size)
        key_bytes = _align(capacity * key_size, line_size)
        total = PAGE_HEADER_BYTES + micro_bytes + key_bytes + capacity * tid_size
        if total <= page_size:
            return MicroIndexWidths(
                subarray_bytes=subarray_bytes,
                subarray_keys=keys_per_subarray,
                capacity=capacity,
                num_subarrays=num_subarrays,
                micro_bytes=micro_bytes,
                page_fanout=capacity,
                cost=0.0,
                cost_ratio=0.0,
            )
        capacity -= 1
    raise ValueError(f"page size {page_size} cannot hold a micro-indexed page")


def _align(value: int, alignment: int) -> int:
    return -(-value // alignment) * alignment


def optimize_micro_index(
    page_size: int,
    key_size: int = 4,
    num_keys: int = 10_000_000,
    line_size: int = 64,
    t1: int = 150,
    tnext: int = 10,
    max_lines: int = 32,
    tolerance: float = 0.10,
    tid_size: int = 4,
) -> MicroIndexWidths:
    """Pick the sub-array size for micro-indexing under the same goal G."""
    candidates: list[MicroIndexWidths] = []
    for s in range(1, max_lines + 1):
        subarray_bytes = s * line_size
        try:
            shape = micro_page_capacity(page_size, subarray_bytes, key_size, tid_size, line_size)
        except ValueError:
            continue
        if shape.num_subarrays < 1:
            continue
        # Per-page search: fetch the (prefetched) micro-index, then the
        # chosen key sub-array and its pointer sub-array together.
        micro_lines = shape.micro_bytes // line_size
        ptr_lines = max(1, _ceil_div(shape.subarray_keys * tid_size, line_size))
        per_page = (t1 + (micro_lines - 1) * tnext) + (t1 + (s + ptr_lines - 1) * tnext)
        levels = 1
        nodes = max(1, _ceil_div(num_keys, shape.capacity))
        while nodes > 1:
            nodes = _ceil_div(nodes, shape.capacity)
            levels += 1
        candidates.append(
            MicroIndexWidths(
                **{**shape.__dict__, "cost": levels * per_page, "cost_ratio": 0.0}
            )
        )
    return _select(candidates, tolerance)


# -- prefetching B+-Tree (Chen et al. 2001) --------------------------------------------


def optimal_pbtree_width(
    key_size: int = 4,
    num_keys: int = 10_000_000,
    line_size: int = 64,
    t1: int = 150,
    tnext: int = 10,
    max_lines: int = 32,
    node_header: int = 8,
    ptr_size: int = 4,
) -> int:
    """Node width (in cache lines) minimizing pB+-Tree search cost.

    With the paper's parameters this selects 8 lines (512-byte nodes), the
    width used in the prefetching-B+-Tree paper the in-page trees are
    modeled after.
    """
    best_width, best_cost = 1, math.inf
    for w in range(1, max_lines + 1):
        capacity = (w * line_size - node_header) // (key_size + ptr_size)
        if capacity < 2:
            continue
        levels = 1
        nodes = max(1, _ceil_div(num_keys, capacity))
        while nodes > 1:
            nodes = _ceil_div(nodes, capacity)
            levels += 1
        cost = levels * (t1 + (w - 1) * tnext)
        if cost < best_cost:
            best_width, best_cost = w, cost
    return best_width
