"""In-page node machinery for disk-first fpB+-Trees (paper Section 3.1).

A disk-first fpB+-Tree page is carved into cache-line-granularity slots
holding small, cache-optimized nodes:

* **in-page non-leaf nodes** route within the page using 2-byte line-offset
  pointers (packing more separators per cache line than full pointers would);
* **in-page leaf nodes** hold the page's actual entries — child page ids if
  the page is an interior page of the overall tree, tuple ids if it is a
  leaf page.

Nodes are aligned on cache-line boundaries; a per-page :class:`LineAllocator`
tracks which lines are in use.  Top-level nodes are placed at a line offset
derived from the page id so that the roots of different pages do not map to
the same cache sets (paper Section 4.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..btree.keys import INPAGE_OFFSET_SIZE, INVALID_PAGE_ID, KeySpec, PAGE_ID_SIZE
from .optimizer import DiskFirstWidths, INPAGE_NODE_HEADER_BYTES, optimize_disk_first

__all__ = ["LineAllocator", "InPageNode", "FpPage", "DiskFirstLayout", "NONLEAF", "LEAF"]

NONLEAF = 0
LEAF = 1


class LineAllocator:
    """Allocates contiguous cache-line slots within one page."""

    def __init__(self, total_lines: int, reserved_lines: int = 1) -> None:
        if reserved_lines >= total_lines:
            raise ValueError("no allocatable lines")
        self.total_lines = total_lines
        self.reserved_lines = reserved_lines
        self._used = bytearray(total_lines)
        for line in range(reserved_lines):
            self._used[line] = 1

    @property
    def free_lines(self) -> int:
        return self.total_lines - sum(self._used)

    def is_used(self, line: int) -> bool:
        return bool(self._used[line])

    def alloc(self, width: int, hint: int = 0) -> Optional[int]:
        """Find ``width`` contiguous free lines, searching from ``hint``.

        Returns the starting line, or None if no run is available.
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        start = max(self.reserved_lines, hint)
        order = list(range(start, self.total_lines - width + 1)) + list(
            range(self.reserved_lines, min(start, self.total_lines - width + 1))
        )
        for candidate in order:
            if not any(self._used[candidate : candidate + width]):
                for line in range(candidate, candidate + width):
                    self._used[line] = 1
                return candidate
        return None

    def free(self, line: int, width: int) -> None:
        if line < self.reserved_lines or line + width > self.total_lines:
            raise ValueError(f"freeing lines [{line}, {line + width}) out of range")
        for i in range(line, line + width):
            if not self._used[i]:
                raise ValueError(f"line {i} already free")
            self._used[i] = 0

    def clear(self) -> None:
        """Free everything except the reserved header lines."""
        for line in range(self.reserved_lines, self.total_lines):
            self._used[line] = 0


class InPageNode:
    """One cache-optimized node inside a page."""

    __slots__ = ("kind", "count", "keys", "ptrs", "line", "width", "capacity")

    def __init__(self, kind: int, capacity: int, key_dtype: np.dtype, line: int, width: int) -> None:
        self.kind = kind
        self.count = 0
        self.keys = np.zeros(capacity, dtype=key_dtype)
        # Offsets (non-leaf, conceptually 2 bytes) or page/tuple ids (leaf).
        self.ptrs = np.zeros(capacity, dtype=np.uint32)
        self.line = line
        self.width = width
        self.capacity = capacity


class FpPage:
    """A disk-first fpB+-Tree page: an allocator plus its in-page nodes."""

    __slots__ = ("level", "total", "root_line", "nodes", "alloc", "next_page", "prev_page")

    def __init__(self, level: int, total_lines: int) -> None:
        self.level = level  # 0 = leaf page of the overall tree
        self.total = 0  # entries stored in this page
        self.root_line = -1
        self.nodes: dict[int, InPageNode] = {}
        self.alloc = LineAllocator(total_lines)
        self.next_page = INVALID_PAGE_ID
        self.prev_page = INVALID_PAGE_ID

    def node_at(self, line: int) -> InPageNode:
        return self.nodes[line]

    @property
    def root(self) -> InPageNode:
        return self.nodes[self.root_line]

    def leaf_nodes_in_order(self) -> list[InPageNode]:
        """In-page leaf nodes in key order (via tree traversal)."""
        if self.root_line < 0:
            return []
        out: list[InPageNode] = []

        def visit(line: int) -> None:
            node = self.nodes[line]
            if node.kind == LEAF:
                out.append(node)
            else:
                for i in range(node.count):
                    visit(int(node.ptrs[i]))

        visit(self.root_line)
        return out


class DiskFirstLayout:
    """Geometry and simulated-address arithmetic for disk-first pages."""

    def __init__(
        self,
        page_size: int,
        keyspec: KeySpec,
        line_size: int = 64,
        widths: Optional[DiskFirstWidths] = None,
        t1: int = 150,
        tnext: int = 10,
    ) -> None:
        self.page_size = page_size
        self.keyspec = keyspec
        self.line_size = line_size
        if widths is None:
            widths = optimize_disk_first(
                page_size, key_size=keyspec.size, line_size=line_size, t1=t1, tnext=tnext
            )
        self.widths = widths
        self.total_lines = page_size // line_size
        self.nonleaf_width = widths.nonleaf_bytes // line_size
        self.leaf_width = widths.leaf_bytes // line_size
        self.nonleaf_capacity = widths.nonleaf_capacity
        self.leaf_capacity = widths.leaf_capacity
        self.page_fanout = widths.page_fanout
        self.max_leaf_nodes = widths.leaf_nodes
        # Root-placement stagger: vary the top node's position across pages
        # so page roots do not all conflict in the cache (Section 4.1).
        self._root_stagger = max(1, (self.total_lines - 1) // 8)

    # -- node construction --------------------------------------------------

    def new_node(self, page: FpPage, kind: int, hint: int = 0) -> Optional[InPageNode]:
        """Allocate a node of the right width inside ``page``; None if full."""
        width = self.leaf_width if kind == LEAF else self.nonleaf_width
        capacity = self.leaf_capacity if kind == LEAF else self.nonleaf_capacity
        line = page.alloc.alloc(width, hint)
        if line is None:
            return None
        node = InPageNode(kind, capacity, self.keyspec.dtype, line, width)
        page.nodes[line] = node
        return node

    def root_hint(self, page_id: int) -> int:
        """Preferred starting line for a page's top-level node."""
        return 1 + (page_id % 8) * self._root_stagger

    def free_node(self, page: FpPage, node: InPageNode) -> None:
        page.alloc.free(node.line, node.width)
        del page.nodes[node.line]

    def lines_needed(self, kind: int) -> int:
        return self.leaf_width if kind == LEAF else self.nonleaf_width

    # -- simulated addresses ----------------------------------------------------

    def node_address(self, page_base: int, node: InPageNode) -> int:
        return page_base + node.line * self.line_size

    def node_bytes(self, node: InPageNode) -> int:
        return node.width * self.line_size

    def key_address(self, page_base: int, node: InPageNode, slot: int) -> int:
        return self.node_address(page_base, node) + INPAGE_NODE_HEADER_BYTES + slot * self.keyspec.size

    def ptr_address(self, page_base: int, node: InPageNode, slot: int) -> int:
        ptr_size = PAGE_ID_SIZE if node.kind == LEAF else INPAGE_OFFSET_SIZE
        return (
            self.node_address(page_base, node)
            + INPAGE_NODE_HEADER_BYTES
            + node.capacity * self.keyspec.size
            + slot * ptr_size
        )

    def ptr_size(self, node: InPageNode) -> int:
        return PAGE_ID_SIZE if node.kind == LEAF else INPAGE_OFFSET_SIZE
