"""The paper's core contribution: fractal prefetching B+-Trees."""

from .cache_first import CacheFirstFpTree, CfNode, CfPage
from .disk_first import DiskFirstFpTree
from .inpage import DiskFirstLayout, FpPage, InPageNode, LineAllocator
from .jump_pointer import ExternalJumpPointerArray
from .optimizer import (
    CacheFirstWidths,
    DiskFirstWidths,
    MicroIndexWidths,
    optimal_pbtree_width,
    optimize_cache_first,
    optimize_disk_first,
    optimize_micro_index,
    search_cost,
)

__all__ = [
    "CacheFirstFpTree",
    "CfNode",
    "CfPage",
    "DiskFirstFpTree",
    "DiskFirstLayout",
    "FpPage",
    "InPageNode",
    "LineAllocator",
    "ExternalJumpPointerArray",
    "CacheFirstWidths",
    "DiskFirstWidths",
    "MicroIndexWidths",
    "optimal_pbtree_width",
    "optimize_cache_first",
    "optimize_disk_first",
    "optimize_micro_index",
    "search_cost",
]
