"""Linearizability checking for concurrent lookup/scan/insert histories.

A :class:`HistoryRecorder` logs *invocation* and *response* events on the
DES clock as the serving layer executes operations; the resulting
:class:`History` is a set of intervals ``[invoked_at, responded_at]`` per
operation.  :func:`check_linearizable` then searches for a **linearization**:
a total order of the completed operations that (a) respects the real-time
partial order — if op *a* responded before op *b* was invoked, *a* must
come first — and (b) is a legal sequential execution of a key-multiset map
model.  If one exists the history is linearizable (Herlihy & Wing 1990).

The checker is a Wing–Gong style depth-first search with two prunings that
make it practical for the histories the serving tests generate:

* **Memoization on the linearized set** (Lowe's partial-order reduction):
  the sequential model's state is a pure function of *which* inserts have
  been applied, so two search paths that linearized the same set of ops
  are equivalent — the second is cut off.
* **Greedy absorption of pure operations**: lookups and scans do not change
  the model state, so if an eligible completed lookup/scan's result matches
  the current state it can be linearized immediately without branching.
  (Placing a pure op as early as legal only relaxes later real-time
  constraints, so this never loses a linearization.)

Pending operations — invoked but never responded, e.g. killed by a crash —
are handled per the classical completion rule: a pending *insert* may or
may not have taken effect, so the search may optionally linearize it at any
legal point (its result is unconstrained); pending *reads* are dropped.

The sequential model matches the serving workload: a multiset of integer
keys, ``insert`` adds a key (duplicates allowed), ``lookup`` returns
whether the key is present, ``scan`` returns the number of entries in an
inclusive key range.  Scans recorded with ``result=None`` (truncated by a
brownout, so partial by design) are treated as unconstrained.

Histories serialize to JSON (:meth:`History.write`) so a failing interleaving
found by hypothesis or CI can be archived and re-checked as an artifact.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "CheckResult",
    "History",
    "HistoryRecorder",
    "Op",
    "check_linearizable",
]

#: Operation kinds the model understands.
KINDS = ("lookup", "scan", "insert")


@dataclass
class Op:
    """One operation's interval in a concurrent history.

    ``responded_at is None`` means the operation is *pending*: it was
    invoked but the history ended (crash, timeout) before a response.
    ``result`` is kind-specific: lookup -> bool (key present), scan -> int
    (entries in range) or None (truncated/unconstrained), insert -> ignored
    (the acknowledgement itself is the effect).
    """

    op_id: int
    session: str
    kind: str
    args: tuple
    invoked_at: float
    responded_at: Optional[float] = None
    result: Any = None

    @property
    def pending(self) -> bool:
        return self.responded_at is None

    def to_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "session": self.session,
            "kind": self.kind,
            "args": list(self.args),
            "invoked_at": self.invoked_at,
            "responded_at": self.responded_at,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Op":
        return cls(
            op_id=int(data["op_id"]),
            session=str(data["session"]),
            kind=str(data["kind"]),
            args=tuple(data["args"]),
            invoked_at=float(data["invoked_at"]),
            responded_at=(
                None if data["responded_at"] is None else float(data["responded_at"])
            ),
            result=data["result"],
        )


@dataclass
class History:
    """A recorded concurrent history plus the initial model contents."""

    ops: list[Op] = field(default_factory=list)
    initial_keys: list[int] = field(default_factory=list)

    @property
    def completed(self) -> list[Op]:
        return [op for op in self.ops if not op.pending]

    @property
    def pending(self) -> list[Op]:
        return [op for op in self.ops if op.pending]

    def to_json(self) -> str:
        return json.dumps(
            {
                "initial_keys": list(self.initial_keys),
                "ops": [op.to_dict() for op in self.ops],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "History":
        data = json.loads(text)
        return cls(
            ops=[Op.from_dict(item) for item in data["ops"]],
            initial_keys=[int(k) for k in data["initial_keys"]],
        )

    def write(self, path: str | Path) -> Path:
        """Archive the history as a replayable JSON artifact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, path: str | Path) -> "History":
        return cls.from_json(Path(path).read_text())


class HistoryRecorder:
    """Logs invocation/response events against a simulation clock.

    ``clock`` is any zero-argument callable returning the current time —
    typically ``lambda: env.now`` — re-evaluated at each event, so the
    recorder survives substrate rebuilds as long as the callable tracks the
    live environment.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self._ops: list[Op] = []
        self.initial_keys: list[int] = []

    def invoke(self, session: str, kind: str, args: Iterable) -> int:
        """Record an operation's invocation; returns its op id."""
        if kind not in KINDS:
            raise ValueError(f"unknown operation kind {kind!r}")
        op_id = len(self._ops)
        self._ops.append(
            Op(
                op_id=op_id,
                session=session,
                kind=kind,
                args=tuple(int(a) for a in args),
                invoked_at=float(self.clock()),
            )
        )
        return op_id

    def respond(self, op_id: int, result: Any) -> None:
        """Record an operation's response (acknowledgement instant)."""
        op = self._ops[op_id]
        if not op.pending:
            raise ValueError(f"op {op_id} already responded")
        op.responded_at = float(self.clock())
        op.result = result

    def history(self) -> History:
        """Snapshot the events recorded so far."""
        return History(
            ops=[
                Op(
                    op.op_id, op.session, op.kind, op.args,
                    op.invoked_at, op.responded_at, op.result,
                )
                for op in self._ops
            ],
            initial_keys=list(self.initial_keys),
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a linearizability check."""

    ok: bool
    linearization: Optional[list[int]]  # op ids in linearized order
    states_explored: int
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


class _Model:
    """Sequential key-multiset map with cheap apply/undo.

    The initial contents are a sorted array (bisected for range counts);
    inserted keys go into a Counter plus a parallel sorted-insertion list
    kept small by typical history sizes.
    """

    def __init__(self, initial_keys: Sequence[int]) -> None:
        self.base = sorted(int(k) for k in initial_keys)
        self.extra: Counter[int] = Counter()

    def apply_insert(self, key: int) -> None:
        self.extra[key] += 1

    def undo_insert(self, key: int) -> None:
        self.extra[key] -= 1
        if not self.extra[key]:
            del self.extra[key]

    def contains(self, key: int) -> bool:
        if self.extra.get(key):
            return True
        slot = bisect_left(self.base, key)
        return slot < len(self.base) and self.base[slot] == key

    def range_count(self, lo: int, hi: int) -> int:
        if hi < lo:
            return 0
        count = bisect_right(self.base, hi) - bisect_left(self.base, lo)
        for key, n in self.extra.items():
            if lo <= key <= hi:
                count += n
        return count

    def read_matches(self, op: Op) -> bool:
        """Does a pure op's recorded result agree with the current state?"""
        if op.kind == "lookup":
            return bool(op.result) == self.contains(op.args[0])
        if op.kind == "scan":
            if op.result is None:  # truncated: partial by design
                return True
            return int(op.result) == self.range_count(op.args[0], op.args[1])
        raise ValueError(f"{op.kind!r} is not a pure operation")


def check_linearizable(
    history: History,
    initial_keys: Optional[Sequence[int]] = None,
    max_states: int = 2_000_000,
) -> CheckResult:
    """Search for a linearization of ``history`` against the map model.

    Returns a :class:`CheckResult`; ``result.linearization`` lists op ids
    in a witness order when one exists.  ``max_states`` bounds the search
    (distinct linearized-sets explored) — exceeding it returns ``ok=False``
    with reason ``"state budget exhausted"``, which the callers treat as a
    hard failure so a pathological history cannot silently pass.
    """
    if initial_keys is None:
        initial_keys = history.initial_keys
    completed = [op for op in history.ops if not op.pending]
    # Pending reads have no effect and no acknowledged result: drop them.
    # Pending inserts may have taken effect (the crash could have hit after
    # the mutation): keep them as optional branches.
    optional = [op for op in history.pending if op.kind == "insert"]
    ops = completed + optional
    if not completed:
        return CheckResult(True, [], 0)

    index_of = {op.op_id: i for i, op in enumerate(ops)}
    n = len(ops)
    required_mask = 0
    for op in completed:
        required_mask |= 1 << index_of[op.op_id]
    all_required = required_mask

    model = _Model(initial_keys)
    seen: set[int] = set()
    order: list[int] = []  # op ids, the witness under construction
    states = 0

    # Sort for deterministic candidate iteration (and so earlier-invoked
    # ops are tried first, which tends to find witnesses quickly).
    ops_sorted = sorted(ops, key=lambda op: (op.invoked_at, op.op_id))

    def candidates(done_mask: int) -> list[Op]:
        """Ops linearizable next: not done, invoked before every undone
        completed op's response (real-time order)."""
        horizon = min(
            (
                op.responded_at
                for op in completed
                if not done_mask >> index_of[op.op_id] & 1
            ),
            default=float("inf"),
        )
        return [
            op
            for op in ops_sorted
            if not done_mask >> index_of[op.op_id] & 1 and op.invoked_at <= horizon
        ]

    class _BudgetExhausted(Exception):
        pass

    def search(done_mask: int) -> bool:
        nonlocal states
        if done_mask & all_required == all_required:
            return True
        if done_mask in seen:
            return False
        seen.add(done_mask)
        states += 1
        if states > max_states:
            raise _BudgetExhausted
        # Greedy absorption: linearize every eligible pure op whose result
        # matches right now.  Pure ops do not change state, and placing
        # them at the earliest legal point only relaxes the real-time
        # constraint on everything after them, so this is lossless.
        absorbed = 0
        progress = True
        while progress:
            progress = False
            for op in candidates(done_mask):
                if op.kind == "insert":
                    continue
                if model.read_matches(op):
                    done_mask |= 1 << index_of[op.op_id]
                    order.append(op.op_id)
                    absorbed += 1
                    progress = True
        if done_mask & all_required == all_required:
            return True
        for op in candidates(done_mask):
            if op.kind != "insert":
                continue  # a pure op that didn't match now never will here
            bit = 1 << index_of[op.op_id]
            model.apply_insert(op.args[0])
            order.append(op.op_id)
            if search(done_mask | bit):
                return True
            order.pop()
            model.undo_insert(op.args[0])
        # Backtrack the absorbed pure ops along with this branch.
        for __ in range(absorbed):
            order.pop()
        return False

    try:
        ok = search(0)
    except _BudgetExhausted:
        return CheckResult(False, None, states, reason="state budget exhausted")
    except RecursionError:
        return CheckResult(False, None, states, reason="recursion limit hit")
    if ok:
        return CheckResult(True, list(order), states)
    return CheckResult(
        False,
        None,
        states,
        reason="no linearization exists for the completed operations",
    )
