"""Correctness oracles for concurrent executions.

:mod:`repro.verify.linearizability` records invocation/response histories
of concurrent serve-layer operations on the DES clock and checks them
against a sequential map model with a Wing–Gong style search.
"""

from .linearizability import (
    CheckResult,
    History,
    HistoryRecorder,
    Op,
    check_linearizable,
)

__all__ = [
    "CheckResult",
    "History",
    "HistoryRecorder",
    "Op",
    "check_linearizable",
]
