"""Rendering a scenario matrix's results: JSON payload, CSV, markdown.

All three renderings are pure functions of the (deterministic) results,
so the files they produce are byte-identical across runs and ``--jobs``
values — which is exactly what the determinism gate diffs.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..bench.results import FigureResult
from .spec import ScenarioSpec

__all__ = ["matrix_payload", "matrix_to_csv", "matrix_to_markdown"]


def matrix_payload(
    specs: Sequence[ScenarioSpec], results: Sequence[FigureResult]
) -> dict:
    """One JSON-ready dict: every spec echoed next to its result rows."""
    return {
        "scenarios": [
            {
                "spec": spec.to_dict(),
                "description": result.description,
                "columns": list(result.columns),
                "rows": result.rows,
                "notes": result.notes,
            }
            for spec, result in zip(specs, results)
        ]
    }


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    text = str(value)
    if any(ch in text for ch in (",", '"', "\n")):
        return '"' + text.replace('"', '""') + '"'
    return text


def matrix_to_csv(results: Sequence[FigureResult]) -> str:
    """One flat CSV over every scenario's rows.

    Scenarios with different runners have different columns; the CSV's
    header is the union (in first-appearance order) prefixed with the
    ``scenario`` name, and absent columns render empty.
    """
    columns: list[str] = []
    for result in results:
        for col in result.columns:
            if col not in columns:
                columns.append(col)
    lines = [",".join(["scenario"] + columns)]
    for result in results:
        for row in result.rows:
            lines.append(
                ",".join(
                    [_csv_cell(result.name)]
                    + [_csv_cell(row.get(col)) for col in columns]
                )
            )
    return "\n".join(lines) + "\n"


def matrix_to_markdown(
    specs: Sequence[ScenarioSpec], results: Sequence[FigureResult]
) -> str:
    """A committed-artifact-grade markdown report: one table per scenario."""
    lines = ["# Scenario matrix results", ""]
    for spec, result in zip(specs, results):
        lines.append(f"## `{spec.name}` ({spec.runner} runner)")
        lines.append("")
        lines.append(result.description)
        lines.append("")
        axes = [
            f"{spec.num_rows:,} rows",
            f"{spec.num_disks} disks",
            f"mix {spec.lookup:g}/{spec.scan:g}/{spec.insert:g}",
        ]
        if spec.distribution != "uniform":
            axes.append(f"zipf theta {spec.zipf_theta:g}")
        if spec.burstiness != 1.0:
            axes.append(f"burstiness {spec.burstiness:g}")
        if spec.shard_count > 1:
            axes.append(f"{spec.shard_count} shards ({spec.placement})")
        if spec.admission != "fifo":
            axes.append(f"{spec.admission} admission")
        if spec.concurrency != "none":
            axes.append(f"{spec.concurrency} concurrency control")
        if spec.chaos:
            axes.append(f"chaos `{spec.chaos}`")
        axes.append(f"seed {spec.seed}")
        lines.append("Axes: " + ", ".join(axes) + ".")
        lines.append("")
        cols = list(result.columns)
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join(" --- " for _ in cols) + "|")
        for row in result.rows:
            lines.append(
                "| " + " | ".join(_md_cell(row.get(c)) for c in cols) + " |"
            )
        lines.append("")
        for note in result.notes:
            lines.append(f"- {note}")
        if result.notes:
            lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def _md_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value).replace("|", "\\|")
