"""Declarative scenario specs with a cross-field validator.

A :class:`ScenarioSpec` names one point in the evaluation grid — workload
mix, key skew, burstiness, chaos schedule (including crash points), scale
factor, shard count, admission mode, concurrency mode, seed — and the
*runner* that executes it (one of the existing ``repro.bench`` sweeps:
``serve``, ``chaos``, ``shard``, ``concurrency``).  Specs load from TOML
or plain dicts and round-trip back (:meth:`to_toml`).

The point of the spec layer is :meth:`validate`: every cross-field
consistency rule is checked *before* any simulation starts, in the spirit
of cross-field config model-checking, so a matrix of hour-long cells
cannot die forty minutes in on a combination that could never work
(``crash split=3`` without a WAL, batch admission on a scan-only mix, a
16-shard fleet on 12 disks, paper-scale keys under a smoke deadline).
Each violation carries an actionable message: what is inconsistent, why,
and which field to change.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Optional, Sequence

__all__ = ["ScenarioSpec", "ScenarioError", "PAPER_SCALE_ROWS", "MIN_PAPER_DEADLINE_MS"]

RUNNERS = ("serve", "chaos", "shard", "concurrency")
ADMISSION_MODES = ("fifo", "batch")
CONCURRENCY_MODES = ("none", "page", "coarse", "broken")
DISTRIBUTIONS = ("uniform", "zipf")
PLACEMENTS = ("equal_width", "optimized")

#: Row counts at or above this are "paper scale" (the paper's I/O runs use
#: 10M-key trees); smoke-sized deadlines are rejected there.
PAPER_SCALE_ROWS = 1_000_000

#: A cold paper-scale lookup descends a 4-level tree through an un-warmed
#: buffer pool — several mirrored disk reads, ~20ms of simulated time.
#: Deadlines under this at paper scale would time out every query.
MIN_PAPER_DEADLINE_MS = 20.0


class ScenarioError(ValueError):
    """A scenario spec failed validation; ``problems`` lists every rule hit."""

    def __init__(self, problems: Sequence[str]) -> None:
        self.problems = list(problems)
        super().__init__("\n".join(self.problems))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: every axis of the evaluation grid."""

    # -- identity ----------------------------------------------------------
    name: str
    runner: str  # "serve" | "chaos" | "shard" | "concurrency"

    # -- workload mix and shape -------------------------------------------
    lookup: float = 0.70
    scan: float = 0.20
    insert: float = 0.10
    scan_span: int = 64
    distribution: str = "uniform"  # "uniform" | "zipf"
    zipf_theta: float = 1.05
    burstiness: float = 1.0  # mean arrival-burst size (open-loop runners)

    # -- chaos schedule (clause grammar, incl. crash points) ---------------
    chaos: str = ""
    chaos_seed: int = 0
    wal: bool = False  # write-ahead logging on the serving substrate

    # -- scale factor ------------------------------------------------------
    num_rows: int = 8_000
    num_disks: int = 8
    page_size: int = 4096

    # -- serving shape -----------------------------------------------------
    shard_count: int = 1
    placement: str = "equal_width"  # shard boundary placement
    admission: str = "fifo"  # "fifo" | "batch"
    batch_max: int = 32
    batch_window_ms: float = 8.0
    concurrency: str = "none"  # "none" | "page" | "coarse"

    # -- load --------------------------------------------------------------
    offered_loads: tuple = (800,)  # open-loop runners (serve, shard)
    duration_s: float = 0.5
    sessions: int = 6  # closed-loop runners (chaos, concurrency)
    ops_per_session: int = 25
    think_time_ms: float = 1.5
    deadline_ms: Optional[float] = None

    # -- admission / substrate sizing -------------------------------------
    max_concurrency: int = 16
    queue_depth: int = 48
    pool_frames: int = 64

    seed: int = 11

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, defaults: Optional[dict] = None) -> "ScenarioSpec":
        """Build a spec from a plain dict, rejecting unknown keys.

        ``defaults`` (e.g. a matrix file's ``[defaults]`` table) is
        overlaid first; the scenario's own keys win.
        """
        merged = {**(defaults or {}), **data}
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(merged) - known)
        if unknown:
            label = merged.get("name", "<unnamed>")
            raise ScenarioError(
                [
                    f"scenario {label!r}: unknown field(s) {', '.join(unknown)}; "
                    f"valid fields: {', '.join(sorted(known))}"
                ]
            )
        for key in ("name", "runner"):
            if key not in merged:
                raise ScenarioError(
                    [f"scenario {merged.get('name', '<unnamed>')!r}: missing required field {key!r}"]
                )
        if "offered_loads" in merged and isinstance(merged["offered_loads"], (list, tuple)):
            merged["offered_loads"] = tuple(merged["offered_loads"])
        elif "offered_loads" in merged and isinstance(merged["offered_loads"], int):
            merged["offered_loads"] = (merged["offered_loads"],)
        return cls(**merged)

    def to_dict(self) -> dict:
        """Every field, in declaration order (``None`` deadlines included)."""
        return dataclasses.asdict(self)

    # -- TOML --------------------------------------------------------------

    def to_toml(self) -> str:
        """Render as one ``[[scenario]]`` TOML table.

        Emits every field except ``None`` ones (TOML has no null), in
        declaration order, so ``tomllib.loads`` of the output round-trips
        through :meth:`from_dict` to an equal spec.
        """
        lines = ["[[scenario]]"]
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            lines.append(f"{f.name} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    # -- validation --------------------------------------------------------

    def problems(self) -> list[str]:
        """Every validation failure, each as one actionable message."""
        p: list[str] = []
        tag = f"scenario {self.name!r}"

        # Single-field sanity first: enum fields and positivity.  A spec
        # that fails these still gets its cross-field rules checked where
        # they make sense, so one validate() call reports everything.
        if self.runner not in RUNNERS:
            p.append(
                f"{tag}: unknown runner {self.runner!r}; pick one of {', '.join(RUNNERS)}"
            )
        if self.admission not in ADMISSION_MODES:
            p.append(
                f"{tag}: unknown admission mode {self.admission!r}; "
                f"pick one of {', '.join(ADMISSION_MODES)}"
            )
        if self.concurrency not in CONCURRENCY_MODES:
            p.append(
                f"{tag}: unknown concurrency mode {self.concurrency!r}; "
                f"pick one of {', '.join(m for m in CONCURRENCY_MODES if m != 'broken')}"
            )
        if self.distribution not in DISTRIBUTIONS:
            p.append(
                f"{tag}: unknown distribution {self.distribution!r}; "
                f"pick one of {', '.join(DISTRIBUTIONS)}"
            )
        if self.placement not in PLACEMENTS:
            p.append(
                f"{tag}: unknown placement {self.placement!r}; "
                f"pick one of {', '.join(PLACEMENTS)}"
            )
        for fname in ("num_rows", "num_disks", "page_size", "shard_count",
                      "scan_span", "sessions", "ops_per_session", "batch_max",
                      "max_concurrency", "queue_depth", "pool_frames"):
            if getattr(self, fname) < 1:
                p.append(f"{tag}: {fname} must be >= 1, got {getattr(self, fname)}")
        for fname in ("duration_s", "batch_window_ms", "zipf_theta"):
            if getattr(self, fname) <= 0:
                p.append(f"{tag}: {fname} must be positive, got {getattr(self, fname)}")
        if self.think_time_ms < 0:
            p.append(f"{tag}: think_time_ms must be >= 0, got {self.think_time_ms}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            p.append(f"{tag}: deadline_ms must be positive, got {self.deadline_ms}")
        if min(self.lookup, self.scan, self.insert) < 0 or (
            self.lookup + self.scan + self.insert
        ) <= 0:
            p.append(
                f"{tag}: op mix {self.lookup:g}/{self.scan:g}/{self.insert:g} "
                "(lookup/scan/insert) needs non-negative weights with a positive sum"
            )
        if not self.offered_loads or any(r <= 0 for r in self.offered_loads):
            p.append(
                f"{tag}: offered_loads must be a non-empty list of positive "
                f"ops/s rates, got {list(self.offered_loads)}"
            )
        if self.burstiness < 1.0:
            p.append(
                f"{tag}: burstiness is the mean arrival-burst size and must be "
                f">= 1.0 (1.0 = plain Poisson), got {self.burstiness:g}"
            )

        closed_loop = self.runner in ("chaos", "concurrency")

        # -- chaos schedule and the WAL ------------------------------------
        schedule = None
        if self.chaos:
            try:
                from ..faults.schedule import ChaosSchedule

                schedule = ChaosSchedule.parse(self.chaos, seed=self.chaos_seed)
            except ValueError as exc:
                p.append(f"{tag}: bad chaos clause: {exc}")
        has_crash = schedule is not None and schedule.has_crash_points
        if has_crash and not self.wal:
            p.append(
                f"{tag}: chaos schedule {self.chaos!r} has a crash/torn point but "
                "wal = false — crashing without a write-ahead log loses every "
                "acknowledged write and recovery has nothing to replay; set "
                "wal = true or drop the crash clause"
            )
        if self.wal and self.runner in ("serve", "shard"):
            p.append(
                f"{tag}: wal = true but the {self.runner!r} runner has no WAL "
                "wiring — durability scenarios run through the 'chaos' runner; "
                "set runner = 'chaos' or wal = false"
            )
        if not self.wal and self.runner in ("chaos", "concurrency"):
            p.append(
                f"{tag}: the {self.runner!r} runner serves every insert through "
                "a write-ahead log (its substrate always enables one); say so "
                "with wal = true"
            )
        if self.chaos and self.runner != "chaos":
            p.append(
                f"{tag}: a chaos schedule ({self.chaos!r}) only runs under "
                "runner = 'chaos' — the serve/shard runners have no fault-plan "
                "wiring and the concurrency runner supplies its own clean "
                "schedule; move the clause to a chaos scenario"
            )
        if schedule is not None:
            for disk in schedule.referenced_disks:
                if disk >= self.num_disks:
                    p.append(
                        f"{tag}: chaos clause targets disk {disk} but the array "
                        f"has num_disks = {self.num_disks} (disks 0..{self.num_disks - 1}); "
                        "fix the disk index or grow the array"
                    )
            for e in schedule.events:
                if e.kind == "kill" and self.num_disks < 2:
                    p.append(
                        f"{tag}: 'kill disk={e.disk}' with num_disks = 1 is "
                        "unsurvivable — mirrored recovery needs at least 2 disks"
                    )
        if self.runner == "chaos" and self.deadline_ms is None:
            p.append(
                f"{tag}: the chaos runner's clients need a per-query deadline to "
                "abandon storm-stuck operations (and the brownout SLO monitor "
                "keys off it); set deadline_ms"
            )
        if self.deadline_ms is not None and self.runner in ("shard", "concurrency"):
            p.append(
                f"{tag}: deadline_ms = {self.deadline_ms:g} is not wired into "
                f"the {self.runner!r} runner (the shard fleet bounds fragments "
                "internally; the concurrency runner measures latching, not "
                "timeouts) — it would be silently ignored; drop it or use the "
                "'serve' or 'chaos' runner"
            )

        # -- admission mode -------------------------------------------------
        if self.admission == "batch" and self.lookup <= 0:
            p.append(
                f"{tag}: admission = 'batch' groups point lookups into "
                f"level-wise batches, but the mix is lookup = {self.lookup:g} "
                f"(scan/insert only) — no batch would ever form; raise lookup "
                "above 0 or use admission = 'fifo'"
            )
        if self.admission == "batch" and closed_loop:
            p.append(
                f"{tag}: admission = 'batch' is a serve/shard feature — the "
                f"closed-loop {self.runner!r} runner admits each client's op "
                "individually; set runner = 'serve' (or 'shard') or admission = 'fifo'"
            )

        # -- sharding -------------------------------------------------------
        if self.shard_count > self.num_disks:
            p.append(
                f"{tag}: shard_count = {self.shard_count} exceeds num_disks = "
                f"{self.num_disks} — every shard needs at least one dedicated "
                "spindle; lower shard_count or raise num_disks"
            )
        if self.shard_count > 1 and self.runner != "shard":
            p.append(
                f"{tag}: shard_count = {self.shard_count} needs runner = 'shard' "
                f"(the {self.runner!r} runner serves one unsharded substrate)"
            )
        if (
            self.runner == "shard"
            and self.shard_count == 1
            and self.placement == "optimized"
        ):
            p.append(
                f"{tag}: shard_count = 1 with placement = 'optimized' has no "
                "boundaries to optimize and would emit zero rows; use "
                "placement = 'equal_width' or shard_count >= 2"
            )

        # -- paper scale vs deadlines --------------------------------------
        if (
            self.num_rows >= PAPER_SCALE_ROWS
            and self.deadline_ms is not None
            and self.deadline_ms < MIN_PAPER_DEADLINE_MS
        ):
            p.append(
                f"{tag}: deadline_ms = {self.deadline_ms:g} at paper scale "
                f"(num_rows = {self.num_rows}) — a cold lookup there descends a "
                "4-level tree through an un-warmed pool, >= ~20 ms of simulated "
                f"disk time, so every query would time out; raise deadline_ms to "
                f">= {MIN_PAPER_DEADLINE_MS:g} or drop it"
            )

        # -- concurrency control --------------------------------------------
        if self.concurrency == "broken":
            p.append(
                f"{tag}: concurrency = 'broken' is the negative control that "
                "skips leaf re-validation and demonstrably loses updates — it "
                "exists for the linearizability checker's tests, not for "
                "scenario matrices; use 'page' or 'coarse'"
            )
        if self.runner == "concurrency" and self.concurrency == "none":
            p.append(
                f"{tag}: the concurrency runner compares latching regimes; pick "
                "concurrency = 'page' or 'coarse' (or use the 'serve' runner "
                "for uncontended serving)"
            )
        if self.concurrency not in ("none", "broken") and self.runner == "shard":
            p.append(
                f"{tag}: concurrency = {self.concurrency!r} is not wired into "
                "the shard fleet (per-shard servers run without page latches); "
                "use the 'serve', 'chaos' or 'concurrency' runner"
            )

        # -- scan span vs universe -----------------------------------------
        if self.scan_span > self.num_rows:
            p.append(
                f"{tag}: scan_span = {self.scan_span} exceeds the "
                f"{self.num_rows}-key universe — a scan cannot cover more "
                "stored entries than exist; shrink scan_span or grow num_rows"
            )

        # -- skew / burstiness plumbed only where supported -----------------
        if self.distribution == "zipf" and closed_loop:
            p.append(
                f"{tag}: distribution = 'zipf' is not plumbed into the "
                f"closed-loop {self.runner!r} runner's per-session op streams; "
                "use the 'serve' or 'shard' runner for skewed-key scenarios"
            )
        if self.burstiness > 1.0 and closed_loop:
            p.append(
                f"{tag}: burstiness = {self.burstiness:g} shapes open-loop "
                f"arrivals, but the {self.runner!r} runner is closed-loop "
                "(sessions self-throttle on completions); use the 'serve' or "
                "'shard' runner for bursty-arrival scenarios"
            )
        return p

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ScenarioError` listing every violated rule."""
        problems = self.problems()
        if problems:
            raise ScenarioError(problems)
        return self


def _toml_value(value: Any) -> str:
    """Render one Python value as a TOML literal (round-trip exact)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr round-trips through float() exactly; TOML floats need a
        # dot or exponent, which repr of a non-integral float provides —
        # integral floats print as e.g. "8.0", also fine.
        return repr(value)
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TypeError(f"cannot render {type(value).__name__} as TOML: {value!r}")


def _toml_string(text: str) -> str:
    out = ['"']
    for ch in text:
        if ch in ('"', "\\"):
            out.append("\\" + ch)
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ord(ch) < 0x20 or ord(ch) == 0x7F:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)
