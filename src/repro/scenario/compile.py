"""Lowering: a validated :class:`ScenarioSpec` onto the ``repro.bench`` runners.

Each spec compiles to one of the four existing sweep functions —
``serve_sweep``, ``chaos_sweep``, ``shard_sweep``, ``concurrency_sweep`` —
with the spec's axes translated to the runner's keyword arguments (ms to
us, mix weights to ``*_weight`` names, ``zipf_theta`` folded into the
``"zipf:THETA"`` distribution string, fleet disks divided per shard).

A spec also compiles to *cells*: independently runnable slices of the
lowered sweep (one per offered load for open-loop runners, one per chaos
mode for the chaos runner) so a matrix of scenarios fans out over the
orchestrator's process pool exactly like the figure sweeps do, with the
same determinism contract — merge in cell order, ``--jobs N``
byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

from ..bench.chaos import chaos_sweep
from ..bench.concurrency import concurrency_sweep
from ..bench.orchestrator import map_cells
from ..bench.results import FigureResult
from ..bench.serving import serve_sweep
from ..bench.sharding import shard_sweep
from .spec import ScenarioSpec

__all__ = ["lower", "plan_scenario_cells", "run_scenario", "run_scenario_cell"]

_RUNNER_FUNCS = {
    "serve": serve_sweep,
    "chaos": chaos_sweep,
    "shard": shard_sweep,
    "concurrency": concurrency_sweep,
}


def _distribution_arg(spec: ScenarioSpec):
    """The spec's skew as the runners' distribution argument."""
    if spec.distribution == "uniform":
        return None
    # zipf_theta travels in the string so it crosses process boundaries
    # (and the runners' signatures) without a new parameter per knob.
    return f"zipf:{spec.zipf_theta:g}"


def lower(spec: ScenarioSpec) -> tuple[str, dict]:
    """(runner function name, keyword arguments) for a validated spec."""
    if spec.runner == "serve":
        kwargs = dict(
            num_rows=spec.num_rows,
            num_disks=spec.num_disks,
            page_size=spec.page_size,
            offered_loads=tuple(spec.offered_loads),
            duration_s=spec.duration_s,
            max_concurrency=spec.max_concurrency,
            queue_depth=spec.queue_depth,
            pool_frames=spec.pool_frames,
            deadline_us=None if spec.deadline_ms is None else spec.deadline_ms * 1e3,
            lookup_weight=spec.lookup,
            scan_weight=spec.scan,
            insert_weight=spec.insert,
            scan_span=spec.scan_span,
            distribution=_distribution_arg(spec),
            burstiness=spec.burstiness,
            admission_mode=spec.admission,
            batch_max=spec.batch_max,
            batch_window_us=spec.batch_window_ms * 1e3,
            concurrency=spec.concurrency,
            seed=spec.seed,
        )
    elif spec.runner == "chaos":
        kwargs = dict(
            modes=("baseline", "resilient"),
            schedule_text=spec.chaos,
            schedule_seed=spec.chaos_seed,
            num_rows=spec.num_rows,
            num_disks=spec.num_disks,
            page_size=spec.page_size,
            sessions=spec.sessions,
            ops_per_session=spec.ops_per_session,
            think_time_us=spec.think_time_ms * 1e3,
            deadline_us=spec.deadline_ms * 1e3,
            max_concurrency=spec.max_concurrency,
            queue_depth=spec.queue_depth,
            pool_frames=spec.pool_frames,
            lookup_weight=spec.lookup,
            scan_weight=spec.scan,
            insert_weight=spec.insert,
            scan_span=spec.scan_span,
            seed=spec.seed,
        )
    elif spec.runner == "shard":
        kwargs = dict(
            num_rows=spec.num_rows,
            # The spec's num_disks is the *fleet* total; shard_sweep's is
            # per shard.  The validator guarantees shard_count <= num_disks.
            num_disks=spec.num_disks // spec.shard_count,
            page_size=spec.page_size,
            shard_counts=(spec.shard_count,),
            placements=(spec.placement,),
            offered_loads=tuple(spec.offered_loads),
            duration_s=spec.duration_s,
            max_concurrency=spec.max_concurrency,
            queue_depth=spec.queue_depth,
            pool_frames=spec.pool_frames,
            lookup_weight=spec.lookup,
            scan_weight=spec.scan,
            insert_weight=spec.insert,
            scan_span=spec.scan_span,
            distribution=_distribution_arg(spec) or "uniform",
            burstiness=spec.burstiness,
            admission_mode=spec.admission,
            batch_max=spec.batch_max,
            batch_window_us=spec.batch_window_ms * 1e3,
            seed=spec.seed,
        )
    elif spec.runner == "concurrency":
        kwargs = dict(
            modes=(spec.concurrency,),
            seeds=(spec.seed,),
            num_rows=spec.num_rows,
            num_disks=spec.num_disks,
            page_size=spec.page_size,
            sessions=spec.sessions,
            ops_per_session=spec.ops_per_session,
            think_time_us=spec.think_time_ms * 1e3,
            lookup_weight=spec.lookup,
            scan_weight=spec.scan,
            insert_weight=spec.insert,
            scan_span=spec.scan_span,
            max_concurrency=spec.max_concurrency,
            queue_depth=spec.queue_depth,
            pool_frames=spec.pool_frames,
        )
    else:  # pragma: no cover - validate() rejects unknown runners first
        raise ValueError(f"unknown runner {spec.runner!r}")
    return spec.runner, kwargs


def plan_scenario_cells(spec: ScenarioSpec) -> list[tuple[str, dict]]:
    """Split one lowered spec into independently runnable cells.

    Open-loop runners split per offered load; the chaos runner splits per
    mode (baseline vs resilient substrates share nothing); the
    concurrency runner is a single cell.  Cell order matches the lowered
    sweep's own loop order, so merging cells in order reproduces the
    unsplit row order byte-for-byte.
    """
    runner, kwargs = lower(spec)
    if runner in ("serve", "shard"):
        return [
            (runner, {**kwargs, "offered_loads": (rate,)})
            for rate in kwargs["offered_loads"]
        ]
    if runner == "chaos":
        return [(runner, {**kwargs, "modes": (mode,)}) for mode in kwargs["modes"]]
    return [(runner, kwargs)]


def run_scenario_cell(task: tuple[str, dict]) -> dict:
    """Worker entry point: one cell in, one picklable partial result out."""
    runner, kwargs = task
    result = _RUNNER_FUNCS[runner](**kwargs)
    return {
        "description": result.description,
        "columns": list(result.columns),
        "rows": result.rows,
        "notes": result.notes,
    }


def run_scenario(spec: ScenarioSpec, jobs: int = 1) -> FigureResult:
    """Validate, lower, and run one scenario; cells fan over ``jobs``."""
    spec.validate()
    tasks = plan_scenario_cells(spec)
    partials = map_cells(run_scenario_cell, tasks, jobs)
    first = partials[0]
    merged = FigureResult(spec.name, first["description"], first["columns"])
    for partial in partials:
        merged.rows.extend(partial["rows"])
        for note in partial["notes"]:
            if note not in merged.notes:
                merged.notes.append(note)
    return merged
