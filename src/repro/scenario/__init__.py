"""Declarative scenario specs, validated before any simulation runs.

The serving stack grew one axis per PR — workload mix and skew, chaos
schedules with crash points, admission batching, page-level concurrency
control, key-range sharding — and every evaluation so far wired those
axes together by hand in a bench function.  This package replaces the
hand-wiring with data: a :class:`ScenarioSpec` names one point in the
grid, a matrix file holds many, a cross-field validator rejects the
combinations that cannot work *before* the discrete-event clock starts,
and a compiler lowers the survivors onto the existing runners behind the
orchestrator's deterministic process pool.

    specs = load_matrix("benchmarks/scenarios/smoke.toml")
    results = run_matrix(specs, jobs=4)        # byte-identical for any jobs
    print(matrix_to_markdown(specs, results))

CLI: ``python -m repro.bench scenario --matrix FILE --jobs N``.
"""

from .compile import lower, plan_scenario_cells, run_scenario
from .matrix import load_matrix, run_matrix, validate_matrix
from .render import matrix_payload, matrix_to_csv, matrix_to_markdown
from .spec import ScenarioError, ScenarioSpec

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "lower",
    "plan_scenario_cells",
    "run_scenario",
    "load_matrix",
    "run_matrix",
    "validate_matrix",
    "matrix_payload",
    "matrix_to_csv",
    "matrix_to_markdown",
]
