"""Scenario matrices: many specs, one validation pass, one process pool.

A matrix file is TOML with an optional ``[defaults]`` table and one
``[[scenario]]`` table per spec::

    [defaults]
    num_rows = 8000
    seed = 11

    [[scenario]]
    name = "serve-smoke"
    runner = "serve"
    offered_loads = [400, 1600]

:func:`load_matrix` overlays defaults, rejects duplicate names and
unknown keys, and **validates every spec before any simulation starts**
— one bad cell fails the whole matrix in milliseconds, not after the
good cells burned their wall-clock.  :func:`run_matrix` then flattens
every scenario's cells into one task list and fans it over the
orchestrator's :func:`~repro.bench.orchestrator.map_cells` pool, so
cells from *different* scenarios run concurrently and the merge (by
scenario, then cell index) is byte-identical for every ``--jobs`` value.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import Sequence, Union

from ..bench.orchestrator import map_cells
from ..bench.results import FigureResult
from .compile import plan_scenario_cells, run_scenario_cell
from .spec import ScenarioError, ScenarioSpec

__all__ = ["load_matrix", "run_matrix", "validate_matrix"]


def load_matrix(source: Union[str, Path]) -> list[ScenarioSpec]:
    """Parse a matrix file into specs (defaults overlaid, names unique)."""
    path = Path(source)
    try:
        data = tomllib.loads(path.read_text())
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError([f"matrix {path}: invalid TOML: {exc}"]) from None
    defaults = data.get("defaults", {})
    entries = data.get("scenario", [])
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(
            [f"matrix {path}: no [[scenario]] tables found; a matrix needs at least one"]
        )
    unknown_top = sorted(set(data) - {"defaults", "scenario"})
    if unknown_top:
        raise ScenarioError(
            [
                f"matrix {path}: unknown top-level table(s) {', '.join(unknown_top)}; "
                "a matrix holds one optional [defaults] table and [[scenario]] entries"
            ]
        )
    specs = [ScenarioSpec.from_dict(entry, defaults=defaults) for entry in entries]
    seen: dict[str, int] = {}
    for index, spec in enumerate(specs):
        if spec.name in seen:
            raise ScenarioError(
                [
                    f"matrix {path}: duplicate scenario name {spec.name!r} "
                    f"(entries {seen[spec.name] + 1} and {index + 1}); names key "
                    "the result tables and artifact files, so they must be unique"
                ]
            )
        seen[spec.name] = index
    return specs


def validate_matrix(specs: Sequence[ScenarioSpec]) -> None:
    """Validate every spec, aggregating all problems into one error."""
    problems: list[str] = []
    for spec in specs:
        problems.extend(spec.problems())
    if problems:
        raise ScenarioError(problems)


def run_matrix(specs: Sequence[ScenarioSpec], jobs: int = 1) -> list[FigureResult]:
    """Run a validated matrix; every cell of every scenario shares the pool.

    Results come back in spec order regardless of ``jobs``; each spec's
    rows are merged in its own cell order.
    """
    validate_matrix(specs)
    tasks = []
    spans = []  # (spec, first task index, task count)
    for spec in specs:
        cells = plan_scenario_cells(spec)
        spans.append((spec, len(tasks), len(cells)))
        tasks.extend(cells)
    partials = map_cells(run_scenario_cell, tasks, jobs)
    results = []
    for spec, start, count in spans:
        mine = partials[start : start + count]
        merged = FigureResult(spec.name, mine[0]["description"], mine[0]["columns"])
        for partial in mine:
            merged.rows.extend(partial["rows"])
            for note in partial["notes"]:
                if note not in merged.notes:
                    merged.notes.append(note)
        results.append(merged)
    return results
