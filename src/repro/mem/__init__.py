"""Memory-hierarchy simulator: caches, latencies, prefetch, cycle accounting."""

from .cache import Cache
from .config import DEFAULT_CPU, DEFAULT_MEMORY, CpuCostModel, MemoryConfig
from .hierarchy import MemorySystem
from .layout import AddressSpace, align_up
from .stats import MemoryStats

__all__ = [
    "Cache",
    "CpuCostModel",
    "MemoryConfig",
    "MemorySystem",
    "MemoryStats",
    "AddressSpace",
    "align_up",
    "DEFAULT_CPU",
    "DEFAULT_MEMORY",
]
