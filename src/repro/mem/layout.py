"""Simulated virtual-address-space management.

The cache simulator works on addresses, so every simulated structure (buffer
pool frames, in-memory tree nodes, jump-pointer array chunks, ...) must live
somewhere in a shared address space.  :class:`AddressSpace` is a simple bump
allocator handing out aligned, non-overlapping regions; callers that need
finer-grained reuse (e.g. a node pool) sub-allocate within their region.
"""

from __future__ import annotations

__all__ = ["AddressSpace", "align_up"]


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


class AddressSpace:
    """Bump allocator over a simulated virtual address space."""

    def __init__(self, base: int = 1 << 20) -> None:
        if base < 0:
            raise ValueError("base address must be non-negative")
        self._next = base
        self._regions: list[tuple[str, int, int]] = []

    def alloc(self, nbytes: int, alignment: int = 64, label: str = "") -> int:
        """Reserve ``nbytes`` aligned to ``alignment``; returns the base address."""
        if nbytes <= 0:
            raise ValueError(f"region size must be positive, got {nbytes}")
        base = align_up(self._next, alignment)
        self._next = base + nbytes
        self._regions.append((label, base, nbytes))
        return base

    @property
    def high_water(self) -> int:
        """One past the highest allocated address."""
        return self._next

    def regions(self) -> list[tuple[str, int, int]]:
        """(label, base, size) for every allocated region, in order."""
        return list(self._regions)
