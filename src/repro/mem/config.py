"""Memory-system and CPU cost-model parameters.

The defaults reproduce Table 1 of the paper (a 1 GHz dynamically-scheduled
processor with a Compaq ES40-like memory hierarchy): 64-byte cache lines, a
64 KB 2-way L1 data cache, a 2 MB direct-mapped L2, a 15-cycle L1-to-L2 miss
latency, a 150-cycle memory latency, and a main-memory bandwidth of one
access per 10 cycles.

Two derived quantities appear throughout the paper and this codebase:

* ``T1``    — the full latency of an isolated cache miss (150 cycles), and
* ``Tnext`` — the incremental latency of an additional *pipelined* miss
  (10 cycles, set by the memory-bus bandwidth).

These are not hard-coded into the simulator's behaviour; they emerge from
the bus model.  They *are* used directly by the analytic node-size optimizer
(:mod:`repro.core.optimizer`), mirroring Section 3.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryConfig", "CpuCostModel", "DEFAULT_MEMORY", "DEFAULT_CPU"]


@dataclass(frozen=True)
class MemoryConfig:
    """Cache-hierarchy geometry and latencies (paper Table 1)."""

    line_size: int = 64
    l1_size: int = 64 * 1024
    l1_assoc: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 1  # direct-mapped
    l2_hit_latency: int = 15  # primary-to-secondary miss latency (cycles)
    memory_latency: int = 150  # primary-to-memory miss latency (cycles)
    bus_cycles_per_access: int = 10  # 1 memory access per 10 cycles
    miss_handlers: int = 32  # max outstanding data misses (MSHRs)
    #: Hardware next-line prefetching on demand misses.  The paper's
    #: simulated machine has none (0); setting a positive depth fetches that
    #: many sequential lines after every demand miss — an ablation showing
    #: software prefetching is not subsumed by simple stream prefetchers.
    hardware_prefetch_lines: int = 0

    def __post_init__(self) -> None:
        for name in ("line_size", "l1_size", "l2_size"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if self.l1_size % (self.line_size * self.l1_assoc):
            raise ValueError("L1 size must be divisible by line_size * associativity")
        if self.l2_size % (self.line_size * self.l2_assoc):
            raise ValueError("L2 size must be divisible by line_size * associativity")

    @property
    def t1(self) -> int:
        """Full latency of an isolated cache miss (paper's T1)."""
        return self.memory_latency

    @property
    def tnext(self) -> int:
        """Latency of an additional pipelined miss (paper's Tnext)."""
        return self.bus_cycles_per_access

    def line_of(self, address: int) -> int:
        """Cache-line index containing ``address``."""
        return address // self.line_size

    def lines_touched(self, address: int, nbytes: int) -> range:
        """Range of line indices covered by ``[address, address + nbytes)``."""
        if nbytes <= 0:
            return range(0)
        first = address // self.line_size
        last = (address + nbytes - 1) // self.line_size
        return range(first, last + 1)


@dataclass(frozen=True)
class CpuCostModel:
    """Busy-time (instruction) costs charged by the index implementations.

    The paper's execution-time breakdown has three components: busy time,
    data-cache stalls, and other stalls.  Data-cache stalls come from the
    cache model; busy time and other stalls are charged via these constants.
    The values are calibrated to a ~1 GHz 4-issue core: a binary-search probe
    is a handful of instructions plus a hard-to-predict branch, and buffer
    pool access costs hundreds of instructions (Section 4.1 attributes the
    baseline's extra busy time to "instruction overhead associated with
    buffer pool management").
    """

    compare: int = 4  # one key comparison + loop bookkeeping
    branch_mispredict: int = 7  # penalty charged as "other stalls"
    mispredict_rate: float = 0.5  # binary-search branches are coin flips
    node_visit: int = 10  # per-node setup (load header, compute bounds)
    copy_per_line: int = 8  # move 64B of entries (vectorized loads/stores)
    prefetch_issue: int = 1  # one prefetch instruction
    buffer_pool_access: int = 400  # hash probe + latch + pin in the pool
    function_call: int = 20  # per-operation dispatch overhead

    def probe_cost(self) -> tuple[int, float]:
        """(busy cycles, other-stall cycles) for one binary-search probe."""
        return self.compare, self.mispredict_rate * self.branch_mispredict


DEFAULT_MEMORY = MemoryConfig()
DEFAULT_CPU = CpuCostModel()
