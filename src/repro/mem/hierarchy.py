"""Two-level cache hierarchy with cycle accounting and software prefetch.

:class:`MemorySystem` is the heart of the cache-performance methodology: the
index implementations report every simulated memory reference (demand read,
write, or prefetch) with its byte address and size, and this model advances a
cycle clock, exactly as the paper's trace-driven processor simulator did.

The latency model (all parameters from :class:`repro.mem.config.MemoryConfig`):

* L1 hit — free (folded into the instruction-issue "busy" time).
* L1 miss, L2 hit — ``l2_hit_latency`` stall cycles (15).
* Full miss — the line is fetched over a shared memory bus that accepts one
  access per ``bus_cycles_per_access`` cycles (10) and completes
  ``memory_latency`` cycles (150) after it wins the bus.  A demand miss
  stalls the processor until the line arrives.
* Prefetch — wins the bus the same way but does **not** stall; the line is
  recorded as *in flight* and a later demand access only stalls for the
  remaining time.  Issuing ``w`` back-to-back prefetches therefore makes the
  last line land after ``T1 + (w-1) * Tnext`` cycles — the paper's
  Section 3.1.1 cost formula emerges from the bus model.

Up to ``miss_handlers`` fetches may be outstanding; a prefetch beyond that
stalls until the oldest completes (MSHR pressure), which is what bounds
arbitrarily-deep jump-pointer-array prefetching.

Measurement can be switched off (``enabled = False``) so that untimed phases
(bulkload, tree building) run at full Python speed; the paper likewise
measures only the operation phase after clearing the caches.

Two code paths produce the exact same simulated timeline:

* the **scalar path** (:meth:`read` / :meth:`write` / :meth:`prefetch`) —
  one :meth:`_touch` per line, kept as the readable reference, and
* the **batched path** (:meth:`read_run` / :meth:`write_run` /
  :meth:`prefetch_run` / :meth:`probe_run`) — the same per-line state
  machine flattened into a single loop with locals bound once, which is
  what :class:`repro.btree.trace.Tracer` drives.

The golden-equivalence contract (DESIGN.md §8, ``test_mem_equivalence.py``)
pins the two paths — and the frozen pre-change engine in
:mod:`repro.mem.legacy` — to field-identical :class:`MemoryStats` on a
committed trace fixture.  Any edit here must preserve that.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Iterator

from .cache import Cache
from .config import DEFAULT_CPU, DEFAULT_MEMORY, CpuCostModel, MemoryConfig
from .stats import MemoryStats

__all__ = ["MemorySystem"]

#: Sentinel completion time for "no in-flight fetch" in hot-loop locals.
_NEVER = float("inf")


class MemorySystem:
    """Cycle-accounting model of the processor's view of memory."""

    __slots__ = (
        "config",
        "cpu",
        "l1",
        "l2",
        "stats",
        "now",
        "enabled",
        "_bus_free",
        "_inflight",
        "_inflight_seq",
        "_heap",
        "_pending",
        "_wake",
        "_next_seq",
        "_line_size",
        "_probe_busy",
        "_probe_stall",
        "_l1_dm",
        "_l1_sets",
        "_l1_nsets",
        "_l1_assoc",
        "_l2_dm",
        "_l2_sets",
        "_l2_nsets",
    )

    def __init__(
        self,
        config: MemoryConfig = DEFAULT_MEMORY,
        cpu: CpuCostModel = DEFAULT_CPU,
    ) -> None:
        self.config = config
        self.cpu = cpu
        self.l1 = Cache(config.l1_size, config.line_size, config.l1_assoc)
        self.l2 = Cache(config.l2_size, config.line_size, config.l2_assoc)
        self.stats = MemoryStats()
        self.now: float = 0.0
        self.enabled: bool = True
        self._bus_free: float = 0.0
        self._inflight: dict[int, float] = {}  # line -> completion time
        # Completion-ordered heap over the in-flight fetches with lazy
        # retirement: entries are (completion, seq, line); an entry is stale
        # once its seq no longer matches ``_inflight_seq[line]`` (the line
        # was demanded, cleared, or re-posted since).  The heap makes "has
        # anything landed?" an O(1) peek and the MSHR-victim choice an
        # O(log n) pop, replacing per-reservation scans of ``_inflight``.
        self._inflight_seq: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []
        # New posts go to ``_pending`` (a plain append) and are only pushed
        # into the heap when the reserve slow path actually needs it: a large
        # share of prefetches is popped by a covering demand access first and
        # then never pays heappush/heappop at all.  ``_wake`` is a conservative
        # lower bound on the earliest live completion across heap + pending —
        # posts lower it, retirements leave it low (a too-low bound merely
        # triggers a harmless extra slow-path call) — so the hot loops' MSHR
        # fast check stays one float compare.  Both containers are cleared in
        # place only; hot loops cache bound methods on them.
        self._pending: list[tuple[float, int, int]] = []
        self._wake: float = _NEVER
        self._next_seq: int = 0
        # Hot-path constants, precomputed once: MemoryConfig and CpuCostModel
        # are frozen dataclasses and the Cache objects (and their internal
        # containers, which clear() empties in place) live for the system's
        # lifetime, so these can never go stale.  Each saves attribute hops
        # in loops that run once per simulated access.
        self._line_size = config.line_size
        self._probe_busy, self._probe_stall = cpu.probe_cost()
        self._l1_dm = self.l1._dm_slots
        self._l1_sets = self.l1._sets
        self._l1_nsets = self.l1.num_sets
        self._l1_assoc = self.l1.associativity
        self._l2_dm = self.l2._dm_slots
        self._l2_sets = self.l2._sets
        self._l2_nsets = self.l2.num_sets

    # -- time charging -------------------------------------------------------

    def busy(self, cycles: float) -> None:
        """Charge instruction-execution (busy) time."""
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.busy_cycles += cycles

    def other_stall(self, cycles: float) -> None:
        """Charge non-memory stall time (branch mispredictions etc.)."""
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.other_stall_cycles += cycles

    def probe_penalty(self) -> None:
        """Charge the cost of one binary-search probe (compare + branch)."""
        if not self.enabled:
            return
        compare, mispredict = self.cpu.probe_cost()
        self.busy(compare)
        self.other_stall(mispredict)

    def _dcache_stall(self, cycles: float) -> None:
        if cycles <= 0:
            return
        self.now += cycles
        self.stats.dcache_stall_cycles += cycles

    # -- in-flight fetch bookkeeping -----------------------------------------

    def _post_fetch(self, line: int, completion: float) -> None:
        """Record a non-blocking fetch (prefetch / write-allocate)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        self._inflight[line] = completion
        self._inflight_seq[line] = seq
        self._pending.append((completion, seq, line))
        if completion < self._wake:
            self._wake = completion

    def _pop_inflight(self, line: int) -> float | None:
        """Remove a line from the in-flight set (its heap entry goes stale)."""
        completion = self._inflight.pop(line, None)
        if completion is not None:
            del self._inflight_seq[line]
        return completion

    def _reserve_miss_handler(self) -> None:
        """Stall until an MSHR is free, retiring landed prefetches.

        Landed fetches (completion <= now) retire in the order they were
        posted — the caches' LRU state depends on install order, and the
        scalar engine retired in ``_inflight`` insertion order.  The heap
        only answers "has anything landed?" and "which completes first?";
        stale entries are discarded lazily via the seq check.
        """
        inflight = self._inflight
        heap = self._heap
        pending = self._pending
        if not inflight:
            if heap:
                heap.clear()  # every remaining entry is stale
            if pending:
                pending.clear()
            self._wake = _NEVER
            return
        seqs = self._inflight_seq
        now = self.now
        landed = []
        if pending:
            # Merge deferred posts.  Ones a demand access already covered
            # (their seq no longer matches) are dropped, and ones that have
            # already landed go straight to retirement — in the steady state
            # that is most of them (L2-latency completions land before the
            # next slow-path call), so they never touch the heap at all,
            # which is the point of deferring.
            for entry in pending:
                if seqs.get(entry[2]) == entry[1]:
                    if entry[0] <= now:
                        landed.append((entry[1], entry[2]))
                    else:
                        heappush(heap, entry)
            pending.clear()
        while heap:
            completion, seq, line = heap[0]
            if seqs.get(line) != seq:
                heappop(heap)  # stale: covered or retired since posting
                continue
            if completion > now:
                break
            heappop(heap)
            landed.append((seq, line))
        if landed:
            # Retire in posting (seq) order == ``_inflight`` insertion order:
            # the caches' LRU state depends on install order and the scalar
            # engine retired in dict order.  Inlined _install: a retired line
            # is never L1-resident (a demand covering it would have popped it
            # from the in-flight set first), so a plain evict-and-add
            # suffices; L2 may still hold it, which the unconditional
            # direct-mapped store handles identically.
            landed.sort()
            l1_dm = self._l1_dm
            l1_sets = self._l1_sets
            l1_assoc = self._l1_assoc
            l1_nsets = self._l1_nsets
            l2_dm = self._l2_dm
            l2_nsets = self._l2_nsets
            l2 = self.l2
            for __, line in landed:
                del inflight[line]
                del seqs[line]
                if l1_dm is not None:
                    l1_dm[line % l1_nsets] = line
                else:
                    l1_set = l1_sets[line % l1_nsets]
                    if len(l1_set) >= l1_assoc:
                        for victim in l1_set:
                            break
                        del l1_set[victim]
                    l1_set[line] = None
                if l2_dm is not None:
                    l2_dm[line % l2_nsets] = line
                else:
                    l2.insert(line)
        while len(inflight) >= self.config.miss_handlers:
            completion, seq, line = heappop(heap)
            if seqs.get(line) != seq:
                continue
            del inflight[line]
            del seqs[line]
            self._dcache_stall(completion - self.now)
            self._install(line)
        self._wake = heap[0][0] if heap else _NEVER

    # -- demand accesses -----------------------------------------------------

    def read(self, address: int, nbytes: int = 4) -> None:
        """Simulate a demand load of ``nbytes`` at ``address`` (scalar path)."""
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._touch(line)

    def write(self, address: int, nbytes: int = 4) -> None:
        """Simulate a store (scalar path).

        Stores retire through a store buffer and do not stall the pipeline:
        a write to a non-resident line allocates it via the memory bus (like
        a prefetch) and later *loads* of that line wait for it, but the
        store itself only costs its issue slot.  This matters for page
        splits, which write whole fresh pages: a blocking-store model would
        double their cost.
        """
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self.stats.accesses += 1
            self.busy(1)
            if self.l1.lookup(line):
                self.stats.l1_hits += 1
                continue
            if line in self._inflight:
                continue
            self._reserve_miss_handler()
            if self.l2.contains(line):
                # An L2-resident store allocation is an L2 hit just like the
                # demand path in _touch; it only differs in not stalling.
                self.stats.l2_hits += 1
                self._post_fetch(line, self.now + self.config.l2_hit_latency)
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._post_fetch(line, start + self.config.memory_latency)
            self.stats.store_fetches += 1

    def _touch(self, line: int) -> None:
        self.stats.accesses += 1
        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            return
        self._touch_missed(line)

    def _touch_missed(self, line: int) -> None:
        """Demand-load a line that already missed L1 (access counted).

        The prefetch-covered case — the common miss in fpB+-Tree searches —
        is inlined (this helper sits on ``probe_run``'s miss path); the
        L2-hit / full-fetch tail stays in :meth:`_touch_uncovered`.
        """
        completion = self._inflight.pop(line, None)
        if completion is not None:
            del self._inflight_seq[line]
            stats = self.stats
            stall = completion - self.now
            if stall > 0:
                self.now += stall
                stats.dcache_stall_cycles += stall
            stats.prefetch_covered += 1
            l1_dm = self._l1_dm
            if l1_dm is not None:
                l1_dm[line % self._l1_nsets] = line
            else:
                l1_set = self._l1_sets[line % self._l1_nsets]
                if line in l1_set:
                    del l1_set[line]  # re-insert below moves it to MRU
                elif len(l1_set) >= self._l1_assoc:
                    for victim in l1_set:
                        break
                    del l1_set[victim]
                l1_set[line] = None
            l2_dm = self._l2_dm
            if l2_dm is not None:
                l2_dm[line % self._l2_nsets] = line
            else:
                self.l2.insert(line)
            return
        self._touch_uncovered(line)

    def _touch_uncovered(self, line: int) -> None:
        """The L1-missed, not-in-flight tail: L2 hit or full memory fetch.

        Both cache levels are inlined (counted lookup, absent-line install)
        so the whole tail runs in this one frame; see the batched entry
        points below for the inlining invariants.
        """
        stats = self.stats
        l2 = self.l2
        l2_dm = self._l2_dm
        if l2_dm is not None:
            l2_index = line % self._l2_nsets
            l2_hit = l2_dm[l2_index] == line
        else:
            l2_set = self._l2_sets[line % self._l2_nsets]
            l2_hit = line in l2_set
            if l2_hit:
                del l2_set[line]
                l2_set[line] = None  # move to MRU
        if l2_hit:
            l2.hits += 1
            stats.l2_hits += 1
            stall = self.config.l2_hit_latency
            if stall > 0:
                self.now += stall
                stats.dcache_stall_cycles += stall
        else:
            l2.misses += 1
            # Full miss: win the bus, wait for the line.
            now = self.now
            bus_free = self._bus_free
            start = bus_free if bus_free > now else now
            self._bus_free = start + self.config.bus_cycles_per_access
            completion = start + self.config.memory_latency
            stall = completion - now
            if stall > 0:
                self.now = completion
                stats.dcache_stall_cycles += stall
            stats.memory_fetches += 1
            # Install into L2 (it just missed, so the line is absent).
            if l2_dm is not None:
                l2_dm[l2_index] = line
            else:
                if len(l2_set) >= l2.associativity:
                    for victim in l2_set:
                        break
                    del l2_set[victim]
                l2_set[line] = None
        # Install into L1 (its lookup missed before this was called).
        l1_dm = self._l1_dm
        if l1_dm is not None:
            l1_dm[line % self._l1_nsets] = line
        else:
            l1_set = self._l1_sets[line % self._l1_nsets]
            if len(l1_set) >= self._l1_assoc:
                for victim in l1_set:
                    break
                del l1_set[victim]
            l1_set[line] = None
        if not l2_hit and self.config.hardware_prefetch_lines:
            self._hardware_prefetch(line)

    def _hardware_prefetch(self, line: int) -> None:
        """Optional next-line prefetcher on demand misses (off by default;
        the paper's machine has none)."""
        for ahead in range(1, self.config.hardware_prefetch_lines + 1):
            neighbour = line + ahead
            if self.l1.contains(neighbour) or neighbour in self._inflight:
                continue
            if self.l2.contains(neighbour):
                self._post_fetch(neighbour, self.now + self.config.l2_hit_latency)
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._post_fetch(neighbour, start + self.config.memory_latency)

    def _install(self, line: int) -> None:
        self.l1.insert(line)
        self.l2.insert(line)

    # -- batched entry points ------------------------------------------------
    #
    # One call per *range*, not per line: the per-line state machine of the
    # scalar path, flattened into a single loop with every hot attribute
    # bound to a local once and the per-line Cache/MSHR helper calls inlined
    # (both cache representations — per-set LRU dicts and the direct-mapped
    # slot list).  Cycle-for-cycle identical to the scalar path by
    # construction, and pinned by the golden-equivalence tests; any edit to
    # the scalar state machine must be mirrored here.  Returns the number of
    # lines touched so callers (Tracer.scan / Tracer.move) can charge
    # per-line busy time without recomputing the range.
    #
    # Inlining notes, load-bearing for equivalence:
    # * Cache hit/miss counter deltas are accumulated in locals and flushed
    #   once; only the totals are observable (nothing reads the counters
    #   mid-run).
    # * At install points the line is known to be absent from the cache
    #   being inserted into (its lookup just missed), except the L2 insert
    #   on the prefetch-covered path, where the line may still be resident —
    #   for the direct-mapped L2 an unconditional slot store is identical in
    #   both cases, and a set-associative L2 falls back to Cache.insert.
    # * ``_reserve_miss_handler`` is replaced by an inline fast check: the
    #   slow path runs only when an MSHR is actually needed or the heap top
    #   says a fetch may have landed (a stale top triggers a harmless extra
    #   call that purges it).

    def read_run(self, address: int, nbytes: int = 4) -> int:
        """Demand-load every line in ``[address, address + nbytes)``."""
        if not self.enabled or nbytes <= 0:
            return 0
        line_size = self._line_size
        line = address // line_size
        if address % line_size + nbytes <= line_size:
            # Single-line fast path (the range ends on the same line): key
            # probes and small field reads — the bulk of a search trace —
            # touch one line, and most of those hit L1.  Skip the multi-line
            # loop's local-binding preamble.
            stats = self.stats
            stats.accesses += 1
            l1 = self.l1
            l1_dm = self._l1_dm
            l1_index = line % self._l1_nsets
            if l1_dm is not None:
                if l1_dm[l1_index] == line:
                    l1.hits += 1
                    stats.l1_hits += 1
                    return 1
            else:
                l1_set = self._l1_sets[l1_index]
                if line in l1_set:
                    del l1_set[line]
                    l1_set[line] = None  # move to MRU
                    l1.hits += 1
                    stats.l1_hits += 1
                    return 1
            l1.misses += 1
            # Same inlined prefetch-covered branch as probe_run (see there).
            completion = self._inflight.pop(line, None)
            if completion is None:
                self._touch_uncovered(line)
            else:
                del self._inflight_seq[line]
                stall = completion - self.now
                if stall > 0:
                    self.now += stall
                    stats.dcache_stall_cycles += stall
                stats.prefetch_covered += 1
                if l1_dm is not None:
                    l1_dm[l1_index] = line
                else:
                    # Lookup above just missed, so the line is absent.
                    if len(l1_set) >= self._l1_assoc:
                        for victim in l1_set:
                            break
                        del l1_set[victim]
                    l1_set[line] = None
                l2_dm = self._l2_dm
                if l2_dm is not None:
                    l2_dm[line % self._l2_nsets] = line
                else:
                    self.l2.insert(line)
            return 1
        last = (address + nbytes - 1) // line_size
        nlines = last - line + 1
        config = self.config
        stats = self.stats
        l1 = self.l1
        l2 = self.l2
        l1_dm = self._l1_dm
        l1_sets = self._l1_sets
        l1_nsets = self._l1_nsets
        l1_assoc = self._l1_assoc
        l2_dm = self._l2_dm
        l2_sets = self._l2_sets
        l2_nsets = self._l2_nsets
        l2_insert = l2.insert
        inflight = self._inflight
        seqs = self._inflight_seq
        l2_hit_latency = config.l2_hit_latency
        memory_latency = config.memory_latency
        bus_step = config.bus_cycles_per_access
        hardware_prefetch = config.hardware_prefetch_lines
        now = self.now
        bus_free = self._bus_free
        l1_hits = 0
        l2_hits = 0
        l2_lookups = 0
        covered = 0
        fetches = 0
        stall_cycles = 0.0
        for line in range(line, last + 1):
            # L1 lookup (counted, LRU-refreshing).
            if l1_dm is not None:
                l1_index = line % l1_nsets
                if l1_dm[l1_index] == line:
                    l1_hits += 1
                    continue
            else:
                l1_set = l1_sets[line % l1_nsets]
                if line in l1_set:
                    del l1_set[line]
                    l1_set[line] = None  # move to MRU
                    l1_hits += 1
                    continue
            completion = inflight.pop(line, None)
            if completion is not None:
                # Covered by an in-flight (or landed) prefetch: wait out the
                # remainder, then install in both levels.
                del seqs[line]
                stall = completion - now
                if stall > 0:
                    now += stall
                    stall_cycles += stall
                covered += 1
                if l1_dm is not None:
                    l1_dm[l1_index] = line
                else:
                    if len(l1_set) >= l1_assoc:
                        for victim in l1_set:
                            break
                        del l1_set[victim]
                    l1_set[line] = None
                if l2_dm is not None:
                    l2_dm[line % l2_nsets] = line
                else:
                    l2_insert(line)
                continue
            # L2 lookup (counted, LRU-refreshing).
            l2_lookups += 1
            if l2_dm is not None:
                l2_index = line % l2_nsets
                l2_resident = l2_dm[l2_index] == line
            else:
                l2_set = l2_sets[line % l2_nsets]
                l2_resident = line in l2_set
                if l2_resident:
                    del l2_set[line]
                    l2_set[line] = None  # move to MRU
            if l2_resident:
                l2_hits += 1
                now += l2_hit_latency
                stall_cycles += l2_hit_latency
                if l1_dm is not None:
                    l1_dm[l1_index] = line
                else:
                    if len(l1_set) >= l1_assoc:
                        for victim in l1_set:
                            break
                        del l1_set[victim]
                    l1_set[line] = None
                continue
            # Full miss: win the bus, wait for the line, install in both.
            start = bus_free if bus_free > now else now
            bus_free = start + bus_step
            stall = start + memory_latency - now
            now += stall
            stall_cycles += stall
            fetches += 1
            if l1_dm is not None:
                l1_dm[l1_index] = line
            else:
                if len(l1_set) >= l1_assoc:
                    for victim in l1_set:
                        break
                    del l1_set[victim]
                l1_set[line] = None
            if l2_dm is not None:
                l2_dm[l2_index] = line
            else:
                l2_insert(line)
            if hardware_prefetch:
                self.now = now
                self._bus_free = bus_free
                self._hardware_prefetch(line)
                now = self.now
                bus_free = self._bus_free
        self.now = now
        self._bus_free = bus_free
        stats.accesses += nlines
        stats.l1_hits += l1_hits
        stats.l2_hits += l2_hits
        stats.prefetch_covered += covered
        stats.memory_fetches += fetches
        stats.dcache_stall_cycles += stall_cycles
        l1.hits += l1_hits
        l1.misses += nlines - l1_hits
        l2.hits += l2_hits
        l2.misses += l2_lookups - l2_hits
        return nlines

    def write_run(self, address: int, nbytes: int = 4) -> int:
        """Store to every line in the range (non-blocking allocation)."""
        if not self.enabled or nbytes <= 0:
            return 0
        config = self.config
        line_size = self._line_size
        line = address // line_size
        last = (address + nbytes - 1) // line_size
        nlines = last - line + 1
        stats = self.stats
        l1 = self.l1
        l1_dm = self._l1_dm
        l1_sets = self._l1_sets
        l1_nsets = self._l1_nsets
        l2_dm = self._l2_dm
        l2_sets = self._l2_sets
        l2_nsets = self._l2_nsets
        inflight = self._inflight
        seqs = self._inflight_seq
        pending_append = self._pending.append
        next_seq = self._next_seq
        miss_handlers = config.miss_handlers
        l2_hit_latency = config.l2_hit_latency
        memory_latency = config.memory_latency
        bus_step = config.bus_cycles_per_access
        now = self.now
        bus_free = self._bus_free
        l1_hits = 0
        l2_hits = 0
        store_fetches = 0
        # MSHR fast check tracked in locals — see prefetch_run.
        inflight_len = len(inflight)
        wake = self._wake
        for line in range(line, last + 1):
            now += 1  # store issue slot (busy time)
            # L1 lookup (counted, LRU-refreshing).
            if l1_dm is not None:
                if l1_dm[line % l1_nsets] == line:
                    l1_hits += 1
                    continue
            else:
                l1_set = l1_sets[line % l1_nsets]
                if line in l1_set:
                    del l1_set[line]
                    l1_set[line] = None  # move to MRU
                    l1_hits += 1
                    continue
            if line in inflight:
                continue
            # MSHR fast check; the slow path retires landed fetches and
            # stalls for a free handler.
            if inflight_len >= miss_handlers or wake <= now:
                self.now = now
                self._reserve_miss_handler()
                now = self.now
                inflight_len = len(inflight)
                wake = self._wake
            # L2 residency probe (uncounted, no LRU update — as contains()).
            if l2_dm is not None:
                l2_resident = l2_dm[line % l2_nsets] == line
            else:
                l2_resident = line in l2_sets[line % l2_nsets]
            if l2_resident:
                # An L2-resident store allocation is an L2 hit just like the
                # demand path in _touch; it only differs in not stalling.
                l2_hits += 1
                completion = now + l2_hit_latency
            else:
                start = bus_free if bus_free > now else now
                bus_free = start + bus_step
                completion = start + memory_latency
                store_fetches += 1
            inflight[line] = completion
            seqs[line] = next_seq
            pending_append((completion, next_seq, line))
            next_seq += 1
            inflight_len += 1
            if completion < wake:
                wake = completion
        self.now = now
        self._bus_free = bus_free
        self._next_seq = next_seq
        self._wake = wake
        stats.accesses += nlines
        stats.busy_cycles += nlines
        stats.l1_hits += l1_hits
        stats.l2_hits += l2_hits
        stats.store_fetches += store_fetches
        l1.hits += l1_hits
        l1.misses += nlines - l1_hits
        return nlines

    def prefetch_run(self, address: int, nbytes: int) -> int:
        """Issue non-blocking prefetches for every line in the range."""
        if not self.enabled or nbytes <= 0:
            return 0
        config = self.config
        line_size = self._line_size
        line = address // line_size
        last = (address + nbytes - 1) // line_size
        nlines = last - line + 1
        stats = self.stats
        l1_dm = self._l1_dm
        l1_sets = self._l1_sets
        l1_nsets = self._l1_nsets
        l2_dm = self._l2_dm
        l2_sets = self._l2_sets
        l2_nsets = self._l2_nsets
        inflight = self._inflight
        seqs = self._inflight_seq
        pending_append = self._pending.append
        next_seq = self._next_seq
        miss_handlers = config.miss_handlers
        # prefetch_issue >= 0 always; adding 0.0 matches busy()'s no-op.
        issue = self.cpu.prefetch_issue
        l2_hit_latency = config.l2_hit_latency
        memory_latency = config.memory_latency
        bus_step = config.bus_cycles_per_access
        now = self.now
        bus_free = self._bus_free
        # The MSHR fast check is tracked in locals: posts within this run
        # can only add completions (lowering ``wake``), and the occupancy
        # only changes here or in the reserve slow path — both update the
        # locals in place, so no per-line re-reads are needed.
        inflight_len = len(inflight)
        wake = self._wake
        for line in range(line, last + 1):
            now += issue
            # L1 residency probe (uncounted, no LRU update — as contains()).
            if l1_dm is not None:
                l1_resident = l1_dm[line % l1_nsets] == line
            else:
                l1_resident = line in l1_sets[line % l1_nsets]
            if l1_resident or line in inflight:
                continue
            if inflight_len >= miss_handlers or wake <= now:
                self.now = now
                self._reserve_miss_handler()
                now = self.now
                inflight_len = len(inflight)
                wake = self._wake
            if l2_dm is not None:
                l2_resident = l2_dm[line % l2_nsets] == line
            else:
                l2_resident = line in l2_sets[line % l2_nsets]
            if l2_resident:
                # Satisfied from L2 without using the memory bus.
                completion = now + l2_hit_latency
            else:
                start = bus_free if bus_free > now else now
                bus_free = start + bus_step
                completion = start + memory_latency
            inflight[line] = completion
            seqs[line] = next_seq
            pending_append((completion, next_seq, line))
            next_seq += 1
            inflight_len += 1
            if completion < wake:
                wake = completion
            line += 1
        self.now = now
        self._bus_free = bus_free
        self._next_seq = next_seq
        self._wake = wake
        stats.busy_cycles += issue * nlines
        stats.prefetches_issued += nlines
        return nlines

    def probe_run(self, address: int, nbytes: int = 4) -> int:
        """One binary-search probe: ranged load + compare/branch cost.

        Probes are the single hottest trace op (one per binary-search step),
        and a probe's key load virtually always fits one cache line — so the
        single-line L1 lookup is inlined here as well, skipping even the
        ``read_run`` frame; wider or empty ranges defer to ``read_run``.
        """
        if not self.enabled:
            return 0
        stats = self.stats
        if nbytes > 0:
            line_size = self._line_size
            line = address // line_size
            if address % line_size + nbytes <= line_size:
                nlines = 1
                stats.accesses += 1
                l1 = self.l1
                l1_dm = self._l1_dm
                l1_index = line % self._l1_nsets
                if l1_dm is not None:
                    hit = l1_dm[l1_index] == line
                else:
                    l1_set = self._l1_sets[l1_index]
                    hit = line in l1_set
                    if hit:
                        del l1_set[line]
                        l1_set[line] = None  # move to MRU
                if hit:
                    l1.hits += 1
                    stats.l1_hits += 1
                else:
                    l1.misses += 1
                    # Prefetch-covered is the common miss on this path (the
                    # tree prefetches a node before probing it), so it is
                    # inlined too; the L2-hit/full-fetch tail stays a call.
                    completion = self._inflight.pop(line, None)
                    if completion is None:
                        self._touch_uncovered(line)
                    else:
                        del self._inflight_seq[line]
                        stall = completion - self.now
                        if stall > 0:
                            self.now += stall
                            stats.dcache_stall_cycles += stall
                        stats.prefetch_covered += 1
                        if l1_dm is not None:
                            l1_dm[l1_index] = line
                        else:
                            # Lookup above just missed, so the line is absent.
                            if len(l1_set) >= self._l1_assoc:
                                for victim in l1_set:
                                    break
                                del l1_set[victim]
                            l1_set[line] = None
                        l2_dm = self._l2_dm
                        if l2_dm is not None:
                            l2_dm[line % self._l2_nsets] = line
                        else:
                            self.l2.insert(line)
            else:
                nlines = self.read_run(address, nbytes)
        else:
            nlines = 0
        # Inline probe_penalty(): busy(compare) + other_stall(mispredict),
        # with both costs precomputed at construction (CpuCostModel is
        # frozen).  The clock advances through a local so ``self.now`` is
        # touched once; the two additions stay separate, in the scalar
        # path's order, so the float results are bit-identical.
        now = self.now
        compare = self._probe_busy
        if compare > 0:
            now = now + compare
            stats.busy_cycles += compare
        mispredict = self._probe_stall
        if mispredict > 0:
            now = now + mispredict
            stats.other_stall_cycles += mispredict
        self.now = now
        return nlines

    # -- prefetch (scalar path) ----------------------------------------------

    def prefetch(self, address: int, nbytes: int) -> None:
        """Issue non-blocking prefetches for every line in the range."""
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._prefetch_line(line)

    def _prefetch_line(self, line: int) -> None:
        self.busy(self.cpu.prefetch_issue)
        self.stats.prefetches_issued += 1
        if self.l1.contains(line) or line in self._inflight:
            return
        self._reserve_miss_handler()
        if self.l2.contains(line):
            # Satisfied from L2 without using the memory bus.
            self._post_fetch(line, self.now + self.config.l2_hit_latency)
            return
        start = max(self.now, self._bus_free)
        self._bus_free = start + self.config.bus_cycles_per_access
        self._post_fetch(line, start + self.config.memory_latency)

    # -- control -------------------------------------------------------------

    def clear_caches(self) -> None:
        """Flush both cache levels and any in-flight fetches."""
        self.l1.clear()
        self.l2.clear()
        self._inflight.clear()
        self._inflight_seq.clear()
        self._heap.clear()
        self._pending.clear()
        self._wake = _NEVER
        self._bus_free = self.now

    def reset(self) -> None:
        """Clear caches, zero the clock, statistics, and cache counters."""
        self.clear_caches()
        self.l1.reset_counters()
        self.l2.reset_counters()
        self.now = 0.0
        self._bus_free = 0.0
        self.stats = MemoryStats()

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily disable measurement (for untimed build phases)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    @contextmanager
    def measure(self) -> Iterator[MemoryStats]:
        """Measure a phase; yields a stats object updated on exit."""
        before = self.stats.copy()
        phase = MemoryStats()
        yield phase
        delta = self.stats.minus(before)
        for name in (
            "busy_cycles",
            "dcache_stall_cycles",
            "other_stall_cycles",
            "l1_hits",
            "l2_hits",
            "memory_fetches",
            "store_fetches",
            "prefetches_issued",
            "prefetch_covered",
            "accesses",
        ):
            setattr(phase, name, getattr(delta, name))
