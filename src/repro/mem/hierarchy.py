"""Two-level cache hierarchy with cycle accounting and software prefetch.

:class:`MemorySystem` is the heart of the cache-performance methodology: the
index implementations report every simulated memory reference (demand read,
write, or prefetch) with its byte address and size, and this model advances a
cycle clock, exactly as the paper's trace-driven processor simulator did.

The latency model (all parameters from :class:`repro.mem.config.MemoryConfig`):

* L1 hit — free (folded into the instruction-issue "busy" time).
* L1 miss, L2 hit — ``l2_hit_latency`` stall cycles (15).
* Full miss — the line is fetched over a shared memory bus that accepts one
  access per ``bus_cycles_per_access`` cycles (10) and completes
  ``memory_latency`` cycles (150) after it wins the bus.  A demand miss
  stalls the processor until the line arrives.
* Prefetch — wins the bus the same way but does **not** stall; the line is
  recorded as *in flight* and a later demand access only stalls for the
  remaining time.  Issuing ``w`` back-to-back prefetches therefore makes the
  last line land after ``T1 + (w-1) * Tnext`` cycles — the paper's
  Section 3.1.1 cost formula emerges from the bus model.

Up to ``miss_handlers`` fetches may be outstanding; a prefetch beyond that
stalls until the oldest completes (MSHR pressure), which is what bounds
arbitrarily-deep jump-pointer-array prefetching.

Measurement can be switched off (``enabled = False``) so that untimed phases
(bulkload, tree building) run at full Python speed; the paper likewise
measures only the operation phase after clearing the caches.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .cache import Cache
from .config import DEFAULT_CPU, DEFAULT_MEMORY, CpuCostModel, MemoryConfig
from .stats import MemoryStats

__all__ = ["MemorySystem"]


class MemorySystem:
    """Cycle-accounting model of the processor's view of memory."""

    def __init__(
        self,
        config: MemoryConfig = DEFAULT_MEMORY,
        cpu: CpuCostModel = DEFAULT_CPU,
    ) -> None:
        self.config = config
        self.cpu = cpu
        self.l1 = Cache(config.l1_size, config.line_size, config.l1_assoc)
        self.l2 = Cache(config.l2_size, config.line_size, config.l2_assoc)
        self.stats = MemoryStats()
        self.now: float = 0.0
        self.enabled: bool = True
        self._bus_free: float = 0.0
        self._inflight: dict[int, float] = {}  # line -> completion time

    # -- time charging -------------------------------------------------------

    def busy(self, cycles: float) -> None:
        """Charge instruction-execution (busy) time."""
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.busy_cycles += cycles

    def other_stall(self, cycles: float) -> None:
        """Charge non-memory stall time (branch mispredictions etc.)."""
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.other_stall_cycles += cycles

    def probe_penalty(self) -> None:
        """Charge the cost of one binary-search probe (compare + branch)."""
        if not self.enabled:
            return
        compare, mispredict = self.cpu.probe_cost()
        self.busy(compare)
        self.other_stall(mispredict)

    def _dcache_stall(self, cycles: float) -> None:
        if cycles <= 0:
            return
        self.now += cycles
        self.stats.dcache_stall_cycles += cycles

    # -- demand accesses -------------------------------------------------------

    def read(self, address: int, nbytes: int = 4) -> None:
        """Simulate a demand load of ``nbytes`` at ``address``."""
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._touch(line)

    def write(self, address: int, nbytes: int = 4) -> None:
        """Simulate a store.

        Stores retire through a store buffer and do not stall the pipeline:
        a write to a non-resident line allocates it via the memory bus (like
        a prefetch) and later *loads* of that line wait for it, but the
        store itself only costs its issue slot.  This matters for page
        splits, which write whole fresh pages: a blocking-store model would
        double their cost.
        """
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self.stats.accesses += 1
            self.busy(1)
            if self.l1.lookup(line):
                self.stats.l1_hits += 1
                continue
            if line in self._inflight:
                continue
            self._reserve_miss_handler()
            if self.l2.contains(line):
                # An L2-resident store allocation is an L2 hit just like the
                # demand path in _touch; it only differs in not stalling.
                self.stats.l2_hits += 1
                self._inflight[line] = self.now + self.config.l2_hit_latency
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._inflight[line] = start + self.config.memory_latency
            self.stats.store_fetches += 1

    def _touch(self, line: int) -> None:
        self.stats.accesses += 1
        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            return
        completion = self._inflight.pop(line, None)
        if completion is not None:
            self._dcache_stall(completion - self.now)
            self.stats.prefetch_covered += 1
            self._install(line)
            return
        if self.l2.lookup(line):
            self.stats.l2_hits += 1
            self._dcache_stall(self.config.l2_hit_latency)
            self.l1.insert(line)
            return
        # Full miss: win the bus, wait for the line.
        start = max(self.now, self._bus_free)
        self._bus_free = start + self.config.bus_cycles_per_access
        completion = start + self.config.memory_latency
        self._dcache_stall(completion - self.now)
        self.stats.memory_fetches += 1
        self._install(line)
        # Optional hardware next-line prefetcher (off by default; the
        # paper's machine has none).
        for ahead in range(1, self.config.hardware_prefetch_lines + 1):
            neighbour = line + ahead
            if self.l1.contains(neighbour) or neighbour in self._inflight:
                continue
            if self.l2.contains(neighbour):
                self._inflight[neighbour] = self.now + self.config.l2_hit_latency
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._inflight[neighbour] = start + self.config.memory_latency

    def _install(self, line: int) -> None:
        self.l1.insert(line)
        self.l2.insert(line)

    # -- prefetch ---------------------------------------------------------------

    def prefetch(self, address: int, nbytes: int) -> None:
        """Issue non-blocking prefetches for every line in the range."""
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._prefetch_line(line)

    def _prefetch_line(self, line: int) -> None:
        self.busy(self.cpu.prefetch_issue)
        self.stats.prefetches_issued += 1
        if self.l1.contains(line) or line in self._inflight:
            return
        self._reserve_miss_handler()
        if self.l2.contains(line):
            # Satisfied from L2 without using the memory bus.
            self._inflight[line] = self.now + self.config.l2_hit_latency
            return
        start = max(self.now, self._bus_free)
        self._bus_free = start + self.config.bus_cycles_per_access
        self._inflight[line] = start + self.config.memory_latency

    def _reserve_miss_handler(self) -> None:
        """Stall until an MSHR is free, retiring landed prefetches."""
        landed = [l for l, t in self._inflight.items() if t <= self.now]
        for line in landed:
            del self._inflight[line]
            self._install(line)
        while len(self._inflight) >= self.config.miss_handlers:
            earliest_line = min(self._inflight, key=self._inflight.get)
            completion = self._inflight.pop(earliest_line)
            self._dcache_stall(completion - self.now)
            self._install(earliest_line)

    # -- control ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Flush both cache levels and any in-flight fetches."""
        self.l1.clear()
        self.l2.clear()
        self._inflight.clear()
        self._bus_free = self.now

    def reset(self) -> None:
        """Clear caches, zero the clock and all statistics."""
        self.clear_caches()
        self.now = 0.0
        self._bus_free = 0.0
        self.stats = MemoryStats()

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily disable measurement (for untimed build phases)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    @contextmanager
    def measure(self) -> Iterator[MemoryStats]:
        """Measure a phase; yields a stats object updated on exit."""
        before = self.stats.copy()
        phase = MemoryStats()
        yield phase
        delta = self.stats.minus(before)
        for name in (
            "busy_cycles",
            "dcache_stall_cycles",
            "other_stall_cycles",
            "l1_hits",
            "l2_hits",
            "memory_fetches",
            "store_fetches",
            "prefetches_issued",
            "prefetch_covered",
            "accesses",
        ):
            setattr(phase, name, getattr(delta, name))
