"""Execution-time accounting for the memory-hierarchy simulator.

Mirrors the paper's three-way breakdown (Figures 3(b) et al.): *busy* time,
*data-cache stalls*, and *other stalls* (branch mispredictions and similar).
All values are in simulated CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["MemoryStats"]


@dataclass(slots=True)
class MemoryStats:
    """Mutable accumulator of cycles and event counts.

    ``slots=True`` because one instance's counters are bumped on every
    simulated access — attribute writes through ``__slots__`` skip the
    per-instance dict and measurably speed up the trace engine's hot loop.
    """

    busy_cycles: float = 0.0
    dcache_stall_cycles: float = 0.0
    other_stall_cycles: float = 0.0

    l1_hits: int = 0
    l2_hits: int = 0
    memory_fetches: int = 0  # demand fetches that went to main memory
    store_fetches: int = 0  # write-allocate fetches (non-blocking)
    prefetches_issued: int = 0
    prefetch_covered: int = 0  # demand accesses satisfied by an in-flight/landed prefetch
    accesses: int = 0

    extra: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        """Total simulated execution time."""
        return self.busy_cycles + self.dcache_stall_cycles + self.other_stall_cycles

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time per component (empty total -> zeros)."""
        total = self.total_cycles
        if total <= 0:
            return {"busy": 0.0, "dcache_stalls": 0.0, "other_stalls": 0.0}
        return {
            "busy": self.busy_cycles / total,
            "dcache_stalls": self.dcache_stall_cycles / total,
            "other_stalls": self.other_stall_cycles / total,
        }

    def copy(self) -> "MemoryStats":
        """Snapshot of the current values."""
        snap = MemoryStats()
        for f in fields(self):
            if f.name == "extra":
                snap.extra = dict(self.extra)
            else:
                setattr(snap, f.name, getattr(self, f.name))
        return snap

    def minus(self, baseline: "MemoryStats") -> "MemoryStats":
        """Difference of two snapshots (for measuring a phase)."""
        delta = MemoryStats()
        for f in fields(self):
            if f.name == "extra":
                continue
            setattr(delta, f.name, getattr(self, f.name) - getattr(baseline, f.name))
        return delta

    def reset(self) -> None:
        """Zero all counters."""
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            elif f.type == "int":
                setattr(self, f.name, 0)
            else:
                setattr(self, f.name, 0.0)

    def __str__(self) -> str:
        pct = self.breakdown()
        return (
            f"total={self.total_cycles:.0f}cy "
            f"(busy {pct['busy']:.0%}, dcache {pct['dcache_stalls']:.0%}, "
            f"other {pct['other_stalls']:.0%}); "
            f"L1 hits {self.l1_hits}, L2 hits {self.l2_hits}, "
            f"mem fetches {self.memory_fetches}, "
            f"prefetches {self.prefetches_issued} (covered {self.prefetch_covered})"
        )
