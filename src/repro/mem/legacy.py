"""Frozen pre-batching reference engine (PR 4 baseline).

This module is a verbatim snapshot of :mod:`repro.mem.cache` and
:mod:`repro.mem.hierarchy` as they stood *before* the batched trace engine:
one scalar access at a time, an O(n) list-comprehension scan of the in-flight
fetches on every MSHR reservation, dict-churning LRU updates even for the
direct-mapped L2, and no ``__slots__``.

It exists for two reasons and must not be "improved":

* **Golden equivalence** — ``tests/test_mem_equivalence.py`` replays the
  committed trace fixture through this engine and through the batched one
  and asserts field-identical :class:`~repro.mem.stats.MemoryStats`.  The
  optimized engine is only correct if it is indistinguishable from this one.
* **Perf trajectory** — ``benchmarks/bench_selfperf.py`` measures both
  engines on the same recorded search workload and records the speedup in
  ``BENCH_selfperf.json``, so future PRs can see what each change bought.

:class:`ScalarTracer` reproduces the old :class:`repro.btree.trace.Tracer`
behaviour (composite ops expanded into scalar calls); it duck-types the
tracer interface so it can drive either engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .config import DEFAULT_CPU, DEFAULT_MEMORY, CpuCostModel, MemoryConfig
from .stats import MemoryStats

__all__ = ["LegacyCache", "LegacyMemorySystem", "ScalarTracer"]


class LegacyCache:
    """Pre-change set-associative cache: LRU via dict delete-reinsert."""

    def __init__(self, size_bytes: int, line_size: int, associativity: int) -> None:
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if size_bytes % (line_size * associativity):
            raise ValueError("cache size must be divisible by line_size * associativity")
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size_bytes // (line_size * associativity)
        self._sets: list[dict[int, None]] = [{} for __ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line: int) -> dict[int, None]:
        return self._sets[line % self.num_sets]

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    def lookup(self, line: int) -> bool:
        cache_set = self._set_of(line)
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line: int) -> Optional[int]:
        cache_set = self._set_of(line)
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = None
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim = next(iter(cache_set))
            del cache_set[victim]
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        cache_set = self._set_of(line)
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class LegacyMemorySystem:
    """Pre-change cycle-accounting model: scalar accesses, O(n) MSHR scan.

    Also exposes the batched entry-point *names* (``read_run`` etc.) so the
    current :class:`~repro.btree.trace.Tracer` can drive a legacy-backed
    tree end-to-end; they are implemented exactly as the old tracer expanded
    them — one scalar call per composite op.
    """

    def __init__(
        self,
        config: MemoryConfig = DEFAULT_MEMORY,
        cpu: CpuCostModel = DEFAULT_CPU,
    ) -> None:
        self.config = config
        self.cpu = cpu
        self.l1 = LegacyCache(config.l1_size, config.line_size, config.l1_assoc)
        self.l2 = LegacyCache(config.l2_size, config.line_size, config.l2_assoc)
        self.stats = MemoryStats()
        self.now: float = 0.0
        self.enabled: bool = True
        self._bus_free: float = 0.0
        self._inflight: dict[int, float] = {}  # line -> completion time

    # -- time charging -------------------------------------------------------

    def busy(self, cycles: float) -> None:
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.busy_cycles += cycles

    def other_stall(self, cycles: float) -> None:
        if not self.enabled or cycles <= 0:
            return
        self.now += cycles
        self.stats.other_stall_cycles += cycles

    def probe_penalty(self) -> None:
        if not self.enabled:
            return
        compare, mispredict = self.cpu.probe_cost()
        self.busy(compare)
        self.other_stall(mispredict)

    def _dcache_stall(self, cycles: float) -> None:
        if cycles <= 0:
            return
        self.now += cycles
        self.stats.dcache_stall_cycles += cycles

    # -- demand accesses -----------------------------------------------------

    def read(self, address: int, nbytes: int = 4) -> None:
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._touch(line)

    def write(self, address: int, nbytes: int = 4) -> None:
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self.stats.accesses += 1
            self.busy(1)
            if self.l1.lookup(line):
                self.stats.l1_hits += 1
                continue
            if line in self._inflight:
                continue
            self._reserve_miss_handler()
            if self.l2.contains(line):
                self.stats.l2_hits += 1
                self._inflight[line] = self.now + self.config.l2_hit_latency
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._inflight[line] = start + self.config.memory_latency
            self.stats.store_fetches += 1

    def _touch(self, line: int) -> None:
        self.stats.accesses += 1
        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            return
        completion = self._inflight.pop(line, None)
        if completion is not None:
            self._dcache_stall(completion - self.now)
            self.stats.prefetch_covered += 1
            self._install(line)
            return
        if self.l2.lookup(line):
            self.stats.l2_hits += 1
            self._dcache_stall(self.config.l2_hit_latency)
            self.l1.insert(line)
            return
        start = max(self.now, self._bus_free)
        self._bus_free = start + self.config.bus_cycles_per_access
        completion = start + self.config.memory_latency
        self._dcache_stall(completion - self.now)
        self.stats.memory_fetches += 1
        self._install(line)
        for ahead in range(1, self.config.hardware_prefetch_lines + 1):
            neighbour = line + ahead
            if self.l1.contains(neighbour) or neighbour in self._inflight:
                continue
            if self.l2.contains(neighbour):
                self._inflight[neighbour] = self.now + self.config.l2_hit_latency
                continue
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.config.bus_cycles_per_access
            self._inflight[neighbour] = start + self.config.memory_latency

    def _install(self, line: int) -> None:
        self.l1.insert(line)
        self.l2.insert(line)

    # -- prefetch ------------------------------------------------------------

    def prefetch(self, address: int, nbytes: int) -> None:
        if not self.enabled:
            return
        for line in self.config.lines_touched(address, nbytes):
            self._prefetch_line(line)

    def _prefetch_line(self, line: int) -> None:
        self.busy(self.cpu.prefetch_issue)
        self.stats.prefetches_issued += 1
        if self.l1.contains(line) or line in self._inflight:
            return
        self._reserve_miss_handler()
        if self.l2.contains(line):
            self._inflight[line] = self.now + self.config.l2_hit_latency
            return
        start = max(self.now, self._bus_free)
        self._bus_free = start + self.config.bus_cycles_per_access
        self._inflight[line] = start + self.config.memory_latency

    def _reserve_miss_handler(self) -> None:
        landed = [l for l, t in self._inflight.items() if t <= self.now]  # noqa: E741
        for line in landed:
            del self._inflight[line]
            self._install(line)
        while len(self._inflight) >= self.config.miss_handlers:
            earliest_line = min(self._inflight, key=self._inflight.get)
            completion = self._inflight.pop(earliest_line)
            self._dcache_stall(completion - self.now)
            self._install(earliest_line)

    # -- batched-name compatibility (old tracer expansions) ------------------

    def read_run(self, address: int, nbytes: int = 4) -> int:
        self.read(address, nbytes)
        return len(self.config.lines_touched(address, nbytes)) if self.enabled else 0

    def write_run(self, address: int, nbytes: int = 4) -> int:
        self.write(address, nbytes)
        return len(self.config.lines_touched(address, nbytes)) if self.enabled else 0

    def prefetch_run(self, address: int, nbytes: int) -> int:
        self.prefetch(address, nbytes)
        return len(self.config.lines_touched(address, nbytes)) if self.enabled else 0

    def probe_run(self, address: int, nbytes: int = 4) -> int:
        lines = self.read_run(address, nbytes)
        self.probe_penalty()
        return lines

    # -- control -------------------------------------------------------------

    def clear_caches(self) -> None:
        self.l1.clear()
        self.l2.clear()
        self._inflight.clear()
        self._bus_free = self.now

    def reset(self) -> None:
        self.clear_caches()
        self.now = 0.0
        self._bus_free = 0.0
        self.stats = MemoryStats()

    @contextmanager
    def paused(self) -> Iterator[None]:
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    @contextmanager
    def measure(self) -> Iterator[MemoryStats]:
        before = self.stats.copy()
        phase = MemoryStats()
        yield phase
        delta = self.stats.minus(before)
        for name in (
            "busy_cycles",
            "dcache_stall_cycles",
            "other_stall_cycles",
            "l1_hits",
            "l2_hits",
            "memory_fetches",
            "store_fetches",
            "prefetches_issued",
            "prefetch_covered",
            "accesses",
        ):
            setattr(phase, name, getattr(delta, name))


class ScalarTracer:
    """The pre-batching tracer: composite ops expanded into scalar calls.

    Duck-types :class:`repro.btree.trace.Tracer` so the same replay helpers
    can drive either path against either engine.
    """

    __slots__ = ("mem",)

    def __init__(self, mem=None) -> None:
        self.mem = mem

    @property
    def active(self) -> bool:
        return self.mem is not None and self.mem.enabled

    def read(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.read(address, nbytes)

    def write(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.write(address, nbytes)

    def prefetch(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.prefetch(address, nbytes)

    def busy(self, cycles: float) -> None:
        if self.mem is not None:
            self.mem.busy(cycles)

    def probe(self, address: int, nbytes: int = 4) -> None:
        if self.mem is None:
            return
        self.mem.read(address, nbytes)
        self.mem.probe_penalty()

    def scan(self, address: int, nbytes: int, per_line_busy: float = 2.0) -> None:
        if self.mem is None or nbytes <= 0:
            return
        self.mem.read(address, nbytes)
        lines = len(self.mem.config.lines_touched(address, nbytes))
        self.mem.busy(per_line_busy * lines)

    def move(self, dst_address: int, src_address: int, nbytes: int) -> None:
        if self.mem is None or nbytes <= 0:
            return
        self.mem.read(src_address, nbytes)
        self.mem.write(dst_address, nbytes)
        lines = len(self.mem.config.lines_touched(dst_address, nbytes))
        self.mem.busy(self.mem.cpu.copy_per_line * lines)

    def visit_node(self) -> None:
        if self.mem is not None:
            self.mem.busy(self.mem.cpu.node_visit)

    def call_overhead(self) -> None:
        if self.mem is not None:
            self.mem.busy(self.mem.cpu.function_call)
