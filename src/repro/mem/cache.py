"""Set-associative cache model with LRU replacement.

Caches operate on *line indices* (byte address // line size); the caller is
responsible for the address-to-line mapping (see
:meth:`repro.mem.config.MemoryConfig.line_of`).  Each set is a dict whose
insertion order doubles as the LRU order — a hit moves the line to the
most-recently-used end via :meth:`_touch_mru`, the single move-to-MRU
helper shared by :meth:`lookup` and :meth:`insert`.

Direct-mapped caches (``associativity == 1``, e.g. the paper's 2 MB L2) take
a fast path: each set holds at most one line, so LRU order is meaningless
and residency is a flat-list slot compare — no per-access dict churn.  Both
representations implement identical replacement semantics; only the
bookkeeping cost differs.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Cache"]


class Cache:
    """One level of a set-associative cache, tracked at line granularity."""

    __slots__ = (
        "size_bytes",
        "line_size",
        "associativity",
        "num_sets",
        "_sets",
        "_dm_slots",
        "hits",
        "misses",
    )

    def __init__(self, size_bytes: int, line_size: int, associativity: int) -> None:
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if size_bytes % (line_size * associativity):
            raise ValueError("cache size must be divisible by line_size * associativity")
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size_bytes // (line_size * associativity)
        if associativity == 1:
            # Direct-mapped fast path: one slot per set (None = empty).
            self._sets: Optional[list[dict[int, None]]] = None
            self._dm_slots: Optional[list[Optional[int]]] = [None] * self.num_sets
        else:
            # One dict per set; keys are line indices, values unused (None).
            self._sets = [{} for __ in range(self.num_sets)]
            self._dm_slots = None
        self.hits = 0
        self.misses = 0

    def _set_of(self, line: int) -> dict[int, None]:
        return self._sets[line % self.num_sets]

    @staticmethod
    def _touch_mru(cache_set: dict[int, None], line: int) -> None:
        """Move a resident line to the MRU end of its set.

        Dict insertion order is the LRU order, so delete-and-reinsert is the
        one move-to-MRU idiom; every path that refreshes recency must go
        through here so lookup and insert cannot diverge.
        """
        del cache_set[line]
        cache_set[line] = None

    def contains(self, line: int) -> bool:
        """Check residency without updating LRU order or counters."""
        slots = self._dm_slots
        if slots is not None:
            return slots[line % self.num_sets] == line
        return line in self._sets[line % self.num_sets]

    def lookup(self, line: int) -> bool:
        """Probe the cache; updates LRU order and hit/miss counters."""
        slots = self._dm_slots
        if slots is not None:
            if slots[line % self.num_sets] == line:
                self.hits += 1
                return True
            self.misses += 1
            return False
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            self._touch_mru(cache_set, line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line: int) -> Optional[int]:
        """Install a line, returning the evicted victim's line index, if any."""
        slots = self._dm_slots
        if slots is not None:
            index = line % self.num_sets
            victim = slots[index]
            if victim == line:
                return None
            slots[index] = line
            return victim
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            self._touch_mru(cache_set, line)
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim = next(iter(cache_set))  # LRU = oldest insertion
            del cache_set[victim]
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        slots = self._dm_slots
        if slots is not None:
            index = line % self.num_sets
            if slots[index] == line:
                slots[index] = None
                return True
            return False
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def clear(self) -> None:
        """Empty the cache (counters are preserved)."""
        slots = self._dm_slots
        if slots is not None:
            for index in range(self.num_sets):
                slots[index] = None
            return
        for cache_set in self._sets:
            cache_set.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (residency is untouched)."""
        self.hits = 0
        self.misses = 0

    def resident_lines(self) -> int:
        """Total number of lines currently cached."""
        slots = self._dm_slots
        if slots is not None:
            return sum(1 for slot in slots if slot is not None)
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache(size={self.size_bytes}, line={self.line_size}, "
            f"assoc={self.associativity}, resident={self.resident_lines()})"
        )
