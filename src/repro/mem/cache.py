"""Set-associative cache model with LRU replacement.

Caches operate on *line indices* (byte address // line size); the caller is
responsible for the address-to-line mapping (see
:meth:`repro.mem.config.MemoryConfig.line_of`).  Each set is a dict whose
insertion order doubles as the LRU order — a hit re-inserts the line at the
most-recently-used end.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Cache"]


class Cache:
    """One level of a set-associative cache, tracked at line granularity."""

    def __init__(self, size_bytes: int, line_size: int, associativity: int) -> None:
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if size_bytes % (line_size * associativity):
            raise ValueError("cache size must be divisible by line_size * associativity")
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size_bytes // (line_size * associativity)
        # One dict per set; keys are line indices, values unused (None).
        self._sets: list[dict[int, None]] = [{} for __ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line: int) -> dict[int, None]:
        return self._sets[line % self.num_sets]

    def contains(self, line: int) -> bool:
        """Check residency without updating LRU order or counters."""
        return line in self._set_of(line)

    def lookup(self, line: int) -> bool:
        """Probe the cache; updates LRU order and hit/miss counters."""
        cache_set = self._set_of(line)
        if line in cache_set:
            # Move to MRU position.
            del cache_set[line]
            cache_set[line] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line: int) -> Optional[int]:
        """Install a line, returning the evicted victim's line index, if any."""
        cache_set = self._set_of(line)
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = None
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim = next(iter(cache_set))  # LRU = oldest insertion
            del cache_set[victim]
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        cache_set = self._set_of(line)
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def clear(self) -> None:
        """Empty the cache (counters are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        """Total number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache(size={self.size_bytes}, line={self.line_size}, "
            f"assoc={self.associativity}, resident={self.resident_lines()})"
        )
