"""Heap table for the mini-DBMS (the paper's Figure 19 substrate).

The paper populates a 12.8 GB table of rows shaped
``(int, int, char(20), int, char(512))`` and indexes the three integer
columns.  :class:`HeapTable` reproduces that shape at configurable scale:
fixed-size rows packed into slotted heap pages, with tuple ids encoding
(page, slot) so index lookups can fetch rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..storage.pager import PageStore

__all__ = ["RowSchema", "HeapPage", "HeapTable", "DEFAULT_SCHEMA"]


@dataclass(frozen=True)
class RowSchema:
    """Fixed-size row layout; sizes in bytes."""

    fields: tuple[tuple[str, int], ...]

    @property
    def row_bytes(self) -> int:
        return sum(size for __, size in self.fields)


#: The paper's row shape: (int, int, char(20), int, char(512)).
DEFAULT_SCHEMA = RowSchema(
    fields=(
        ("k1", 4),
        ("k2", 4),
        ("pad20", 20),
        ("k3", 4),
        ("pad512", 512),
    )
)


class HeapPage:
    """A slotted page of fixed-size rows (integer columns only are stored)."""

    __slots__ = ("count", "capacity", "k1", "k2", "k3")

    def __init__(self, capacity: int) -> None:
        self.count = 0
        self.capacity = capacity
        self.k1 = np.zeros(capacity, dtype=np.uint32)
        self.k2 = np.zeros(capacity, dtype=np.uint32)
        self.k3 = np.zeros(capacity, dtype=np.uint32)


class HeapTable:
    """Append-only heap file of fixed-size rows."""

    def __init__(self, store: PageStore, schema: RowSchema = DEFAULT_SCHEMA) -> None:
        self.store = store
        self.schema = schema
        self.rows_per_page = max(1, (store.page_size - 64) // schema.row_bytes)
        self._page_ids: list[int] = []
        self._tail: Optional[HeapPage] = None
        self.num_rows = 0

    def insert_row(self, k1: int, k2: int, k3: int) -> int:
        """Append a row; returns its tuple id (page index * capacity + slot)."""
        if self._tail is None or self._tail.count >= self.rows_per_page:
            self._tail = HeapPage(self.rows_per_page)
            self._page_ids.append(self.store.allocate(self._tail))
        slot = self._tail.count
        self._tail.k1[slot] = k1
        self._tail.k2[slot] = k2
        self._tail.k3[slot] = k3
        self._tail.count += 1
        self.num_rows += 1
        self.store.mark_dirty(self._page_ids[-1])
        return (len(self._page_ids) - 1) * self.rows_per_page + slot

    def rebind(self, page_ids: list[int]) -> None:
        """Adopt a recovered store's surviving heap pages.

        ``page_ids`` is the pre-crash page list (its order defines tuple
        ids).  The table is append-only, so recovery may only have dropped
        a suffix — a tail page allocated by an uncommitted transaction;
        a missing page anywhere else means the image is corrupt.
        """
        survivors = [pid for pid in page_ids if pid in self.store]
        if survivors != page_ids[: len(survivors)]:
            missing = [pid for pid in page_ids if pid not in self.store]
            raise ValueError(f"non-suffix heap pages missing after recovery: {missing}")
        self._page_ids = survivors
        self._tail = self.store.page(survivors[-1]) if survivors else None
        self.num_rows = sum(self.store.page(pid).count for pid in survivors)

    def tid_to_location(self, tid: int) -> tuple[int, int]:
        """(page id, slot) for a tuple id."""
        page_index, slot = divmod(tid, self.rows_per_page)
        if page_index >= len(self._page_ids):
            raise KeyError(f"tuple id {tid} out of range")
        return self._page_ids[page_index], slot

    def fetch(self, tid: int) -> tuple[int, int, int]:
        """Read a row's integer columns by tuple id."""
        pid, slot = self.tid_to_location(tid)
        page = self.store.page(pid)
        if slot >= page.count:
            raise KeyError(f"tuple id {tid} is not a live row")
        return int(page.k1[slot]), int(page.k2[slot]), int(page.k3[slot])

    def page_ids(self) -> list[int]:
        return list(self._page_ids)

    def rows(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield (tid, k1, k2, k3) for every row."""
        tid = 0
        for pid in self._page_ids:
            page = self.store.page(pid)
            for slot in range(page.count):
                yield tid, int(page.k1[slot]), int(page.k2[slot]), int(page.k3[slot])
                tid += 1

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.schema.row_bytes
