"""Mini query engine standing in for DB2 in the Figure 19 experiment.

Reproduces exactly what the paper's DB2 experiment exercises: an
index-only ``SELECT COUNT(*)`` scan over a many-disk table, with

* a configurable pool of **I/O prefetcher processes** (DB2's I/O servers)
  consuming a shared prefetch-request queue fed from the index's
  jump-pointer array, and
* configurable **SMP parallelism**: the leaf-page range is partitioned into
  contiguous segments scanned by parallel worker processes.

Three execution modes mirror the paper's three curves: plain demand-paged
scan ("no prefetch"), jump-pointer-array prefetching ("with prefetch"), and
a preloaded buffer pool ("in memory" — the attainable floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..btree.context import TreeEnvironment
from ..core.disk_first import DiskFirstFpTree
from ..des import Environment, Store
from ..storage.buffer import BufferPool
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from ..storage.prefetch import AsyncPageReader
from ..workloads.generator import KeyWorkload, build_mature_tree
from .table import DEFAULT_SCHEMA, HeapTable, RowSchema

__all__ = ["MiniDbms", "QueryStats"]


@dataclass(frozen=True)
class QueryStats:
    """Outcome of one query execution."""

    elapsed_us: float
    pages_scanned: int
    disk_reads: int
    prefetches: int
    row_count: int

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


class MiniDbms:
    """A one-table database with a (disk-first fpB+-Tree) index."""

    def __init__(
        self,
        num_rows: int,
        num_disks: int = 80,
        page_size: int = 16 * 1024,
        seed: int = 7,
        schema: RowSchema = DEFAULT_SCHEMA,
        mature: bool = True,
        disk: Optional[DiskParameters] = None,
        index_kind: str = "fp-disk",
    ) -> None:
        self.num_disks = num_disks
        self.page_size = page_size
        self.disk_params = disk if disk is not None else DiskParameters()
        self.env = TreeEnvironment(page_size=page_size, buffer_pages=64)
        self.store = self.env.store
        self.table = HeapTable(self.store, schema)
        self.index = self._make_index(index_kind, num_rows)

        workload = KeyWorkload(num_rows, seed=seed)
        rng = np.random.default_rng(seed + 1)
        keys, __ = workload.bulkload_arrays()
        for key in keys.tolist():
            self.table.insert_row(int(key), int(rng.integers(0, 1 << 31)), int(key) % 997)
        # Tuple ids are row positions; the index maps k1 -> tid.
        self._workload = KeyWorkload(num_rows, seed=seed)
        if mature:
            # The paper's table is populated by concurrent inserts, so the
            # index grows through page splits rather than pure bulkload.
            index_workload = KeyWorkload(num_rows, seed=seed)
            build_mature_tree(self.index, index_workload, bulk_fraction=0.7)
        else:
            self.index.bulkload(keys, workload.tids)

    def _make_index(self, kind: str, num_rows: int):
        """The database's index: any of the disk-resident structures.

        ``count_star`` only needs ``leaf_page_ids`` and per-page entry
        counts, so every tree kind works; the paper's DB2 experiment used
        standard B+-Trees with jump-pointer arrays added, and the default
        here is the disk-first fpB+-Tree the paper recommends.
        """
        from ..baselines.disk_btree import DiskBPlusTree
        from ..baselines.micro_index import MicroIndexTree
        from ..core.cache_first import CacheFirstFpTree

        if kind == "fp-disk":
            return DiskFirstFpTree(self.env)
        if kind == "fp-cache":
            return CacheFirstFpTree(self.env, num_keys_hint=num_rows)
        if kind == "micro":
            return MicroIndexTree(self.env)
        if kind == "disk":
            return DiskBPlusTree(self.env)
        raise ValueError(f"unknown index kind {kind!r}")

    def _entries_in_leaf_page(self, pid: int) -> int:
        """Entry count of one leaf page, for any index kind."""
        page = self.store.page(pid)
        if hasattr(page, "total"):  # disk-first fp pages
            return page.total
        if hasattr(page, "count"):  # sorted-array pages
            return page.count
        return sum(node.count for node in page.nodes())  # cache-first pages

    # -- query execution ------------------------------------------------------

    def count_star(
        self,
        smp_degree: int = 1,
        prefetchers: int = 0,
        in_memory: bool = False,
        page_process_us: float = 2000.0,
        pool_frames: Optional[int] = None,
    ) -> QueryStats:
        """Execute ``SELECT COUNT(*)`` via an index-only leaf scan."""
        if smp_degree < 1:
            raise ValueError("smp_degree must be >= 1")
        if prefetchers < 0:
            raise ValueError("prefetchers must be >= 0")
        leaf_pids = self.index.leaf_page_ids()
        frames = pool_frames if pool_frames is not None else len(leaf_pids) + 64
        config = StorageConfig(
            page_size=self.page_size,
            num_disks=self.num_disks,
            buffer_pool_pages=frames,
            disk=self.disk_params,
        )
        env = Environment()
        disks = DiskArray(env, config)
        pool = BufferPool(config, self.store)
        reader = AsyncPageReader(env, disks, pool)
        if in_memory:
            reader.preload(leaf_pids)

        # Partition the leaf range into contiguous SMP segments.
        bounds = np.linspace(0, len(leaf_pids), smp_degree + 1).astype(int)
        segments = [
            leaf_pids[bounds[i] : bounds[i + 1]]
            for i in range(smp_degree)
            if bounds[i + 1] > bounds[i]
        ]

        row_count = 0
        request_queue = Store(env)
        window = 4 * max(1, prefetchers)

        def prefetcher():
            while True:
                pid = yield request_queue.get()
                event = reader.prefetch(pid)
                if event is not None:
                    yield event  # an I/O server is busy for the duration

        def scanner(segment):
            nonlocal row_count
            issued = 0
            for index, pid in enumerate(segment):
                if prefetchers:
                    while issued < min(index + window, len(segment)):
                        request_queue.put(segment[issued])
                        issued += 1
                yield from reader.demand(pid)
                row_count += self._entries_in_leaf_page(pid)
                yield env.timeout(page_process_us)

        if prefetchers and not in_memory:
            for __ in range(prefetchers):
                env.process(prefetcher())
        scanners = [env.process(scanner(segment)) for segment in segments]
        env.run(until=env.all_of(scanners))
        return QueryStats(
            elapsed_us=env.now,
            pages_scanned=len(leaf_pids),
            disk_reads=disks.total_reads,
            prefetches=reader.prefetches,
            row_count=row_count,
        )

    # -- point access (used by examples/tests) -------------------------------------

    def lookup(self, key: int) -> Optional[tuple[int, int, int]]:
        """Fetch a row's integer columns through the index."""
        tid = self.index.search(key)
        if tid is None:
            return None
        return self.table.fetch(int(tid) - 1)  # tids are 1-based in workloads
