"""Mini query engine standing in for DB2 in the Figure 19 experiment.

Reproduces exactly what the paper's DB2 experiment exercises: an
index-only ``SELECT COUNT(*)`` scan over a many-disk table, with

* a configurable pool of **I/O prefetcher processes** (DB2's I/O servers)
  consuming a shared prefetch-request queue fed from the index's
  jump-pointer array, and
* configurable **SMP parallelism**: the leaf-page range is partitioned into
  contiguous segments scanned by parallel worker processes.

Three execution modes mirror the paper's three curves: plain demand-paged
scan ("no prefetch"), jump-pointer-array prefetching ("with prefetch"), and
a preloaded buffer pool ("in memory" — the attainable floor).

:meth:`MiniDbms.scan` additionally survives an unhealthy array: a
:class:`~repro.faults.FaultPlan` injects deterministic faults, a
:class:`~repro.storage.RetryPolicy` plus optional mirrored striping and
hedged reads recovers from them, and a query deadline drives a
**degradation ladder** — hedged reads first, then plain retries, then
skip-prefetch demand paging — shedding optional I/O as the deadline nears.
Faults cost time, never correctness: the row count is identical to a
fault-free run.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..btree.batch import LevelWiseLookupBatch
from ..btree.context import TreeEnvironment
from ..core.disk_first import DiskFirstFpTree
from ..des import Environment, Store
from ..faults import FaultInjector, FaultPlan, StorageFault
from ..obs import MetricsRegistry, Observability, QueryTrace, Tracer
from ..storage.buffer import BufferPool
from ..storage.config import DiskParameters, StorageConfig
from ..storage.disk import DiskArray
from ..storage.prefetch import AsyncPageReader, RetryPolicy
from ..wal import RecoveryStats, WalManager, recover
from ..workloads.generator import KeyWorkload, build_mature_tree
from .table import DEFAULT_SCHEMA, HeapTable, RowSchema

__all__ = ["MiniDbms", "QueryStats"]

#: Degradation ladder thresholds, as fractions of the query deadline: past
#: the first, hedging is shed; past the second, prefetching too.
DEGRADE_HEDGE_AT = 0.6
DEGRADE_PREFETCH_AT = 0.85


@dataclass(frozen=True)
class QueryStats:
    """Outcome of one query execution, including its resilience history."""

    elapsed_us: float
    pages_scanned: int
    disk_reads: int
    prefetches: int
    row_count: int
    # Fault/recovery accounting (all zero on a healthy, undeadlined run).
    faults_seen: int = 0
    retries: int = 0
    timeouts: int = 0
    backoff_us: float = 0.0
    hedges: int = 0
    hedge_wins: int = 0
    checksum_failures: int = 0
    degradation_level: int = 0
    deadline_exceeded: bool = False
    # Write-path accounting (all zero unless write-ahead logging is on):
    # cumulative WAL appends, durable page writes (evictions + checkpoints),
    # and the simulated disk time they consumed, as of query time.
    wal_appends: int = 0
    page_writes: int = 0
    disk_write_us: float = 0.0
    #: Attached observability bundle (``scan(trace=True)``); excluded from
    #: equality so traced and untraced stats of the same run still compare.
    trace: Optional[QueryTrace] = dataclasses.field(default=None, compare=False, repr=False)

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6

    def explain(self) -> str:
        """Text timeline of the query (needs ``scan(trace=True)``)."""
        header = (
            f"scan: {self.row_count} rows over {self.pages_scanned} pages in "
            f"{self.elapsed_us:.0f} us — {self.disk_reads} disk reads, "
            f"{self.prefetches} prefetches, {self.retries} retries, "
            f"{self.hedges} hedges, degradation level {self.degradation_level}"
        )
        if self.trace is None:
            return header + "\n  (run scan(trace=True) for a full timeline)"
        return header + "\n" + self.trace.timeline()


class MiniDbms:
    """A one-table database with a (disk-first fpB+-Tree) index."""

    def __init__(
        self,
        num_rows: int,
        num_disks: int = 80,
        page_size: int = 16 * 1024,
        seed: int = 7,
        schema: RowSchema = DEFAULT_SCHEMA,
        mature: bool = True,
        disk: Optional[DiskParameters] = None,
        index_kind: str = "fp-disk",
        key_range: Optional[tuple] = None,
    ) -> None:
        self.num_disks = num_disks
        self.page_size = page_size
        self.disk_params = disk if disk is not None else DiskParameters()
        self.schema = schema
        self.index_kind = index_kind
        self._num_rows_hint = num_rows
        self.wal: Optional[WalManager] = None
        self.last_recovery: Optional[RecoveryStats] = None
        #: Leaf-map cache (see :meth:`cached_leaf_map`); the generation
        #: counter distinguishes pre- and post-recovery index objects.
        self._leaf_map_cache: Optional[tuple[np.ndarray, list[int]]] = None
        self._leaf_map_epoch: Optional[tuple] = None
        self._index_generation = 0
        self.env = TreeEnvironment(page_size=page_size, buffer_pages=64)
        self.store = self.env.store
        self.table = HeapTable(self.store, schema)
        self.index = self._make_index(index_kind, num_rows)

        workload = KeyWorkload(num_rows, seed=seed)
        rng = np.random.default_rng(seed + 1)
        keys, __ = workload.bulkload_arrays()
        self.key_range = key_range
        if key_range is not None:
            # A shard of a fleet: store only the keys inside [lo, hi).  The
            # mature-tree builder replays the full insert history, so a
            # sliced database must bulkload instead.
            if mature:
                raise ValueError("key_range slicing requires mature=False")
            lo, hi = key_range
            mask = np.ones(keys.size, dtype=bool)
            if lo is not None:
                mask &= keys >= lo
            if hi is not None:
                mask &= keys < hi
            if not mask.any():
                raise ValueError(f"key_range {key_range} holds no stored keys")
            # Draw every key's payload in full-universe order, so a row's
            # contents are a pure function of its key — a sharded fleet
            # stores byte-identical rows to the unsharded database.
            for key, keep in zip(keys.tolist(), mask.tolist()):
                value = int(rng.integers(0, 1 << 31))
                if keep:
                    self.table.insert_row(int(key), value, int(key) % 997)
            keys = keys[mask]
        else:
            for key in keys.tolist():
                self.table.insert_row(int(key), int(rng.integers(0, 1 << 31)), int(key) % 997)
        #: The keys this database actually stores (the full universe, or
        #: this shard's slice of it) — what load generators should target.
        self.stored_keys = keys
        # Tuple ids are row positions; the index maps k1 -> tid.
        self._workload = KeyWorkload(num_rows, seed=seed)
        if mature:
            # The paper's table is populated by concurrent inserts, so the
            # index grows through page splits rather than pure bulkload.
            index_workload = KeyWorkload(num_rows, seed=seed)
            build_mature_tree(self.index, index_workload, bulk_fraction=0.7)
        else:
            tids = np.arange(1, keys.size + 1, dtype=np.int64)
            self.index.bulkload(keys, tids)

    def _make_index(self, kind: str, num_rows: int, env: Optional[TreeEnvironment] = None):
        """The database's index: any of the disk-resident structures.

        ``count_star`` only needs ``leaf_page_ids`` and per-page entry
        counts, so every tree kind works; the paper's DB2 experiment used
        standard B+-Trees with jump-pointer arrays added, and the default
        here is the disk-first fpB+-Tree the paper recommends.
        """
        from ..baselines.disk_btree import DiskBPlusTree
        from ..baselines.micro_index import MicroIndexTree
        from ..core.cache_first import CacheFirstFpTree

        env = env if env is not None else self.env
        if kind == "fp-disk":
            return DiskFirstFpTree(env)
        if kind == "fp-cache":
            return CacheFirstFpTree(env, num_keys_hint=num_rows)
        if kind == "micro":
            return MicroIndexTree(env)
        if kind == "disk":
            return DiskBPlusTree(env)
        raise ValueError(f"unknown index kind {kind!r}")

    def _entries_in_leaf_page(self, pid: int) -> int:
        """Entry count of one leaf page, for any index kind."""
        page = self.store.page(pid)
        if hasattr(page, "total"):  # disk-first fp pages
            return page.total
        if hasattr(page, "count"):  # sorted-array pages
            return page.count
        return sum(node.count for node in page.nodes())  # cache-first pages

    # -- query execution ------------------------------------------------------

    def count_star(
        self,
        smp_degree: int = 1,
        prefetchers: int = 0,
        in_memory: bool = False,
        page_process_us: float = 2000.0,
        pool_frames: Optional[int] = None,
        **resilience,
    ) -> QueryStats:
        """Execute ``SELECT COUNT(*)`` via an index-only leaf scan.

        Extra keyword arguments (``fault_plan``, ``retry_policy``,
        ``mirrored``, ``deadline_us``, ``hedge``) pass through to
        :meth:`scan`.
        """
        return self.scan(
            smp_degree=smp_degree,
            prefetchers=prefetchers,
            in_memory=in_memory,
            page_process_us=page_process_us,
            pool_frames=pool_frames,
            **resilience,
        )

    def scan(
        self,
        smp_degree: int = 1,
        prefetchers: int = 0,
        in_memory: bool = False,
        page_process_us: float = 2000.0,
        pool_frames: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        mirrored: bool = False,
        deadline_us: Optional[float] = None,
        hedge: bool = True,
        trace: bool | Tracer = False,
    ) -> QueryStats:
        """Index-only leaf scan with fault injection and graceful degradation.

        ``fault_plan`` injects deterministic faults (seeded — two runs with
        the same plan produce bit-identical :class:`QueryStats`).  A
        ``retry_policy`` is installed automatically whenever a fault plan is
        present; ``mirrored`` places every page on two spindles, enabling
        retry-on-mirror and (with ``hedge``) hedged reads.  ``deadline_us``
        arms the degradation ladder: past 60% of the deadline hedging is
        shed, past 85% prefetching too, leaving plain demand paging.

        ``trace=True`` (or a :class:`~repro.obs.Tracer` of your own)
        records the query's full event timeline — disk service spans,
        pool hit/miss/evict, prefetch/hedge/retry decisions, ladder
        transitions, per-scanner page spans — and attaches it to the
        returned stats as ``stats.trace`` (a
        :class:`~repro.obs.QueryTrace`; ``stats.explain()`` renders it,
        ``stats.trace.write(path)`` exports Perfetto-loadable JSON).
        Tracing observes the DES clock and never advances it: a traced run
        returns bit-identical times to an untraced one.
        """
        if smp_degree < 1:
            raise ValueError("smp_degree must be >= 1")
        if prefetchers < 0:
            raise ValueError("prefetchers must be >= 0")
        if deadline_us is not None and deadline_us <= 0:
            raise ValueError(f"deadline_us must be positive, got {deadline_us}")
        tracer: Optional[Tracer] = None
        if trace:
            tracer = trace if isinstance(trace, Tracer) else Tracer()
        obs = Observability(tracer=tracer, metrics=MetricsRegistry())
        leaf_pids = self.index.leaf_page_ids()
        frames = pool_frames if pool_frames is not None else len(leaf_pids) + 64
        config = StorageConfig(
            page_size=self.page_size,
            num_disks=self.num_disks,
            buffer_pool_pages=frames,
            disk=self.disk_params,
        )
        injector = FaultInjector(fault_plan) if fault_plan is not None else None
        policy = retry_policy
        if policy is None and fault_plan is not None:
            policy = RetryPolicy()
        if policy is not None and mirrored and hedge and policy.hedge_after_us is None:
            # Hedge once the primary has been quiet 1.5x a nominal random read.
            nominal = self.disk_params.service_time_us(-1, 0, self.page_size)
            policy = dataclasses.replace(policy, hedge_after_us=1.5 * nominal)
        env = Environment()
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: env.now
        disks = DiskArray(env, config, injector=injector, mirrored=mirrored, obs=obs)
        pool = BufferPool(config, self.store, obs=obs)
        seed = fault_plan.seed if fault_plan is not None else 0
        reader = AsyncPageReader(env, disks, pool, policy=policy, seed=seed, obs=obs)
        reader.hedge_enabled = hedge
        if in_memory:
            reader.preload(leaf_pids)

        # Partition the leaf range into contiguous SMP segments.
        bounds = np.linspace(0, len(leaf_pids), smp_degree + 1).astype(int)
        segments = [
            leaf_pids[bounds[i] : bounds[i + 1]]
            for i in range(smp_degree)
            if bounds[i + 1] > bounds[i]
        ]

        row_count = 0
        request_queue = Store(env)
        window = 4 * max(1, prefetchers)
        max_level = 0

        def current_level() -> int:
            if deadline_us is None:
                return 0
            if env.now >= DEGRADE_PREFETCH_AT * deadline_us:
                return 2
            if env.now >= DEGRADE_HEDGE_AT * deadline_us:
                return 1
            return 0

        def degrade() -> None:
            """Shed optional I/O as the deadline approaches (never re-arms)."""
            nonlocal max_level
            level = current_level()
            if level <= max_level:
                return
            max_level = level
            if tracer is not None:
                tracer.instant(
                    "degrade", track="query", cat="query",
                    level=level, deadline_us=deadline_us,
                )
            if level >= 1:
                reader.hedge_enabled = False
            if level >= 2:
                reader.prefetch_enabled = False

        def prefetcher():
            while True:
                pid = yield request_queue.get()
                event = reader.prefetch(pid)
                if event is not None:
                    try:
                        yield event  # an I/O server is busy for the duration
                    except StorageFault:
                        pass  # the demand path will recover (or report)

        def scanner(worker_id, segment):
            nonlocal row_count
            track = f"scan{worker_id}"
            issued = 0
            for index, pid in enumerate(segment):
                degrade()
                if prefetchers and reader.prefetch_enabled:
                    while issued < min(index + window, len(segment)):
                        request_queue.put(segment[issued])
                        issued += 1
                start = env.now
                yield from reader.demand(pid)
                rows = int(self._entries_in_leaf_page(pid))
                row_count += rows
                yield env.timeout(page_process_us)
                if tracer is not None:
                    tracer.complete("page", track, start, cat="scan", page=pid, rows=rows)

        if prefetchers and not in_memory:
            for __ in range(prefetchers):
                env.process(prefetcher())
        scanners = [
            env.process(scanner(worker_id, segment))
            for worker_id, segment in enumerate(segments)
        ]
        env.run(until=env.all_of(scanners))
        if tracer is not None:
            # Final reconciliation samples: the trace's own totals must
            # agree with the QueryStats the caller gets back.
            tracer.counter("reads", disks.total_reads, track="query")
            tracer.counter("prefetches", reader.prefetches, track="query")
            tracer.counter("hedges", reader.hedges, track="query")
            tracer.counter("retries", reader.retries, track="query")
            tracer.counter(
                "wal_appends", self.wal.log.appends if self.wal is not None else 0,
                track="query",
            )
        return QueryStats(
            elapsed_us=env.now,
            pages_scanned=len(leaf_pids),
            disk_reads=disks.total_reads,
            prefetches=reader.prefetches,
            row_count=row_count,
            faults_seen=reader.faults_seen,
            retries=reader.retries,
            timeouts=reader.timeouts,
            backoff_us=reader.backoff_us,
            hedges=reader.hedges,
            hedge_wins=reader.hedge_wins,
            checksum_failures=pool.checksum_failures,
            degradation_level=max_level,
            deadline_exceeded=deadline_us is not None and env.now > deadline_us,
            wal_appends=self.wal.log.appends if self.wal is not None else 0,
            page_writes=self.wal.pages_flushed if self.wal is not None else 0,
            disk_write_us=self.wal.io_env.now if self.wal is not None else 0.0,
            trace=QueryTrace(tracer, obs.metrics, label="scan") if tracer is not None else None,
        )

    # -- point access (used by examples/tests) -------------------------------------

    def lookup(self, key: int) -> Optional[tuple[int, int, int]]:
        """Fetch a row's integer columns through the index."""
        tid = self.index.search(key)
        if tid is None:
            return None
        return self.table.fetch(int(tid) - 1)  # tids are 1-based in workloads

    # -- serving (reentrant ops over a shared substrate) -----------------------------
    #
    # Unlike :meth:`scan`, which builds a private environment and runs it to
    # completion, the ``serve_*`` methods are process *generators*: any
    # number of concurrent DES processes may run them against one shared
    # :class:`~repro.storage.prefetch.AsyncPageReader` (one environment, one
    # buffer pool, one disk array), which is what makes multi-client
    # contention — coalesced reads, CLOCK evictions under pressure, spindle
    # queueing — actually happen.  The serving layer
    # (:mod:`repro.serve`) drives them.

    def leaf_key_map(self) -> tuple[np.ndarray, list[int]]:
        """(first keys, leaf page ids) in leaf order, for range planning.

        Recompute after inserts: page splits add leaves.  The serving layer
        caches this and invalidates on its write path.
        """
        from ..bench.io_scan import first_key_of_leaf_page  # late: avoids a cycle

        pids = self.index.leaf_page_ids()
        firsts = np.asarray(
            [first_key_of_leaf_page(self.index, pid) for pid in pids], dtype=np.int64
        )
        return firsts, pids

    def leaf_map_epoch(self) -> tuple:
        """Cheap fingerprint of the leaf-page topology.

        Changes whenever a split adds a leaf, a free/merge removes one, the
        root grows, or recovery swaps the whole index out — every event
        that can make a cached :meth:`leaf_key_map` route a scan through a
        stale leaf snapshot.  The ``getattr`` fallbacks keep alternate
        index kinds (which lack split counters) safe: their epoch then
        tracks page count and identity only.
        """
        index = self.index
        return (
            self._index_generation,
            getattr(index, "page_splits", -1),
            index.num_pages,
            getattr(index, "height", -1),
            getattr(index, "root_pid", -1),
            getattr(index, "first_leaf_pid", -1),
        )

    def cached_leaf_map(self) -> tuple[np.ndarray, list[int]]:
        """Epoch-validated leaf map: recomputed iff the topology moved.

        This replaces the serving layer's manual invalidate-on-insert: a
        split triggered by *any* path (a concurrent writer, recovery, a
        direct ``insert``) bumps the epoch, so concurrent scans can never
        route through a stale snapshot.
        """
        epoch = self.leaf_map_epoch()
        if self._leaf_map_cache is None or self._leaf_map_epoch != epoch:
            self._leaf_map_cache = self.leaf_key_map()
            self._leaf_map_epoch = epoch
        return self._leaf_map_cache

    def serve_lookup(self, reader, key: int, page_process_us: float = 150.0, owner=None):
        """Process generator: point lookup through a shared serving substrate.

        Demand-pages the root-to-leaf path and the heap page, charging
        ``page_process_us`` of CPU per page visited, and pins the leaf (with
        ``owner`` attribution) while it is being searched.  Returns the row
        or ``None``.
        """
        env = reader.env
        path = self.index.page_path(key)
        for pid in path[:-1]:
            yield from reader.demand(pid)
            yield env.timeout(page_process_us)
        yield from reader.demand(path[-1])
        with reader.pool.pinned(path[-1], owner=owner):
            yield env.timeout(page_process_us)
            tid = self.index.search(key)
        if tid is None:
            return None
        heap_pid, __ = self.table.tid_to_location(int(tid) - 1)
        yield from reader.demand(heap_pid)
        yield env.timeout(page_process_us)
        return self.table.fetch(int(tid) - 1)

    def serve_lookup_batch(
        self,
        reader,
        keys,
        page_process_us: float = 150.0,
        owner=None,
        cc=None,
        on_result=None,
    ):
        """Process generator: batched point lookups, traversed level-wise.

        All keys descend together: per tree level, the pages the batch
        needs issue as one prefetch wave in sorted page-id order, each
        visited page is decoded/charged once for the whole batch, and the
        in-page routing is numpy-vectorized
        (:class:`~repro.btree.batch.LevelWiseLookupBatch`).  Returns the
        rows aligned with ``keys`` (``None`` per miss); ``on_result(i, row)``
        fires as each key resolves, so callers can attribute per-op
        latency without waiting for batch stragglers.  ``cc`` selects the
        concurrency protocol exactly as for single-key serving.
        """
        batch = LevelWiseLookupBatch(
            self, keys, page_process_us=page_process_us, owner=owner, cc=cc
        )
        rows = yield from batch.run(reader, on_result=on_result)
        return rows

    def serve_scan(
        self,
        reader,
        start_key: int,
        end_key: int,
        page_process_us: float = 150.0,
        prefetch_depth: int = 4,
        max_pages: Optional[int] = None,
        owner=None,
    ):
        """Process generator: inclusive range scan over the shared substrate.

        Descends to the start leaf, then consumes the covering leaf pages in
        key order, keeping ``prefetch_depth`` jump-pointer prefetches in
        flight ahead of the consumption point.  Returns the number of
        entries in the range.  A leaf freed by a concurrent split/merge is
        skipped — its entries moved, they did not vanish.

        ``max_pages`` (the brownout ladder's truncation knob) caps the leaf
        pages visited: a truncated scan returns partial results — the entry
        count of the leaves actually read — instead of the full range.
        """
        env = reader.env
        for pid in self.index.page_path(start_key)[:-1]:
            yield from reader.demand(pid)
            yield env.timeout(page_process_us)
        # Resolve the covering leaf span only *after* the descent's blocking
        # reads: a split landing between the yields above re-routes the scan
        # instead of leaving it on the stale side of the boundary.  (The
        # epoch-checked cache makes this resolution O(1) when nothing moved;
        # splits during the span walk below are the same residual window
        # per-key lookups live with, and untruncated counts come from an
        # atomic fresh range_scan at the end.)
        firsts, pids = self.cached_leaf_map()
        lo = max(int(np.searchsorted(firsts, start_key, side="right")) - 1, 0)
        hi = max(int(np.searchsorted(firsts, end_key, side="right")) - 1, lo)
        span_pids = pids[lo : hi + 1]
        truncated = max_pages is not None and len(span_pids) > max_pages
        if truncated:
            span_pids = span_pids[:max_pages]
        issued = 0
        for index, pid in enumerate(span_pids):
            if prefetch_depth:
                while issued < min(index + prefetch_depth, len(span_pids)):
                    target = span_pids[issued]
                    if target in self.store:
                        reader.prefetch(target)
                    issued += 1
            if pid not in self.store:
                continue
            yield from reader.demand(pid)
            with reader.pool.pinned(pid, owner=owner):
                yield env.timeout(page_process_us)
        if truncated:
            return int(
                sum(self._entries_in_leaf_page(pid) for pid in span_pids if pid in self.store)
            )
        return int(self.index.range_scan(int(start_key), int(end_key)).count)

    def serve_insert(
        self,
        reader,
        disks,
        key: int,
        k2: int = 0,
        k3: int = 0,
        page_process_us: float = 150.0,
        owner=None,
    ):
        """Process generator: write-through insert on the shared substrate.

        Demand-pages the target leaf, applies the insert (heap append +
        index insert, instantaneous as in :meth:`insert`), then charges a
        synchronous write-through of the leaf to the disk array.  With
        logging enabled (:meth:`enable_wal`) the insert commits through the
        WAL first and the commit's log-device time is charged on the
        serving clock, so WAL durability latency shows up in serving
        percentiles.  Returns the new tuple id.
        """
        env = reader.env
        path = self.index.page_path(key)
        for pid in path[:-1]:
            yield from reader.demand(pid)
            yield env.timeout(page_process_us)
        leaf_pid = path[-1]
        yield from reader.demand(leaf_pid)
        with reader.pool.pinned(leaf_pid, owner=owner):
            yield env.timeout(page_process_us)
            row = self.insert(key, k2, k3)
        if self.wal is not None and self.wal.last_commit_write_us > 0:
            yield env.timeout(self.wal.last_commit_write_us)
        # Write-through: the mutated leaf goes straight back to its spindle.
        yield disks.write_page(leaf_pid)
        return row

    # -- the update path ------------------------------------------------------------

    def _txn(self):
        return self.wal.transaction() if self.wal is not None else nullcontext()

    def insert(self, key: int, k2: int = 0, k3: int = 0) -> int:
        """Insert a row and index it, atomically when logging is enabled.

        The heap append and the index insert (including any page splits it
        triggers) commit as one transaction; a crash between them leaves
        neither behind.  Returns the row's tuple id.
        """
        with self._txn():
            row = self.table.insert_row(key, k2, k3)
            self.index.insert(key, row + 1)  # index tids are 1-based
        return row

    def delete(self, key: int) -> bool:
        """Delete one index entry for ``key`` (heap rows are not reclaimed)."""
        with self._txn():
            return self.index.delete(key)

    # -- crash consistency ----------------------------------------------------------

    def enable_wal(
        self,
        plan: Optional[FaultPlan] = None,
        checkpoint_interval: int = 0,
        obs: Optional[Observability] = None,
    ) -> WalManager:
        """Turn on write-ahead logging (and, via ``plan``, crash injection).

        Returns the attached :class:`~repro.wal.WalManager`; from here on
        :meth:`insert`/:meth:`delete` are crash-atomic and page write-back
        is charged simulated disk time.  ``obs`` (optional) threads an
        observability bundle through the write path: WAL appends, commits,
        checkpoints and page flushes are then traced on the WAL's own I/O
        clock.
        """
        if self.wal is not None:
            raise RuntimeError("write-ahead logging is already enabled")
        self.wal = WalManager(
            self.index,
            plan=plan,
            disk=self.disk_params,
            checkpoint_interval=checkpoint_interval,
            obs=obs,
        )
        return self.wal

    def checkpoint(self) -> int:
        """Force committed-dirty pages to disk; returns pages flushed."""
        if self.wal is None:
            raise RuntimeError("write-ahead logging is not enabled")
        return self.wal.checkpoint()

    def crash_and_recover(self) -> RecoveryStats:
        """Discard all volatile state and rebuild from the durable image.

        Simulates a machine crash: the in-memory tree, buffer pool and heap
        table are thrown away; a fresh substrate is recovered from the
        WAL + durable pages (committed transactions survive, uncommitted
        ones vanish) and verified with the structural scrubber.  Logging is
        off afterwards — call :meth:`enable_wal` again to resume.
        """
        if self.wal is None:
            raise RuntimeError("write-ahead logging is not enabled")
        image = self.wal.crash_state()
        self.wal.detach()
        self.wal = None
        heap_page_ids = self.table.page_ids()

        def make_tree():
            env = TreeEnvironment(page_size=self.page_size, buffer_pages=64)
            return self._make_index(self.index_kind, self._num_rows_hint, env=env)

        tree, stats = recover(image, make_tree)
        self.index = tree
        self.env = tree.env
        self.store = tree.store
        self.table = HeapTable(self.store, self.schema)
        self.table.rebind(heap_page_ids)
        self.last_recovery = stats
        self._index_generation += 1
        self._leaf_map_cache = None
        return stats
