"""Mini DBMS: heap table + index-only scans with I/O prefetchers (Fig. 19)."""

from .engine import MiniDbms, QueryStats
from .table import DEFAULT_SCHEMA, HeapPage, HeapTable, RowSchema

__all__ = ["MiniDbms", "QueryStats", "DEFAULT_SCHEMA", "HeapPage", "HeapTable", "RowSchema"]
