"""Deterministic workload generation for the experiments.

All experiments in the paper follow the same recipe: bulkload N random keys
at some fill factor, optionally insert more keys to "mature" the tree, then
run a batch of random searches / insertions / deletions / range scans.
:class:`KeyWorkload` packages that recipe with a fixed seed so every index
sees byte-identical inputs and reruns are reproducible.
"""

from __future__ import annotations

import numpy as np

from ..btree.base import Index
from ..btree.keys import KEY4, KeySpec

__all__ = ["KeyWorkload", "build_mature_tree"]


class KeyWorkload:
    """A reproducible universe of keys plus query generators."""

    def __init__(
        self,
        num_keys: int,
        seed: int = 42,
        keyspec: KeySpec = KEY4,
        max_gap: int = 8,
    ) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        self.num_keys = num_keys
        self.keyspec = keyspec
        self.rng = np.random.default_rng(seed)
        # Sorted, unique, randomly-spaced keys via cumulative positive gaps.
        gaps = self.rng.integers(2, max(3, max_gap), size=num_keys, dtype=np.int64)
        keys = np.cumsum(gaps) + 10
        if int(keys[-1]) > keyspec.max_key:
            raise ValueError("key universe exceeds the key width")
        self.keys = keys.astype(keyspec.dtype)
        self.tids = (np.arange(num_keys, dtype=np.uint32) + 1)

    # -- building --------------------------------------------------------------

    def bulkload_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(keys, tids) for a full bulkload."""
        return self.keys, self.tids

    def split_for_maturity(self, bulk_fraction: float = 0.9):
        """Random split into (bulkload keys/tids, insert keys/tids).

        Mirrors the paper's mature-tree setup (Section 4.3.2): bulkload 90%
        of the keys, then insert the remaining 10% in random order.
        """
        if not 0.0 < bulk_fraction < 1.0:
            raise ValueError("bulk_fraction must be in (0, 1)")
        n_bulk = max(1, int(self.num_keys * bulk_fraction))
        chosen = np.sort(self.rng.choice(self.num_keys, size=n_bulk, replace=False))
        mask = np.zeros(self.num_keys, dtype=bool)
        mask[chosen] = True
        bulk_keys, bulk_tids = self.keys[mask], self.tids[mask]
        rest_keys, rest_tids = self.keys[~mask], self.tids[~mask]
        order = self.rng.permutation(len(rest_keys))
        return bulk_keys, bulk_tids, rest_keys[order], rest_tids[order]

    # -- queries ---------------------------------------------------------------------

    def search_keys(self, count: int, hit_ratio: float = 1.0) -> np.ndarray:
        """Random existing keys (plus misses if hit_ratio < 1)."""
        picks = self.rng.choice(self.keys, size=count).astype(np.int64)
        if hit_ratio < 1.0:
            misses = self.rng.random(count) >= hit_ratio
            picks[misses] += 1  # gaps are >= 2, so key+1 never exists
        return picks

    def insert_keys(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Random new keys (in existing gaps) with fresh tuple ids."""
        indices = self.rng.choice(self.num_keys, size=count)
        new_keys = self.keys[indices].astype(np.int64) + 1
        new_tids = np.arange(count, dtype=np.uint32) + self.num_keys + 1
        return new_keys, new_tids

    def delete_keys(self, count: int) -> np.ndarray:
        """Random distinct existing keys to delete."""
        count = min(count, self.num_keys)
        indices = self.rng.choice(self.num_keys, size=count, replace=False)
        return self.keys[indices].astype(np.int64)

    def range_scans(self, count: int, span: int) -> list[tuple[int, int]]:
        """Random ranges each covering exactly ``span`` stored entries."""
        if span < 1 or span > self.num_keys:
            raise ValueError(f"span {span} out of range")
        ranges = []
        for __ in range(count):
            start = int(self.rng.integers(0, self.num_keys - span + 1))
            ranges.append((int(self.keys[start]), int(self.keys[start + span - 1])))
        return ranges


def build_mature_tree(index: Index, workload: KeyWorkload, bulk_fraction: float = 0.9) -> None:
    """Bulkload most keys, then insert the rest (the paper's mature trees)."""
    bulk_keys, bulk_tids, rest_keys, rest_tids = workload.split_for_maturity(bulk_fraction)
    index.bulkload(bulk_keys, bulk_tids)
    for key, tid in zip(rest_keys.tolist(), rest_tids.tolist()):
        index.insert(int(key), int(tid))
