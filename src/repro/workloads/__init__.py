"""Reproducible workload generators."""

from .generator import KeyWorkload, build_mature_tree

__all__ = ["KeyWorkload", "build_mature_tree"]
