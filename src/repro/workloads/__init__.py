"""Reproducible workload generators."""

from .generator import KeyWorkload, build_mature_tree
from .ops import (
    FreshKeys,
    KeyDistribution,
    MixedOpStream,
    OpMix,
    OpSample,
    RangeFreshKeys,
    sample_ops,
)

__all__ = [
    "KeyWorkload",
    "build_mature_tree",
    "FreshKeys",
    "RangeFreshKeys",
    "KeyDistribution",
    "MixedOpStream",
    "OpMix",
    "OpSample",
    "sample_ops",
]
