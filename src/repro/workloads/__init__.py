"""Reproducible workload generators."""

from .generator import KeyWorkload, build_mature_tree
from .ops import FreshKeys, MixedOpStream, OpMix

__all__ = ["KeyWorkload", "build_mature_tree", "FreshKeys", "MixedOpStream", "OpMix"]
