"""Mixed-operation request streams for the serving layer.

A :class:`MixedOpStream` turns a :class:`~repro.workloads.generator.KeyWorkload`
key universe into an endless, seeded sequence of server operations — point
lookups, range scans and inserts in a configurable :class:`OpMix` — one
stream per client session, so every session draws an independent but
reproducible request sequence.

Insert keys are *not* drawn here: concurrent sessions would collide on
them.  A stream emits ``("insert", None)`` and the server materializes a
fresh key from its shared :class:`FreshKeys` allocator at execution time,
which keeps the key sequence a pure function of the (deterministic) DES
execution order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["OpMix", "MixedOpStream", "FreshKeys"]


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the three served operation kinds.

    Weights need not sum to one; they are normalized.  ``scan_span`` is the
    number of stored entries each range scan covers.
    """

    lookup: float = 0.70
    scan: float = 0.20
    insert: float = 0.10
    scan_span: int = 64

    def __post_init__(self) -> None:
        for name in ("lookup", "scan", "insert"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be >= 0, got {getattr(self, name)}")
        if self.lookup + self.scan + self.insert <= 0:
            raise ValueError("at least one op weight must be positive")
        if self.scan_span < 1:
            raise ValueError(f"scan_span must be >= 1, got {self.scan_span}")

    def cumulative(self) -> tuple[float, float]:
        """(P[lookup], P[lookup or scan]) — the draw thresholds."""
        total = self.lookup + self.scan + self.insert
        return self.lookup / total, (self.lookup + self.scan) / total


class FreshKeys:
    """Shared allocator of never-before-seen insert keys.

    Hands out ``start, start + stride, ...``; with ``stride >= 2`` and
    ``start`` past the existing key universe (whose gaps are >= 2), no
    allocated key ever collides with a stored or future key.
    """

    def __init__(self, start: int, stride: int = 2) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self._next = int(start)
        self._stride = int(stride)
        self.taken = 0

    def take(self) -> int:
        key = self._next
        self._next += self._stride
        self.taken += 1
        return key


class MixedOpStream:
    """Seeded, endless stream of server operations over a key universe.

    ``next_op()`` returns one of::

        ("lookup", key)            # an existing key
        ("scan", start_key, end_key)   # covers ~scan_span stored entries
        ("insert", None)           # key assigned by the server's FreshKeys

    Two streams with the same ``(keys, mix, seed)`` produce identical
    sequences; distinct seeds give independent sequences.
    """

    def __init__(self, keys: np.ndarray, mix: Optional[OpMix] = None, seed: int = 0) -> None:
        self.keys = np.asarray(keys)
        if self.keys.size == 0:
            raise ValueError("op stream needs a non-empty key universe")
        self.mix = mix if mix is not None else OpMix()
        if self.mix.scan_span > self.keys.size:
            raise ValueError(
                f"scan_span {self.mix.scan_span} exceeds the {self.keys.size}-key universe"
            )
        self._rng = random.Random((seed << 12) ^ 0x0B5E55ED)
        self._lookup_below, self._scan_below = self.mix.cumulative()

    def next_op(self) -> tuple:
        draw = self._rng.random()
        if draw < self._lookup_below:
            index = self._rng.randrange(self.keys.size)
            return ("lookup", int(self.keys[index]))
        if draw < self._scan_below:
            start = self._rng.randrange(self.keys.size - self.mix.scan_span + 1)
            return (
                "scan",
                int(self.keys[start]),
                int(self.keys[start + self.mix.scan_span - 1]),
            )
        return ("insert", None)
