"""Mixed-operation request streams for the serving layer.

A :class:`MixedOpStream` turns a :class:`~repro.workloads.generator.KeyWorkload`
key universe into an endless, seeded sequence of server operations — point
lookups, range scans and inserts in a configurable :class:`OpMix` — one
stream per client session, so every session draws an independent but
reproducible request sequence.

Insert keys are *not* drawn here: concurrent sessions would collide on
them.  A stream emits ``("insert", None)`` and the server materializes a
fresh key from its shared :class:`FreshKeys` allocator at execution time,
which keeps the key sequence a pure function of the (deterministic) DES
execution order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = [
    "OpMix",
    "MixedOpStream",
    "FreshKeys",
    "RangeFreshKeys",
    "KeyDistribution",
    "OpSample",
    "sample_ops",
]


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the three served operation kinds.

    Weights need not sum to one; they are normalized.  ``scan_span`` is the
    number of stored entries each range scan covers.
    """

    lookup: float = 0.70
    scan: float = 0.20
    insert: float = 0.10
    scan_span: int = 64

    def __post_init__(self) -> None:
        for name in ("lookup", "scan", "insert"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be >= 0, got {getattr(self, name)}")
        if self.lookup + self.scan + self.insert <= 0:
            raise ValueError("at least one op weight must be positive")
        if self.scan_span < 1:
            raise ValueError(f"scan_span must be >= 1, got {self.scan_span}")

    def cumulative(self) -> tuple[float, float]:
        """(P[lookup], P[lookup or scan]) — the draw thresholds."""
        total = self.lookup + self.scan + self.insert
        return self.lookup / total, (self.lookup + self.scan) / total


class KeyDistribution:
    """A seeded popularity distribution over key-universe *positions*.

    Positions are ranks into the sorted key universe (``0 .. n-1``); the
    serving layer maps a drawn position to the stored key at that rank.
    Two shapes are provided:

    * :meth:`uniform` — every position equally likely (the historical
      behaviour of :class:`MixedOpStream`).
    * :meth:`zipf` — *block-Zipf* skew: the universe is cut into
      ``blocks`` contiguous blocks, block popularity follows a Zipf law
      over a seeded permutation of the blocks, and draws are uniform
      within a block.  Permuting block ranks scatters the hot blocks
      across the key space (instead of piling all mass onto position 0,
      the degenerate textbook Zipf) while keeping the spatial locality
      that makes shard-boundary placement a real optimization problem:
      hot *regions* exist, and a boundary through one is expensive.

    Draws consume exactly one ``rng.random()`` each, so swapping the
    distribution never perturbs the rest of a seeded op stream.
    """

    __slots__ = ("n", "_cdf")

    def __init__(self, weights) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("distribution needs a non-empty 1-d weight vector")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with a positive sum")
        self.n = int(w.size)
        self._cdf = np.cumsum(w) / w.sum()

    @classmethod
    def uniform(cls, n: int) -> "KeyDistribution":
        return cls(np.ones(int(n)))

    @classmethod
    def zipf(
        cls, n: int, theta: float = 1.05, blocks: int = 64, seed: int = 0
    ) -> "KeyDistribution":
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        n = int(n)
        num_blocks = max(1, min(int(blocks), n))
        edges = np.linspace(0, n, num_blocks + 1).astype(np.int64)
        ranks = np.random.default_rng(seed).permutation(num_blocks)
        weights = np.empty(n, dtype=np.float64)
        for b in range(num_blocks):
            lo, hi = int(edges[b]), int(edges[b + 1])
            block_mass = 1.0 / float(ranks[b] + 1) ** theta
            weights[lo:hi] = block_mass / max(hi - lo, 1)
        return cls(weights)

    def draw(self, rng: random.Random) -> int:
        """One position, using a single uniform draw from ``rng``."""
        u = rng.random()
        return min(int(np.searchsorted(self._cdf, u, side="right")), self.n - 1)

    def position_weights(self) -> np.ndarray:
        """Per-position probability mass (sums to 1)."""
        pdf = np.diff(self._cdf, prepend=0.0)
        return pdf


def _resolve_distribution(
    distribution: Union[None, str, KeyDistribution], n: int, seed: int = 0
) -> Optional[KeyDistribution]:
    """``None``/``"uniform"`` -> None (fast uniform path); ``"zipf"`` -> default block-Zipf.

    ``"zipf:THETA"`` (e.g. ``"zipf:1.4"``) selects the block-Zipf shape
    with an explicit skew exponent — the form the scenario specs compile
    to, so a spec's ``zipf_theta`` travels through the same string channel
    as the plain shapes.
    """
    if distribution is None or distribution == "uniform":
        return None
    if distribution == "zipf":
        return KeyDistribution.zipf(n, seed=seed)
    if isinstance(distribution, str) and distribution.startswith("zipf:"):
        try:
            theta = float(distribution.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad zipf theta in distribution {distribution!r}; use 'zipf:1.4'"
            ) from None
        return KeyDistribution.zipf(n, theta=theta, seed=seed)
    if isinstance(distribution, KeyDistribution):
        if distribution.n != n:
            raise ValueError(
                f"distribution is over {distribution.n} positions, universe has {n}"
            )
        return distribution
    raise ValueError(f"unknown distribution {distribution!r}")


class FreshKeys:
    """Shared allocator of never-before-seen insert keys.

    Hands out ``start, start + stride, ...``; with ``stride >= 2`` and
    ``start`` past the existing key universe (whose gaps are >= 2), no
    allocated key ever collides with a stored or future key.
    """

    def __init__(self, start: int, stride: int = 2) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self._next = int(start)
        self._stride = int(stride)
        self.taken = 0

    def take(self) -> int:
        key = self._next
        self._next += self._stride
        self.taken += 1
        return key


class MixedOpStream:
    """Seeded, endless stream of server operations over a key universe.

    ``next_op()`` returns one of::

        ("lookup", key)            # an existing key
        ("scan", start_key, end_key)   # covers ~scan_span stored entries
        ("insert", None)           # key assigned by the server's FreshKeys

    Two streams with the same ``(keys, mix, seed)`` produce identical
    sequences; distinct seeds give independent sequences.
    """

    def __init__(
        self,
        keys: np.ndarray,
        mix: Optional[OpMix] = None,
        seed: int = 0,
        distribution: Union[None, str, "KeyDistribution"] = None,
    ) -> None:
        self.keys = np.asarray(keys)
        if self.keys.size == 0:
            raise ValueError("op stream needs a non-empty key universe")
        self.mix = mix if mix is not None else OpMix()
        if self.mix.scan_span > self.keys.size:
            raise ValueError(
                f"scan_span {self.mix.scan_span} exceeds the {self.keys.size}-key universe"
            )
        self._rng = random.Random((seed << 12) ^ 0x0B5E55ED)
        self._lookup_below, self._scan_below = self.mix.cumulative()
        self._dist = _resolve_distribution(distribution, self.keys.size, seed=0)

    def next_op(self) -> tuple:
        draw = self._rng.random()
        if draw < self._lookup_below:
            if self._dist is None:
                index = self._rng.randrange(self.keys.size)
            else:
                index = self._dist.draw(self._rng)
            return ("lookup", int(self.keys[index]))
        if draw < self._scan_below:
            if self._dist is None:
                start = self._rng.randrange(self.keys.size - self.mix.scan_span + 1)
            else:
                start = min(self._dist.draw(self._rng), self.keys.size - self.mix.scan_span)
            return (
                "scan",
                int(self.keys[start]),
                int(self.keys[start + self.mix.scan_span - 1]),
            )
        return ("insert", None)


@dataclass(frozen=True)
class OpSample:
    """A seeded sample of operations, as key-universe *positions*.

    This is the boundary planner's input: where lookups land, where scans
    start (each covering ``scan_span`` consecutive positions), and how
    many inserts were drawn.  Positions, not keys, so the planner works in
    rank space and snaps to stored keys at the end.
    """

    lookups: np.ndarray
    scan_starts: np.ndarray
    scan_span: int
    inserts: int


def sample_ops(
    universe_size: int,
    mix: Optional[OpMix] = None,
    distribution: Union[None, str, KeyDistribution] = None,
    count: int = 4096,
    seed: int = 0,
) -> OpSample:
    """Draw ``count`` operations the way a :class:`MixedOpStream` would.

    The same thresholds-then-position draw sequence is used, so a sample
    with the same ``(mix, distribution)`` shape is statistically faithful
    to what the load generators will offer — which is what makes a
    boundary plan computed from it transfer to the live run.
    """
    mix = mix if mix is not None else OpMix()
    if mix.scan_span > universe_size:
        raise ValueError(
            f"scan_span {mix.scan_span} exceeds the {universe_size}-key universe"
        )
    dist = _resolve_distribution(distribution, universe_size, seed=0)
    rng = random.Random((seed << 12) ^ 0x5A3B1E)
    lookup_below, scan_below = mix.cumulative()
    lookups: list[int] = []
    scan_starts: list[int] = []
    inserts = 0
    for _ in range(int(count)):
        draw = rng.random()
        if draw < lookup_below:
            pos = rng.randrange(universe_size) if dist is None else dist.draw(rng)
            lookups.append(pos)
        elif draw < scan_below:
            if dist is None:
                pos = rng.randrange(universe_size - mix.scan_span + 1)
            else:
                pos = min(dist.draw(rng), universe_size - mix.scan_span)
            scan_starts.append(pos)
        else:
            inserts += 1
    return OpSample(
        lookups=np.asarray(lookups, dtype=np.int64),
        scan_starts=np.asarray(scan_starts, dtype=np.int64),
        scan_span=mix.scan_span,
        inserts=inserts,
    )


class RangeFreshKeys:
    """Fresh-key allocator constrained to one shard's key range.

    A shard owning ``[lo, hi)`` may only mint insert keys inside that
    range, or a routed insert would land rows on the wrong shard.  The
    key universe has gaps >= 2 between stored keys, so ``stored_key + 1``
    is always free; this allocator walks the shard's stored keys and
    hands out each successor once.  With shard boundaries snapped to
    stored key values, ``last_stored + 1 < hi`` always holds, so every
    minted key stays strictly in-range — which :meth:`take` asserts.
    """

    def __init__(self, shard_keys: np.ndarray, lo: Optional[int], hi: Optional[int]) -> None:
        keys = np.asarray(shard_keys, dtype=np.int64)
        if keys.size == 0:
            raise ValueError("a shard's fresh-key allocator needs at least one stored key")
        self.lo = lo
        self.hi = hi
        if lo is not None and int(keys[0]) < lo:
            raise ValueError(f"stored key {int(keys[0])} below shard range start {lo}")
        if hi is not None and int(keys[-1]) >= hi:
            raise ValueError(f"stored key {int(keys[-1])} at or above shard range end {hi}")
        self._candidates = keys + 1
        if hi is not None and int(self._candidates[-1]) >= hi:
            # Unreachable when boundaries are snapped to stored keys (gap >= 2),
            # but guard the invariant rather than silently leak a key.
            self._candidates = self._candidates[self._candidates < hi]
        self.taken = 0
        self.minted: list[int] = []

    def take(self) -> int:
        if self.taken >= self._candidates.size:
            raise RuntimeError(
                f"shard fresh-key allocator exhausted after {self.taken} inserts"
            )
        key = int(self._candidates[self.taken])
        self.taken += 1
        self.minted.append(key)
        return key
