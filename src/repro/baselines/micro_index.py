"""Micro-indexing B+-Tree (Lomet's intra-page micro-index, paper Figure 4).

A micro-indexed page is a disk-optimized page with a small extra array — the
*micro-index* — holding the first key of every key sub-array.  A search
first probes the (prefetched) micro-index to pick the sub-array, then binary
searches only that sub-array, cutting the probe misses per page from
~log2(entries/line) + log2(line) to two prefetched fetches.

The micro-index values are always ``keys[j * m]``, so this implementation
derives them from the key array instead of storing a copy — the layout
reserves the region and every search and update is *charged* for reading and
maintaining it, which is what the performance model needs.  Crucially, the
big sorted key/pointer arrays are untouched: insertions still shift half the
page on average, which is why micro-indexing matches fpB+-Trees on search
but collapses on updates (paper Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..btree.context import TreeEnvironment
from ..btree.keys import TUPLE_ID_SIZE
from ..btree.search import traced_searchsorted
from ..core.optimizer import PAGE_HEADER_BYTES, micro_page_capacity, optimize_micro_index
from .disk_btree import DiskBPlusTree, DiskPage

__all__ = ["MicroIndexTree", "MicroPageLayout"]


@dataclass(frozen=True)
class MicroPageLayout:
    """Byte offsets inside a micro-indexed page.

    Layout: header | micro-index (line-aligned) | key array (line-aligned,
    sub-arrays of ``subarray_keys`` keys) | pointer array.
    """

    page_size: int
    key_size: int
    ptr_size: int
    capacity: int
    subarray_keys: int
    num_subarrays: int
    micro_offset: int
    key_offset: int
    ptr_offset: int

    @classmethod
    def compute(
        cls,
        page_size: int,
        key_size: int,
        subarray_bytes: Optional[int] = None,
        line_size: int = 64,
        t1: int = 150,
        tnext: int = 10,
    ) -> "MicroPageLayout":
        if subarray_bytes is None:
            shape = optimize_micro_index(
                page_size, key_size=key_size, line_size=line_size, t1=t1, tnext=tnext
            )
        else:
            shape = micro_page_capacity(page_size, subarray_bytes, key_size, TUPLE_ID_SIZE, line_size)
        micro_offset = PAGE_HEADER_BYTES
        key_offset = micro_offset + shape.micro_bytes
        key_bytes = -(-shape.capacity * key_size // line_size) * line_size
        ptr_offset = key_offset + key_bytes
        return cls(
            page_size=page_size,
            key_size=key_size,
            ptr_size=TUPLE_ID_SIZE,
            capacity=shape.capacity,
            subarray_keys=shape.subarray_keys,
            num_subarrays=shape.num_subarrays,
            micro_offset=micro_offset,
            key_offset=key_offset,
            ptr_offset=ptr_offset,
        )

    def micro_address(self, base: int, index: int) -> int:
        return base + self.micro_offset + index * self.key_size

    def key_address(self, base: int, slot: int) -> int:
        return base + self.key_offset + slot * self.key_size

    def ptr_address(self, base: int, slot: int) -> int:
        return base + self.ptr_offset + slot * self.ptr_size

    def subarray_of(self, slot: int) -> int:
        return slot // self.subarray_keys

    def used_subarrays(self, count: int) -> int:
        return -(-count // self.subarray_keys) if count else 0


class MicroIndexTree(DiskBPlusTree):
    """Disk-optimized B+-Tree with per-page micro-indexes."""

    name = "micro-indexing"

    def __init__(
        self,
        env: Optional[TreeEnvironment] = None,
        subarray_bytes: Optional[int] = None,
        **env_kwargs,
    ) -> None:
        super().__init__(env, **env_kwargs)
        self.layout = MicroPageLayout.compute(
            self.env.page_size, self.env.keyspec.size, subarray_bytes
        )
        # Rebuild the (empty) root page under the new layout.
        self.store.replace(self.root_pid, DiskPage(self.layout, 0, self.keyspec.dtype))

    # -- two-level in-page search -------------------------------------------------

    def _pick_subarray(
        self, page: DiskPage, base: int, key: int, side: str = "right"
    ) -> tuple[int, int]:
        """Choose the key sub-array for ``key``; returns (start, end) slots.

        Prefetches the micro-index region, binary searches it (the values
        are the first key of each sub-array), then prefetches the selected
        key and pointer sub-arrays together.
        """
        layout = self.layout
        used = layout.used_subarrays(page.count)
        if used <= 1:
            start, end = 0, page.count
            self.tracer.prefetch(layout.key_address(base, 0), page.count * layout.key_size)
            self.tracer.prefetch(layout.ptr_address(base, 0), page.count * layout.ptr_size)
            return start, end
        self.tracer.prefetch(layout.micro_address(base, 0), used * layout.key_size)
        # Virtual micro-index: entry j is keys[j * m].
        m = layout.subarray_keys
        lo, hi = 0, used
        while lo < hi:
            mid = (lo + hi) // 2
            self.tracer.probe(layout.micro_address(base, mid), layout.key_size)
            value = int(page.keys[mid * m])
            if (key < value) if side == "right" else (key <= value):
                hi = mid
            else:
                lo = mid + 1
        subarray = max(lo - 1, 0)
        start = subarray * m
        end = min(start + m, page.count)
        span = end - start
        self.tracer.prefetch(layout.key_address(base, start), span * layout.key_size)
        self.tracer.prefetch(layout.ptr_address(base, start), span * layout.ptr_size)
        return start, end

    def _locate_child(self, page: DiskPage, base: int, key: int, side: str = "right") -> int:
        start, end = self._pick_subarray(page, base, key, side=side)
        inner = traced_searchsorted(
            page.keys[start:end], end - start, key,
            self.layout.key_address(base, start), self.layout.key_size, self.tracer,
            side=side,
        )
        return max(start + inner - 1, 0)

    def _locate_slot(self, page: DiskPage, base: int, key: int) -> int:
        # Left-biased sub-array choice keeps the semantics identical to a
        # global bisect_left even when duplicates span sub-array boundaries.
        start, end = self._pick_subarray(page, base, key, side="left")
        inner = traced_searchsorted(
            page.keys[start:end], end - start, key,
            self.layout.key_address(base, start), self.layout.key_size, self.tracer,
            side="left",
        )
        return start + inner

    # -- micro-index maintenance costs ----------------------------------------------

    def _charge_micro_rebuild(self, page: DiskPage, base: int, from_slot: int) -> None:
        """Charge refreshing micro entries from ``from_slot``'s sub-array on.

        An insertion or deletion shifts every key at or after the affected
        slot, so the first key of every later sub-array changes.
        """
        layout = self.layout
        used = layout.used_subarrays(page.count)
        first = layout.subarray_of(min(from_slot, max(page.count - 1, 0)))
        for j in range(first, used):
            self.tracer.read(layout.key_address(base, j * layout.subarray_keys), layout.key_size)
            self.tracer.write(layout.micro_address(base, j), layout.key_size)

    def _insert_into_page(self, page: DiskPage, base: int, slot: int, key: int, ptr: int) -> None:
        super()._insert_into_page(page, base, slot, key, ptr)
        self._charge_micro_rebuild(page, base, slot)

    def _after_page_rebuild(self, page: DiskPage, base: int) -> None:
        self._charge_micro_rebuild(page, base, 0)

    def _after_entry_removed(self, page: DiskPage, base: int, slot: int) -> None:
        self._charge_micro_rebuild(page, base, slot)
