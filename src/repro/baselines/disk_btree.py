"""Disk-optimized B+-Tree — the paper's baseline index (Figure 3(a)).

Each tree node is one disk page.  A page holds a small header plus two
parallel sorted arrays: keys, and either child page ids (non-leaf) or tuple
ids (leaf).  Keys and pointers are partitioned into separate arrays for
better cache behaviour, as the paper's implementation does (Section 4.1).

This structure is I/O-optimal but cache-hostile: a binary search over the
page-sized key array probes widely-separated cache lines (each a miss), and
insertion shifts half the page's entries on average.  Those two costs are
exactly what the fpB+-Trees attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..btree.base import Index, IndexCorruptionError, ScanResult, as_key_array, chunk_evenly
from ..btree.context import TreeEnvironment
from ..btree.keys import INVALID_PAGE_ID, PAGE_ID_SIZE, TUPLE_ID_SIZE
from ..btree.search import child_slot, insertion_slot
from ..mem.layout import align_up

__all__ = ["DiskBPlusTree", "DiskPageLayout", "DiskPage"]

PAGE_HEADER_SIZE = 64  # one cache line of control information


@dataclass(frozen=True)
class DiskPageLayout:
    """Byte offsets of the arrays inside a disk-optimized page."""

    page_size: int
    key_size: int
    ptr_size: int
    capacity: int
    key_offset: int
    ptr_offset: int

    @classmethod
    def compute(cls, page_size: int, key_size: int, ptr_size: int = PAGE_ID_SIZE) -> "DiskPageLayout":
        usable = page_size - PAGE_HEADER_SIZE
        if usable <= 0:
            raise ValueError(f"page size {page_size} too small for header")
        capacity = usable // (key_size + ptr_size)
        key_offset = PAGE_HEADER_SIZE
        ptr_offset = align_up(key_offset + capacity * key_size, ptr_size)
        while ptr_offset + capacity * ptr_size > page_size:
            capacity -= 1
            ptr_offset = align_up(key_offset + capacity * key_size, ptr_size)
        if capacity < 2:
            raise ValueError(f"page size {page_size} holds fewer than 2 entries")
        return cls(page_size, key_size, ptr_size, capacity, key_offset, ptr_offset)

    def key_address(self, base: int, slot: int) -> int:
        return base + self.key_offset + slot * self.key_size

    def ptr_address(self, base: int, slot: int) -> int:
        return base + self.ptr_offset + slot * self.ptr_size


class DiskPage:
    """One page-sized tree node."""

    __slots__ = ("level", "count", "keys", "ptrs", "next_leaf", "prev_leaf")

    def __init__(self, layout: DiskPageLayout, level: int, key_dtype: np.dtype) -> None:
        self.level = level  # 0 = leaf
        self.count = 0
        self.keys = np.zeros(layout.capacity, dtype=key_dtype)
        self.ptrs = np.zeros(layout.capacity, dtype=np.uint32)
        self.next_leaf = INVALID_PAGE_ID
        self.prev_leaf = INVALID_PAGE_ID


class DiskBPlusTree(Index):
    """Classic page-per-node B+-Tree over the simulated substrate."""

    name = "disk-optimized B+tree"

    def __init__(self, env: Optional[TreeEnvironment] = None, **env_kwargs) -> None:
        self.env = env if env is not None else TreeEnvironment(**env_kwargs)
        self.layout = DiskPageLayout.compute(self.env.page_size, self.env.keyspec.size)
        self.store = self.env.store
        self.pool = self.env.pool
        self.tracer = self.env.tracer
        self.keyspec = self.env.keyspec
        self.root_pid = self._new_page(level=0)
        self.height = 1
        self.first_leaf_pid = self.root_pid
        self._entries = 0
        self.leaf_splits = 0
        self.page_splits = 0

    # -- page helpers ---------------------------------------------------------

    def _new_page(self, level: int) -> int:
        page = DiskPage(self.layout, level, self.keyspec.dtype)
        return self.store.allocate(page)

    def _page(self, pid: int) -> tuple[DiskPage, int]:
        """Access a page through the buffer pool; returns (page, base address)."""
        page, base = self.pool.access(pid)
        self.tracer.read(base, 16)  # header: level, count, links
        return page, base

    # -- public interface -----------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._entries

    @property
    def num_pages(self) -> int:
        return self.store.num_pages

    def bulkload(self, keys: Sequence[int], tids: Sequence[int], fill: float = 1.0) -> None:
        fill = self.check_fill(fill)
        keys = as_key_array(keys, self.keyspec)
        tids = np.asarray(tids, dtype=np.uint32)
        if keys.shape != tids.shape:
            raise ValueError("keys and tids must have the same length")
        if np.any(keys[:-1] > keys[1:]):
            raise ValueError("bulkload requires sorted keys")
        if self._entries:
            raise RuntimeError("bulkload requires an empty tree")
        if keys.size == 0:
            return
        self.store.free(self.root_pid)
        self.pool.invalidate(self.root_pid)

        per_node = max(2, int(self.layout.capacity * fill))
        # Build the leaf level.
        level_pids: list[int] = []
        level_firsts: list[int] = []
        start = 0
        prev_pid = INVALID_PAGE_ID
        for size in chunk_evenly(len(keys), per_node):
            pid = self._new_page(level=0)
            page = self.store.page(pid)
            page.keys[:size] = keys[start : start + size]
            page.ptrs[:size] = tids[start : start + size]
            page.count = size
            page.prev_leaf = prev_pid
            if prev_pid != INVALID_PAGE_ID:
                self.store.page(prev_pid).next_leaf = pid
            level_pids.append(pid)
            level_firsts.append(int(keys[start]))
            prev_pid = pid
            start += size
        self.first_leaf_pid = level_pids[0]

        # Build non-leaf levels until a single root remains.
        level = 1
        while len(level_pids) > 1:
            parent_pids: list[int] = []
            parent_firsts: list[int] = []
            start = 0
            for size in chunk_evenly(len(level_pids), per_node):
                pid = self._new_page(level=level)
                page = self.store.page(pid)
                page.keys[:size] = level_firsts[start : start + size]
                page.ptrs[:size] = level_pids[start : start + size]
                page.count = size
                parent_pids.append(pid)
                parent_firsts.append(level_firsts[start])
                start += size
            level_pids, level_firsts = parent_pids, parent_firsts
            level += 1

        self.root_pid = level_pids[0]
        self.height = level
        self._entries = int(keys.size)

    # -- in-page search hooks (overridden by micro-indexing) -----------------

    def _locate_child(self, page: DiskPage, base: int, key: int, side: str = "right") -> int:
        """Traced search for the child slot within a non-leaf page."""
        return child_slot(
            page.keys, page.count, key,
            self.layout.key_address(base, 0), self.layout.key_size, self.tracer,
            side=side,
        )

    def _after_page_rebuild(self, page: DiskPage, base: int) -> None:
        """Hook: auxiliary structures must be rebuilt after a page split."""

    def _after_entry_removed(self, page: DiskPage, base: int, slot: int) -> None:
        """Hook: auxiliary structures must be fixed after a deletion shift."""

    def _locate_slot(self, page: DiskPage, base: int, key: int) -> int:
        """Traced search for the insertion slot within a leaf page."""
        return insertion_slot(
            page.keys, page.count, key,
            self.layout.key_address(base, 0), self.layout.key_size, self.tracer,
        )

    def _descend(self, key: int, record_path: bool = False, side: str = "right"):
        """Walk from the root to the leaf for ``key``.

        Returns ``(leaf_pid, leaf_page, leaf_base, path)`` where path is a
        list of ``(pid, slot)`` for each non-leaf page visited.
        """
        path: list[tuple[int, int]] = []
        pid = self.root_pid
        page, base = self._page(pid)
        while page.level > 0:
            self.tracer.visit_node()
            slot = self._locate_child(page, base, key, side=side)
            self.tracer.read(self.layout.ptr_address(base, slot), self.layout.ptr_size)
            if record_path:
                path.append((pid, slot))
            pid = int(page.ptrs[slot])
            page, base = self._page(pid)
        return pid, page, base, path

    def search(self, key: int) -> Optional[int]:
        self.tracer.call_overhead()
        __, leaf, base, __ = self._descend(key)
        self.tracer.visit_node()
        slot = self._locate_slot(leaf, base, key)
        if slot < leaf.count and int(leaf.keys[slot]) == key:
            self.tracer.read(self.layout.ptr_address(base, slot), TUPLE_ID_SIZE)
            return int(leaf.ptrs[slot])
        return None

    # -- insertion ---------------------------------------------------------------

    def insert(self, key: int, tid: int) -> None:
        self.tracer.call_overhead()
        with self._update_txn():
            pid, leaf, base, path = self._descend(key, record_path=True)
            slot = self._locate_slot(leaf, base, key)
            if leaf.count < self.layout.capacity:
                self._insert_into_page(leaf, base, slot, key, tid)
                self.store.mark_dirty(pid)
            else:
                self._split_and_insert(pid, leaf, path, slot, key, tid, is_leaf=True)
            self._entries += 1

    def _insert_into_page(self, page: DiskPage, base: int, slot: int, key: int, ptr: int) -> None:
        """Shift entries right of ``slot`` and write the new entry."""
        moved = page.count - slot
        if moved > 0:
            page.keys[slot + 1 : page.count + 1] = page.keys[slot:page.count].copy()
            page.ptrs[slot + 1 : page.count + 1] = page.ptrs[slot:page.count].copy()
            self.tracer.move(
                self.layout.key_address(base, slot + 1),
                self.layout.key_address(base, slot),
                moved * self.layout.key_size,
            )
            self.tracer.move(
                self.layout.ptr_address(base, slot + 1),
                self.layout.ptr_address(base, slot),
                moved * self.layout.ptr_size,
            )
        page.keys[slot] = key
        page.ptrs[slot] = ptr
        page.count += 1
        self.tracer.write(self.layout.key_address(base, slot), self.layout.key_size)
        self.tracer.write(self.layout.ptr_address(base, slot), self.layout.ptr_size)
        self.tracer.write(base, 4)  # count field in the header

    def _split_and_insert(
        self,
        pid: int,
        page: DiskPage,
        path: list[tuple[int, int]],
        slot: int,
        key: int,
        ptr: int,
        is_leaf: bool,
    ) -> None:
        """Split a full page, insert the entry, and update the parent."""
        self.page_splits += 1
        if is_leaf:
            self.leaf_splits += 1
        new_pid = self._new_page(level=page.level)
        new_page = self.store.page(new_pid)
        half = page.count // 2
        moved = page.count - half
        new_page.keys[:moved] = page.keys[half:page.count]
        new_page.ptrs[:moved] = page.ptrs[half:page.count]
        new_page.count = moved
        page.count = half
        base = self.pool.address_of(pid)
        new_base = self.pool.address_of(new_pid)
        self.tracer.move(
            self.layout.key_address(new_base, 0),
            self.layout.key_address(base, half),
            moved * self.layout.key_size,
        )
        self.tracer.move(
            self.layout.ptr_address(new_base, 0),
            self.layout.ptr_address(base, half),
            moved * self.layout.ptr_size,
        )
        if is_leaf:
            new_page.next_leaf = page.next_leaf
            new_page.prev_leaf = pid
            if page.next_leaf != INVALID_PAGE_ID:
                self.store.page(page.next_leaf).prev_leaf = new_pid
                self.store.mark_dirty(page.next_leaf)
            page.next_leaf = new_pid
        self._after_page_rebuild(page, base)
        self._after_page_rebuild(new_page, new_base)

        # Insert the pending entry into the correct half.
        if slot <= half and not (slot == half and not is_leaf):
            self._insert_into_page(page, base, slot, key, ptr)
        else:
            self._insert_into_page(new_page, new_base, slot - half, key, ptr)
        self.store.mark_dirty(pid)
        self.store.mark_dirty(new_pid)

        separator = int(new_page.keys[0])
        self._insert_into_parent(path, pid, separator, new_pid)

    def _insert_into_parent(self, path: list[tuple[int, int]], left_pid: int, key: int, right_pid: int) -> None:
        if not path:
            # The split page was the root: grow the tree.
            old_root = self.store.page(left_pid)
            new_root_pid = self._new_page(level=old_root.level + 1)
            new_root = self.store.page(new_root_pid)
            left_first = int(old_root.keys[0]) if old_root.count else 0
            new_root.keys[0] = min(left_first, key)
            new_root.ptrs[0] = left_pid
            new_root.keys[1] = key
            new_root.ptrs[1] = right_pid
            new_root.count = 2
            self.root_pid = new_root_pid
            self.height += 1
            base = self.pool.address_of(new_root_pid)
            self.tracer.write(self.layout.key_address(base, 0), 2 * self.layout.key_size)
            self.tracer.write(self.layout.ptr_address(base, 0), 2 * self.layout.ptr_size)
            self.store.mark_dirty(new_root_pid)
            return
        parent_pid, parent_slot = path[-1]
        parent = self.store.page(parent_pid)
        base = self.pool.address_of(parent_pid)
        if key < int(parent.keys[parent_slot]):
            # The left child holds keys below its stale separator (possible
            # because the first separator acts as -infinity and routing
            # clamps).  Refresh it to the child's true minimum so inserting
            # the new separator keeps the array sorted.
            left = self.store.page(left_pid)
            parent.keys[parent_slot] = left.keys[0]
            self.tracer.write(self.layout.key_address(base, parent_slot), self.layout.key_size)
        slot = parent_slot + 1
        if parent.count < self.layout.capacity:
            self._insert_into_page(parent, base, slot, key, right_pid)
            self.store.mark_dirty(parent_pid)
        else:
            self._split_and_insert(parent_pid, parent, path[:-1], slot, key, right_pid, is_leaf=False)

    # -- deletion ---------------------------------------------------------------

    def delete(self, key: int) -> bool:
        self.tracer.call_overhead()
        with self._update_txn():
            pid, leaf, base, __ = self._descend(key)
            slot = self._locate_slot(leaf, base, key)
            if slot >= leaf.count or int(leaf.keys[slot]) != key:
                return False
            moved = leaf.count - slot - 1
            if moved > 0:
                leaf.keys[slot:leaf.count - 1] = leaf.keys[slot + 1 : leaf.count].copy()
                leaf.ptrs[slot:leaf.count - 1] = leaf.ptrs[slot + 1 : leaf.count].copy()
                self.tracer.move(
                    self.layout.key_address(base, slot),
                    self.layout.key_address(base, slot + 1),
                    moved * self.layout.key_size,
                )
                self.tracer.move(
                    self.layout.ptr_address(base, slot),
                    self.layout.ptr_address(base, slot + 1),
                    moved * self.layout.ptr_size,
                )
            leaf.count -= 1
            self.tracer.write(base, 4)
            self._after_entry_removed(leaf, base, slot)
            self._entries -= 1
            self.store.mark_dirty(pid)
            return True

    # -- range scan --------------------------------------------------------------

    def range_scan(self, start_key: int, end_key: int) -> ScanResult:
        if end_key < start_key:
            return ScanResult(0, 0)
        self.tracer.call_overhead()
        # Left-biased descent: with duplicates spanning leaves, the scan
        # must start at the first occurrence, not the right sibling.
        pid, leaf, base, __ = self._descend(start_key, side="left")
        slot = insertion_slot(
            leaf.keys, leaf.count, start_key,
            self.layout.key_address(base, 0), self.layout.key_size, self.tracer,
        )
        count = 0
        tid_sum = 0
        while True:
            hi = int(np.searchsorted(leaf.keys[: leaf.count], end_key, side="right"))
            taken = hi - slot
            if taken > 0:
                # Sequential reads of the scanned key and tid ranges; the
                # disk-optimized tree has no prefetch, so every new line is
                # a demand miss.
                self.tracer.scan(self.layout.key_address(base, slot), taken * self.layout.key_size)
                self.tracer.scan(self.layout.ptr_address(base, slot), taken * TUPLE_ID_SIZE)
                count += taken
                tid_sum += int(leaf.ptrs[slot:hi].sum(dtype=np.uint64))
            if hi < leaf.count or leaf.next_leaf == INVALID_PAGE_ID:
                break
            pid = leaf.next_leaf
            leaf, base = self._page(pid)
            slot = 0
        return ScanResult(count, tid_sum)

    def range_scan_reverse(self, start_key: int, end_key: int) -> ScanResult:
        """Scan [start_key, end_key] walking the leaf chain right-to-left."""
        if end_key < start_key:
            return ScanResult(0, 0)
        self.tracer.call_overhead()
        __, leaf, base, __ = self._descend(end_key)
        count = 0
        tid_sum = 0
        while True:
            hi = int(np.searchsorted(leaf.keys[: leaf.count], end_key, side="right"))
            lo = int(np.searchsorted(leaf.keys[: leaf.count], start_key, side="left"))
            taken = hi - lo
            if taken > 0:
                self.tracer.scan(self.layout.key_address(base, lo), taken * self.layout.key_size)
                self.tracer.scan(self.layout.ptr_address(base, lo), taken * TUPLE_ID_SIZE)
                count += taken
                tid_sum += int(leaf.ptrs[lo:hi].sum(dtype=np.uint64))
            if lo > 0 or leaf.prev_leaf == INVALID_PAGE_ID:
                break
            leaf, base = self._page(leaf.prev_leaf)
        return ScanResult(count, tid_sum)

    # -- introspection ----------------------------------------------------------

    def leaf_page_ids(self) -> list[int]:
        pids = []
        pid = self.first_leaf_pid
        while pid != INVALID_PAGE_ID:
            pids.append(pid)
            pid = self.store.page(pid).next_leaf
        return pids

    def page_path(self, key: int) -> list[int]:
        """Page ids visited by a search (untraced; for I/O experiments)."""
        path = [self.root_pid]
        page = self.store.page(self.root_pid)
        while page.level > 0:
            slot = max(int(np.searchsorted(page.keys[: page.count], key, side="right")) - 1, 0)
            pid = int(page.ptrs[slot])
            path.append(pid)
            page = self.store.page(pid)
        return path

    def items(self) -> Iterable[tuple[int, int]]:
        pid = self.first_leaf_pid
        while pid != INVALID_PAGE_ID:
            page = self.store.page(pid)
            for i in range(page.count):
                yield int(page.keys[i]), int(page.ptrs[i])
            pid = page.next_leaf

    def scan_items(self, start_key: int, end_key: int) -> Iterable[tuple[int, int]]:
        """Positioned cursor: descend to the start key, then walk leaves."""
        if end_key < start_key:
            return
        pid = self.page_path_biased(start_key)
        page = self.store.page(pid)
        slot = int(np.searchsorted(page.keys[: page.count], start_key, side="left"))
        while True:
            for i in range(slot, page.count):
                key = int(page.keys[i])
                if key > end_key:
                    return
                yield key, int(page.ptrs[i])
            if page.next_leaf == INVALID_PAGE_ID:
                return
            page = self.store.page(page.next_leaf)
            slot = 0

    def page_path_biased(self, key: int) -> int:
        """Leaf pid for a left-biased (scan) descent, untraced."""
        page = self.store.page(self.root_pid)
        pid = self.root_pid
        while page.level > 0:
            slot = max(int(np.searchsorted(page.keys[: page.count], key, side="left")) - 1, 0)
            pid = int(page.ptrs[slot])
            page = self.store.page(pid)
        return pid

    def _iter_level(self, pid: int) -> Iterator[tuple[int, DiskPage]]:
        page = self.store.page(pid)
        yield pid, page
        if page.level > 0:
            for i in range(page.count):
                yield from self._iter_level(int(page.ptrs[i]))

    def validate(self) -> None:
        seen_entries = 0
        leaf_pids: list[int] = []
        for pid, page in self._iter_level(self.root_pid):
            if page.count > self.layout.capacity:
                raise IndexCorruptionError(f"page {pid} overfull: {page.count}")
            keys = page.keys[: page.count]
            if np.any(keys[:-1] > keys[1:]):
                raise IndexCorruptionError(f"page {pid} keys unsorted")
            if page.level > 0:
                for i in range(page.count):
                    child = self.store.page(int(page.ptrs[i]))
                    if child.level != page.level - 1:
                        raise IndexCorruptionError(f"page {pid} child level mismatch")
                    # The first separator acts as -infinity: keys smaller than
                    # every separator are routed to (and inserted into) child 0.
                    if i > 0 and child.count and int(child.keys[0]) < int(page.keys[i]):
                        raise IndexCorruptionError(
                            f"separator too large for child of page {pid}"
                        )
            else:
                seen_entries += page.count
                leaf_pids.append(pid)
        if seen_entries != self._entries:
            raise IndexCorruptionError(
                f"entry count mismatch: tree walk found {seen_entries}, "
                f"counter says {self._entries}"
            )
        if leaf_pids and leaf_pids != self.leaf_page_ids():
            raise IndexCorruptionError("leaf sibling chain disagrees with tree order")
        root = self.store.page(self.root_pid)
        if root.level != self.height - 1:
            raise IndexCorruptionError("height does not match root level")
