"""Baseline index structures the paper compares against."""

from .disk_btree import DiskBPlusTree, DiskPage, DiskPageLayout
from .micro_index import MicroIndexTree, MicroPageLayout
from .pbtree import PBTreeNode, PrefetchingBPlusTree

__all__ = [
    "DiskBPlusTree",
    "DiskPage",
    "DiskPageLayout",
    "MicroIndexTree",
    "MicroPageLayout",
    "PBTreeNode",
    "PrefetchingBPlusTree",
]
