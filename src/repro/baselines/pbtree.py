"""Prefetching B+-Tree (pB+-Tree) — Chen, Gibbons & Mowry, SIGMOD 2001.

The cache-optimized, *memory-resident* index the fpB+-Tree's in-page trees
are modeled after, and the comparison point in the paper's Figure 3(b).
Nodes span several cache lines (the width is tuned analytically; 8 lines =
512 bytes for the default parameters) and every node is prefetched in full
before it is searched, so fetching a w-line node costs T1 + (w-1)*Tnext
instead of w*T1.

Being memory-resident, it allocates nodes from a flat simulated address
space rather than disk pages — which is exactly why its *disk* behaviour is
poor: consecutive leaves land on arbitrary pages.  ``num_pages`` reports the
number of page-sized regions its nodes span so that contrast is measurable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..btree.base import Index, IndexCorruptionError, ScanResult, as_key_array, chunk_evenly
from ..btree.keys import KEY4, KeySpec, TUPLE_ID_SIZE
from ..btree.search import child_slot, insertion_slot
from ..btree.trace import Tracer
from ..core.optimizer import optimal_pbtree_width
from ..mem.hierarchy import MemorySystem
from ..mem.layout import AddressSpace

__all__ = ["PrefetchingBPlusTree", "PBTreeNode"]

NODE_HEADER_BYTES = 8


class PBTreeNode:
    """A multi-line tree node in simulated main memory."""

    __slots__ = ("is_leaf", "count", "keys", "ptrs", "children", "address", "next_leaf")

    def __init__(self, is_leaf: bool, capacity: int, key_dtype: np.dtype, address: int) -> None:
        self.is_leaf = is_leaf
        self.count = 0
        self.keys = np.zeros(capacity, dtype=key_dtype)
        self.ptrs = np.zeros(capacity, dtype=np.uint32)  # tuple ids (leaf only)
        self.children: list["PBTreeNode"] = [] if not is_leaf else None
        self.address = address
        self.next_leaf: Optional["PBTreeNode"] = None


class PrefetchingBPlusTree(Index):
    """Cache-optimized B+-Tree with node-granularity prefetching."""

    name = "pB+tree"

    def __init__(
        self,
        mem: Optional[MemorySystem] = None,
        keyspec: KeySpec = KEY4,
        width_lines: Optional[int] = None,
        line_size: Optional[int] = None,
        address_space: Optional[AddressSpace] = None,
        page_size: int = 16 * 1024,
    ) -> None:
        self.mem = mem
        self.tracer = Tracer(mem)
        self.keyspec = keyspec
        line = line_size if line_size is not None else (mem.config.line_size if mem else 64)
        self.line_size = line
        if width_lines is None:
            t1 = mem.config.t1 if mem else 150
            tnext = mem.config.tnext if mem else 10
            width_lines = optimal_pbtree_width(
                key_size=keyspec.size, line_size=line, t1=t1, tnext=tnext
            )
        self.node_bytes = width_lines * line
        self.capacity = (self.node_bytes - NODE_HEADER_BYTES) // (keyspec.size + TUPLE_ID_SIZE)
        if self.capacity < 2:
            raise ValueError("node width too small for two entries")
        self._space = address_space if address_space is not None else AddressSpace()
        self._page_size = page_size
        self.root = self._new_node(is_leaf=True)
        self.height = 1
        self.first_leaf = self.root
        self._entries = 0
        self._nodes = 1
        self.node_splits = 0

    # -- node management ------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> PBTreeNode:
        address = self._space.alloc(self.node_bytes, alignment=self.line_size)
        return PBTreeNode(is_leaf, self.capacity, self.keyspec.dtype, address)

    def _key_address(self, node: PBTreeNode, slot: int) -> int:
        return node.address + NODE_HEADER_BYTES + slot * self.keyspec.size

    def _ptr_address(self, node: PBTreeNode, slot: int) -> int:
        return (
            node.address
            + NODE_HEADER_BYTES
            + self.capacity * self.keyspec.size
            + slot * TUPLE_ID_SIZE
        )

    def _fetch_node(self, node: PBTreeNode) -> None:
        """Prefetch all the node's lines, then touch its header."""
        self.tracer.prefetch(node.address, self.node_bytes)
        self.tracer.read(node.address, NODE_HEADER_BYTES)
        self.tracer.visit_node()

    # -- Index interface ---------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._entries

    @property
    def num_nodes(self) -> int:
        return self._nodes

    @property
    def num_pages(self) -> int:
        """Page-sized regions spanned by the node pool (poor disk locality)."""
        used = self._nodes * self.node_bytes
        return -(-used // self._page_size)

    def bulkload(self, keys: Sequence[int], tids: Sequence[int], fill: float = 1.0) -> None:
        fill = self.check_fill(fill)
        keys = as_key_array(keys, self.keyspec)
        tids = np.asarray(tids, dtype=np.uint32)
        if keys.shape != tids.shape:
            raise ValueError("keys and tids must have the same length")
        if np.any(keys[:-1] > keys[1:]):
            raise ValueError("bulkload requires sorted keys")
        if self._entries:
            raise RuntimeError("bulkload requires an empty tree")
        if keys.size == 0:
            return
        self._nodes = 0
        per_node = max(2, int(self.capacity * fill))

        nodes: list[PBTreeNode] = []
        firsts: list[int] = []
        start = 0
        previous: Optional[PBTreeNode] = None
        for size in chunk_evenly(len(keys), per_node):
            node = self._new_node(is_leaf=True)
            node.keys[:size] = keys[start : start + size]
            node.ptrs[:size] = tids[start : start + size]
            node.count = size
            if previous is not None:
                previous.next_leaf = node
            nodes.append(node)
            firsts.append(int(keys[start]))
            previous = node
            start += size
        self.first_leaf = nodes[0]
        self._nodes = len(nodes)

        height = 1
        while len(nodes) > 1:
            parents: list[PBTreeNode] = []
            parent_firsts: list[int] = []
            start = 0
            for size in chunk_evenly(len(nodes), per_node):
                parent = self._new_node(is_leaf=False)
                parent.keys[:size] = parent_firsts_chunk = firsts[start : start + size]
                parent.children = list(nodes[start : start + size])
                parent.count = size
                parents.append(parent)
                parent_firsts.append(parent_firsts_chunk[0])
                start += size
            self._nodes += len(parents)
            nodes, firsts = parents, parent_firsts
            height += 1
        self.root = nodes[0]
        self.height = height
        self._entries = int(keys.size)

    def _descend(self, key: int, record_path: bool = False, side: str = "right"):
        path: list[tuple[PBTreeNode, int]] = []
        node = self.root
        self._fetch_node(node)
        while not node.is_leaf:
            slot = child_slot(
                node.keys, node.count, key,
                self._key_address(node, 0), self.keyspec.size, self.tracer,
                side=side,
            )
            self.tracer.read(self._ptr_address(node, slot), 8)  # child pointer
            if record_path:
                path.append((node, slot))
            node = node.children[slot]
            self._fetch_node(node)
        return node, path

    def search(self, key: int) -> Optional[int]:
        self.tracer.call_overhead()
        leaf, __ = self._descend(key)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if slot < leaf.count and int(leaf.keys[slot]) == key:
            self.tracer.read(self._ptr_address(leaf, slot), TUPLE_ID_SIZE)
            return int(leaf.ptrs[slot])
        return None

    # -- updates -----------------------------------------------------------------

    def insert(self, key: int, tid: int) -> None:
        self.tracer.call_overhead()
        leaf, path = self._descend(key, record_path=True)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if leaf.count < self.capacity:
            self._insert_into_node(leaf, slot, key, tid)
        else:
            self._split_and_insert(leaf, path, slot, key, tid)
        self._entries += 1

    def _insert_into_node(self, node: PBTreeNode, slot: int, key: int, value) -> None:
        moved = node.count - slot
        if moved > 0:
            node.keys[slot + 1 : node.count + 1] = node.keys[slot:node.count].copy()
            self.tracer.move(
                self._key_address(node, slot + 1),
                self._key_address(node, slot),
                moved * self.keyspec.size,
            )
            if node.is_leaf:
                node.ptrs[slot + 1 : node.count + 1] = node.ptrs[slot:node.count].copy()
                self.tracer.move(
                    self._ptr_address(node, slot + 1),
                    self._ptr_address(node, slot),
                    moved * TUPLE_ID_SIZE,
                )
        if node.is_leaf:
            node.keys[slot] = key
            node.ptrs[slot] = value
        else:
            node.keys[slot] = key
            node.children.insert(slot, value)
            self.tracer.move(
                self._ptr_address(node, slot + 1),
                self._ptr_address(node, slot),
                moved * 8,
            )
        node.count += 1
        self.tracer.write(self._key_address(node, slot), self.keyspec.size)
        self.tracer.write(self._ptr_address(node, slot), TUPLE_ID_SIZE)

    def _split_and_insert(self, node: PBTreeNode, path, slot: int, key: int, value) -> None:
        self.node_splits += 1
        self._nodes += 1
        new_node = self._new_node(node.is_leaf)
        half = node.count // 2
        moved = node.count - half
        new_node.keys[:moved] = node.keys[half:node.count]
        if node.is_leaf:
            new_node.ptrs[:moved] = node.ptrs[half:node.count]
            new_node.next_leaf = node.next_leaf
            node.next_leaf = new_node
        else:
            new_node.children = node.children[half:]
            node.children = node.children[:half]
        new_node.count = moved
        node.count = half
        self.tracer.move(
            self._key_address(new_node, 0), self._key_address(node, half),
            moved * self.keyspec.size,
        )
        self.tracer.move(
            self._ptr_address(new_node, 0), self._ptr_address(node, half),
            moved * TUPLE_ID_SIZE,
        )
        if slot <= half and not (slot == half and not node.is_leaf):
            self._insert_into_node(node, slot, key, value)
        else:
            self._insert_into_node(new_node, slot - half, key, value)
        separator = int(new_node.keys[0])
        self._insert_into_parent(path, node, separator, new_node)

    def _insert_into_parent(self, path, left: PBTreeNode, key: int, right: PBTreeNode) -> None:
        if not path:
            new_root = self._new_node(is_leaf=False)
            self._nodes += 1
            new_root.keys[0] = min(int(left.keys[0]) if left.count else key, key)
            new_root.keys[1] = key
            new_root.children = [left, right]
            new_root.count = 2
            self.root = new_root
            self.height += 1
            self.tracer.write(self._key_address(new_root, 0), 2 * self.keyspec.size)
            return
        parent, parent_slot = path[-1]
        if key < int(parent.keys[parent_slot]):
            parent.keys[parent_slot] = left.keys[0]
            self.tracer.write(self._key_address(parent, parent_slot), self.keyspec.size)
        slot = parent_slot + 1
        if parent.count < self.capacity:
            self._insert_into_node(parent, slot, key, right)
        else:
            self._split_and_insert(parent, path[:-1], slot, key, right)

    def delete(self, key: int) -> bool:
        self.tracer.call_overhead()
        leaf, __ = self._descend(key)
        slot = insertion_slot(
            leaf.keys, leaf.count, key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        if slot >= leaf.count or int(leaf.keys[slot]) != key:
            return False
        moved = leaf.count - slot - 1
        if moved > 0:
            leaf.keys[slot : leaf.count - 1] = leaf.keys[slot + 1 : leaf.count].copy()
            leaf.ptrs[slot : leaf.count - 1] = leaf.ptrs[slot + 1 : leaf.count].copy()
            self.tracer.move(
                self._key_address(leaf, slot), self._key_address(leaf, slot + 1),
                moved * self.keyspec.size,
            )
            self.tracer.move(
                self._ptr_address(leaf, slot), self._ptr_address(leaf, slot + 1),
                moved * TUPLE_ID_SIZE,
            )
        leaf.count -= 1
        self._entries -= 1
        return True

    # -- scans ------------------------------------------------------------------------

    def range_scan(self, start_key: int, end_key: int) -> ScanResult:
        if end_key < start_key:
            return ScanResult(0, 0)
        self.tracer.call_overhead()
        # Left-biased: duplicates spanning leaves must be scanned from the
        # first occurrence.
        leaf, __ = self._descend(start_key, side="left")
        slot = insertion_slot(
            leaf.keys, leaf.count, start_key,
            self._key_address(leaf, 0), self.keyspec.size, self.tracer,
        )
        count = 0
        tid_sum = 0
        while True:
            if leaf.next_leaf is not None:
                # Overlap the next leaf's fetch with processing this one.
                self.tracer.prefetch(leaf.next_leaf.address, self.node_bytes)
            hi = int(np.searchsorted(leaf.keys[: leaf.count], end_key, side="right"))
            taken = hi - slot
            if taken > 0:
                self.tracer.scan(self._key_address(leaf, slot), taken * self.keyspec.size)
                self.tracer.scan(self._ptr_address(leaf, slot), taken * TUPLE_ID_SIZE)
                count += taken
                tid_sum += int(leaf.ptrs[slot:hi].sum(dtype=np.uint64))
            if hi < leaf.count or leaf.next_leaf is None:
                break
            leaf = leaf.next_leaf
            self.tracer.read(leaf.address, NODE_HEADER_BYTES)
            slot = 0
        return ScanResult(count, tid_sum)

    # -- introspection ----------------------------------------------------------------

    def leaf_page_ids(self) -> list[int]:
        """Memory-resident tree: report distinct page regions of the leaves.

        Demonstrates the leaf-page scatter that makes cache-optimized trees
        disk-hostile (Section 1): consecutive leaves rarely share a page.
        """
        pids = []
        node = self.first_leaf
        while node is not None:
            pids.append(node.address // self._page_size)
            node = node.next_leaf
        return pids

    def items(self) -> Iterable[tuple[int, int]]:
        node = self.first_leaf
        while node is not None:
            for i in range(node.count):
                yield int(node.keys[i]), int(node.ptrs[i])
            node = node.next_leaf

    def validate(self) -> None:
        def walk(node: PBTreeNode, depth: int):
            nonlocal entries
            if node.count > self.capacity:
                raise IndexCorruptionError("node overfull")
            keys = node.keys[: node.count]
            if np.any(keys[:-1] > keys[1:]):
                raise IndexCorruptionError("node keys unsorted")
            if node.is_leaf:
                if depth != self.height:
                    raise IndexCorruptionError("leaves at unequal depth")
                entries += node.count
                leaves.append(node)
            else:
                if len(node.children) != node.count:
                    raise IndexCorruptionError("child count mismatch")
                for i, child in enumerate(node.children):
                    if i > 0 and child.count and int(child.keys[0]) < int(node.keys[i]):
                        raise IndexCorruptionError("separator too large")
                    walk(child, depth + 1)

        entries = 0
        leaves: list[PBTreeNode] = []
        walk(self.root, 1)
        if entries != self._entries:
            raise IndexCorruptionError(
                f"entry count mismatch: walk={entries} counter={self._entries}"
            )
        chain = []
        node = self.first_leaf
        while node is not None:
            chain.append(node)
            node = node.next_leaf
        if leaves and chain != leaves:
            raise IndexCorruptionError("leaf chain disagrees with tree order")
