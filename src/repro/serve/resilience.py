"""Client-side resilience and chaos harness for the serving layer.

This module is what turns the fair-weather :class:`~repro.serve.DbmsServer`
into a system that survives production weather.  Four pieces, all seeded
and DES-deterministic:

* :class:`ClientRetryPolicy` — per-session retries of failed / shed /
  timed-out operations, with exponential backoff, seeded jitter and a
  retry *budget* so a dying backend cannot be retried into the ground.
* :class:`CircuitBreaker` — one per server, shared by its sessions.  A
  sliding window of outcomes trips it open on a failure-rate breach (or a
  server crash); while open every op fast-fails client-side without
  touching the server; after a cooldown it half-opens, probes, and closes
  on consecutive successes.  State transitions are recorded in
  :class:`~repro.serve.stats.ServerStats`.
* :class:`BrownoutController` — the SLO monitor driving a four-rung
  degradation ladder over the server's knobs.  It samples windows of
  outcomes (via the stats listener hook) on a fixed interval; a p99 or
  failure-rate breach steps the ladder down, sustained health steps it
  back up:

      level 1: shrink scan prefetch depth + cap outstanding prefetches
      level 2: truncate scans to ``max_scan_pages`` (partial results)
      level 3: reject background inserts at submission
      level 4: shrink the admission token pool

* :class:`ChaosRunner` — the crash-under-load harness: closed-loop
  sessions with all of the above run against a server wired to a
  :class:`~repro.faults.ChaosSchedule`.  A :class:`SimulatedCrash` firing
  mid-traffic propagates out of the simulation; the runner drains every
  in-flight request as failed (conservation-safe), runs WAL recovery,
  rebuilds the serving substrate on a monotonic clock, and resumes the
  remaining workload.  Afterwards it verifies that no client-acknowledged
  insert was lost and that the recovered tree passes the scrubber.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..btree.base import IndexCorruptionError
from ..dbms.engine import MiniDbms
from ..des import AllOf
from ..faults.errors import SimulatedCrash
from ..faults.schedule import ChaosSchedule
from ..scrub import scrub_tree
from ..verify.linearizability import HistoryRecorder
from ..storage.prefetch import RetryPolicy
from ..workloads.ops import MixedOpStream, OpMix
from .server import DbmsServer
from .stats import ServerStats

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "ChaosRunner",
    "CircuitBreaker",
    "ClientRetryPolicy",
]


# -- client retry policy ------------------------------------------------------


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Session-level retries of failed/shed/timed-out operations.

    Distinct from the storage layer's :class:`~repro.storage.prefetch.RetryPolicy`
    (which retries individual page reads): this one re-submits whole
    operations.  ``retry_budget`` bounds the *total* retries one session
    may spend across its lifetime — a blunt token bucket that stops retry
    storms against a dying backend.
    """

    max_attempts: int = 4
    backoff_base_us: float = 2_000.0
    backoff_multiplier: float = 2.0
    backoff_cap_us: float = 100_000.0
    jitter_fraction: float = 0.25
    retry_budget: Optional[int] = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_us < 0:
            raise ValueError(f"backoff_base_us must be >= 0, got {self.backoff_base_us}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if self.backoff_cap_us < self.backoff_base_us:
            raise ValueError("backoff_cap_us must be >= backoff_base_us")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")

    def backoff_delay_us(self, retry: int, rng: random.Random) -> float:
        """Backoff before retry number ``retry`` (1-based), with jitter."""
        delay = min(
            self.backoff_base_us * self.backoff_multiplier ** (retry - 1),
            self.backoff_cap_us,
        )
        if self.jitter_fraction and delay > 0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return delay


# -- circuit breaker ----------------------------------------------------------


class BreakerState:
    """The three breaker states and their metric gauge codes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """When the breaker trips, how long it sheds, and how it re-closes."""

    window: int = 16
    min_samples: int = 8
    failure_threshold: float = 0.5
    cooldown_us: float = 20_000.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must be in [1, window]")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {self.failure_threshold}")
        if self.cooldown_us <= 0:
            raise ValueError(f"cooldown_us must be positive, got {self.cooldown_us}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {self.half_open_probes}")


class CircuitBreaker:
    """Per-server failure-rate breaker: closed -> open -> half-open -> closed.

    ``clock`` is a zero-argument callable returning the current time — pass
    ``lambda: server.env.now`` so the breaker follows the DES clock even
    across a crash-rebuild (the rebuilt clock is monotonic).  All
    transitions are appended to :attr:`transitions` as
    ``(time_us, from_state, to_state)`` and mirrored into ``stats``.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = None,
        stats: Optional[ServerStats] = None,
    ) -> None:
        if clock is None:
            raise ValueError("CircuitBreaker needs a clock callable (e.g. lambda: env.now)")
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self.stats = stats
        self.state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._open_until = 0.0
        self._probe_successes = 0
        self.transitions: list[tuple[float, str, str]] = []

    def _transition(self, to: str) -> None:
        self.transitions.append((self._clock(), self.state, to))
        self.state = to
        if self.stats is not None:
            self.stats.breaker_transition(BreakerState.CODES[to])

    # -- the client-facing gate -------------------------------------------

    def allow(self) -> bool:
        """May the client issue an op right now?

        While open: false until the cooldown expires, at which point the
        breaker half-opens and lets probes through.
        """
        if self.state == BreakerState.OPEN:
            if self._clock() < self._open_until:
                return False
            self._probe_successes = 0
            self._transition(BreakerState.HALF_OPEN)
        return True

    def record_success(self) -> None:
        self._outcomes.append(True)
        if self.state == BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._outcomes.clear()
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._outcomes.append(False)
        if self.state == BreakerState.HALF_OPEN:
            self.trip()  # a failed probe re-opens for a fresh cooldown
            return
        if self.state != BreakerState.CLOSED:
            return
        if len(self._outcomes) < self.config.min_samples:
            return
        failures = sum(1 for ok in self._outcomes if not ok)
        if failures / len(self._outcomes) >= self.config.failure_threshold:
            self.trip()

    def trip(self) -> None:
        """Force the breaker open (failure-rate breach, or a server crash)."""
        self._open_until = self._clock() + self.config.cooldown_us
        if self.state != BreakerState.OPEN:
            self._transition(BreakerState.OPEN)

    def retry_after_us(self) -> float:
        """How long until the breaker could admit an op again.

        Retry-after hint for clients: backing off at least this long keeps
        a retry from being burned on a guaranteed fast-fail.
        """
        if self.state != BreakerState.OPEN:
            return 0.0
        return max(0.0, self._open_until - self._clock())


# -- brownout / graceful degradation ------------------------------------------


@dataclass(frozen=True)
class BrownoutConfig:
    """SLO thresholds and ladder knobs for the brownout controller."""

    interval_us: float = 25_000.0
    p99_slo_us: float = 40_000.0
    failure_rate_slo: float = 0.15
    min_window: int = 6
    recover_intervals: int = 2
    degraded_prefetch_depth: int = 1
    prefetch_cap: int = 2
    max_scan_pages: int = 4
    token_shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ValueError(f"interval_us must be positive, got {self.interval_us}")
        if self.p99_slo_us <= 0:
            raise ValueError(f"p99_slo_us must be positive, got {self.p99_slo_us}")
        if not 0.0 < self.failure_rate_slo <= 1.0:
            raise ValueError(f"failure_rate_slo must be in (0, 1], got {self.failure_rate_slo}")
        if self.min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {self.min_window}")
        if self.recover_intervals < 1:
            raise ValueError(f"recover_intervals must be >= 1, got {self.recover_intervals}")
        if not 0.0 < self.token_shrink <= 1.0:
            raise ValueError(f"token_shrink must be in (0, 1], got {self.token_shrink}")


class BrownoutController:
    """Steps the server's degradation ladder on SLO breaches.

    Registers as a :class:`ServerStats` outcome listener and evaluates a
    window every ``interval_us``: a breach (window p99 over the SLO, or
    failure rate over its threshold) steps the ladder **down** one rung; a
    ``recover_intervals``-long streak of healthy windows steps back **up**.
    Knob changes are idempotent re-applications of the current level, so
    :meth:`attach` after a crash-rebuild restores the degraded state on the
    fresh substrate.
    """

    LADDER_DEPTH = 4

    def __init__(self, server: DbmsServer, config: Optional[BrownoutConfig] = None) -> None:
        self.server = server
        self.config = config if config is not None else BrownoutConfig()
        self.level = 0
        self.max_level = 0
        #: Every ladder move: ``(time_us, new_level)``.
        self.history: list[tuple[float, int]] = []
        self._window_latencies: list[float] = []
        self._window_failures = 0
        self._healthy_streak = 0
        self._stopped = False
        server.stats.listeners.append(self._observe)

    # -- sampling ----------------------------------------------------------

    def _observe(self, kind: str, latency_us: Optional[float], ok: bool) -> None:
        if ok:
            self._window_latencies.append(latency_us)
        else:
            self._window_failures += 1

    def attach(self):
        """Spawn the evaluation ticker on the server's (current) env.

        Call once per substrate — again after a crash-rebuild.  Re-applies
        the current ladder level to the fresh substrate first.
        """
        self._stopped = False
        self._apply()
        return self.server.env.process(self._ticker())

    def stop(self) -> None:
        """Let the ticker exit at its next tick so the simulation can drain."""
        self._stopped = True

    def _ticker(self):
        env = self.server.env
        while not self._stopped:
            yield env.timeout(self.config.interval_us)
            if self._stopped:
                return
            self.evaluate_window()

    # -- the ladder --------------------------------------------------------

    def evaluate_window(self) -> None:
        """Score the window since the last tick and move the ladder."""
        latencies = self._window_latencies
        failures = self._window_failures
        self._window_latencies = []
        self._window_failures = 0
        total = len(latencies) + failures
        breach = False
        if total >= self.config.min_window:
            failure_rate = failures / total
            p99 = 0.0
            if latencies:
                ordered = sorted(latencies)
                rank = max(int(len(ordered) * 0.99 + 0.999999) - 1, 0)
                p99 = ordered[min(rank, len(ordered) - 1)]
            breach = failure_rate > self.config.failure_rate_slo or p99 > self.config.p99_slo_us
        if breach:
            self._healthy_streak = 0
            if self.level < self.LADDER_DEPTH:
                self._set_level(self.level + 1)
            return
        self._healthy_streak += 1
        if self.level > 0 and self._healthy_streak >= self.config.recover_intervals:
            self._healthy_streak = 0
            self._set_level(self.level - 1)

    def _set_level(self, level: int) -> None:
        down = level > self.level
        self.level = level
        self.max_level = max(self.max_level, level)
        self.history.append((self.server.env.now, level))
        self.server.stats.brownout_step(level, down=down)
        self._apply()

    def _apply(self) -> None:
        """Project the current level onto the server's knobs (idempotent)."""
        server = self.server
        config = self.config
        if self.level >= 1:
            server.scan_prefetch_depth = min(
                config.degraded_prefetch_depth, server.base_scan_prefetch_depth
            )
            server.reader.max_outstanding_prefetches = config.prefetch_cap
        else:
            server.scan_prefetch_depth = server.base_scan_prefetch_depth
            server.reader.max_outstanding_prefetches = None
        server.max_scan_pages = config.max_scan_pages if self.level >= 2 else None
        server.reject_inserts = self.level >= 3
        base = server.admission.base_concurrency
        target = max(1, int(base * config.token_shrink)) if self.level >= 4 else base
        if server.admission.max_concurrency != target:
            server.admission.resize(target)


# -- the chaos harness --------------------------------------------------------


@dataclass
class SessionState:
    """One closed-loop chaos session's workload and client-side ledger."""

    ops: list
    index: int = 0
    ok: int = 0
    gave_up: int = 0
    retries: int = 0
    fast_fails: int = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.ops)


class ChaosRunner:
    """Closed-loop serving under a chaos schedule, surviving a mid-run crash.

    Builds a WAL-backed :class:`MiniDbms` plus a :class:`DbmsServer` wired
    to the schedule's fault plan (mirrored striping, storage-level read
    retries), then runs ``sessions`` closed-loop clients with the
    configured client-side resilience.  When the schedule's crash point
    fires, the runner handles the whole crash-recover-resume life cycle
    and keeps going until every session finishes its workload.

    Everything is a pure function of the constructor arguments: two runs
    with the same arguments produce byte-identical :meth:`run` reports.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        num_rows: int = 4_000,
        num_disks: int = 4,
        page_size: int = 4096,
        sessions: int = 6,
        ops_per_session: int = 30,
        think_time_us: float = 1_500.0,
        mix: Optional[OpMix] = None,
        retry: Optional[ClientRetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        brownout: Optional[BrownoutConfig] = None,
        storage_policy: Optional[RetryPolicy] = "auto",
        max_concurrency: int = 8,
        queue_depth: int = 32,
        pool_frames: int = 48,
        deadline_us: Optional[float] = None,
        checkpoint_interval: int = 4,
        seed: int = 11,
        concurrency: str = "none",
        record_history: bool = False,
    ) -> None:
        self.schedule = schedule
        self.plan = schedule.to_fault_plan()
        self.mix = mix if mix is not None else OpMix()
        self.retry = retry
        self.think_time_us = think_time_us
        self.checkpoint_interval = checkpoint_interval
        self.seed = seed
        if storage_policy == "auto":
            # Dead/limping spindles are survivable because reads retry
            # across mirror replicas with a per-attempt deadline.
            storage_policy = RetryPolicy(max_attempts=3, timeout_us=40_000.0)
        self.db = MiniDbms(
            num_rows=num_rows, num_disks=num_disks, page_size=page_size,
            seed=seed, mature=False,
        )
        self.db.enable_wal(self.plan, checkpoint_interval=checkpoint_interval)
        self.server = DbmsServer(
            self.db,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            pool_frames=pool_frames,
            deadline_us=deadline_us,
            policy=storage_policy,
            fault_plan=self.plan,
            mirrored=num_disks >= 2,
            seed=seed,
            concurrency=concurrency,
        )
        #: Linearizability history (``record_history=True``): the clock
        #: chases the live environment, so the recorder spans crash
        #: rebuilds; ops killed by the crash stay pending, which is the
        #: checker's ambiguous-effect completion rule.
        self.history: Optional[HistoryRecorder] = None
        if record_history:
            self.history = HistoryRecorder(clock=lambda: self.server.env.now)
            self.history.initial_keys = [int(k) for k in self.db._workload.keys]
            self.server.attach_history(self.history)
        self.breaker = (
            CircuitBreaker(breaker, clock=lambda: self.server.env.now, stats=self.server.stats)
            if breaker is not None
            else None
        )
        self.brownout = BrownoutController(self.server, brownout) if brownout is not None else None
        # Materialize each session's op list up front: the *remaining*
        # workload must survive a crash, so it cannot live inside a killed
        # generator.
        self.states = []
        for sid in range(sessions):
            stream = MixedOpStream(
                self.db._workload.keys, self.mix, seed=(seed << 8) + sid
            )
            self.states.append(
                SessionState(ops=[stream.next_op() for __ in range(ops_per_session)])
            )
        self.committed_keys: list[int] = []
        self.crash_log: list[dict] = []

    # -- one client session ------------------------------------------------

    def _should_retry(self, state: SessionState, attempt: int) -> bool:
        policy = self.retry
        if policy is None:
            return False
        if attempt + 1 >= policy.max_attempts:
            return False
        if policy.retry_budget is not None and state.retries >= policy.retry_budget:
            return False
        return True

    def _session(self, sid: int):
        server = self.server
        env = server.env
        state = self.states[sid]
        rng = random.Random((self.seed << 16) ^ (sid * 0x9E3779B1) ^ 0xC7A05)
        name = f"chaos-{sid}"
        while not state.done:
            op = state.ops[state.index]
            if self.think_time_us:
                yield env.timeout(rng.expovariate(1.0) * self.think_time_us)
            attempt = 0
            while True:
                if self.breaker is not None and not self.breaker.allow():
                    server.stats.breaker_fast_fail()
                    state.fast_fails += 1
                    ok = False
                else:
                    request = server.make_request(
                        op, session=name, priority=1 if op[0] == "insert" else 0
                    )
                    yield server.submit(request)
                    ok = request.outcome == "ok"
                    if self.breaker is not None:
                        if ok:
                            self.breaker.record_success()
                        else:
                            self.breaker.record_failure()
                    if ok and request.kind == "insert":
                        # The server acknowledged the insert: its WAL commit
                        # is durable and must survive any later crash.
                        self.committed_keys.append(request.op[1])
                if ok:
                    state.ok += 1
                    break
                if not self._should_retry(state, attempt):
                    state.gave_up += 1
                    break
                attempt += 1
                state.retries += 1
                server.stats.client_retry()
                delay = self.retry.backoff_delay_us(attempt, rng)
                if self.breaker is not None:
                    # Honor the breaker's retry-after hint: an attempt spent
                    # on a guaranteed fast-fail is an attempt wasted.
                    delay = max(delay, self.breaker.retry_after_us())
                yield env.timeout(delay)
            state.index += 1

    # -- crash life cycle --------------------------------------------------

    def _handle_crash(self, crash: SimulatedCrash) -> None:
        server = self.server
        crash_time = server.env.now
        drained = server.fail_unfinished(crash)
        server.stats.crash()
        if self.breaker is not None:
            # Clients observe the connection die: protect the recovering
            # server from an immediate thundering herd.
            self.breaker.trip()
        recovery = self.db.crash_and_recover()
        # Logging resumes under the stripped plan: the armed crash point
        # fired; read faults (limps, dead disks, error rates) stay live.
        self.db.enable_wal(
            self.plan.without_crash_points(), checkpoint_interval=self.checkpoint_interval
        )
        # The rebuilt substrate resumes after the simulated recovery
        # downtime, on a monotonic clock.
        server.rebuild_substrate(resume_at=crash_time + recovery.recovery_us)
        server.stats.recovery()
        # Scrub the recovered tree before resuming traffic — every
        # recovery, not just in tests.  A violation is a durability bug
        # (recovery produced a broken tree) and gets its own counter, but
        # the run continues so the report still lands.
        scrub_ok = True
        try:
            scrub_tree(self.db.index)
        except IndexCorruptionError:
            scrub_ok = False
            server.stats.scrub_violation()
        else:
            server.stats.scrub_pass()
        self.crash_log.append(
            {
                "at_us": round(crash_time, 3),
                "point": crash.point,
                "drained_in_flight": drained,
                "records_replayed": recovery.records_replayed,
                "committed_txns": len(recovery.committed_txns),
                "discarded_txns": len(recovery.discarded_txns),
                "pages_restored": recovery.pages_restored,
                "recovery_us": round(recovery.recovery_us, 3),
                "scrub_ok": scrub_ok,
            }
        )

    # -- the run -----------------------------------------------------------

    def run(self) -> dict:
        """Run every session to completion (through any crash); report."""
        while True:
            try:
                events = [
                    self.server.env.process(self._session(sid))
                    for sid, state in enumerate(self.states)
                    if not state.done
                ]
                if self.brownout is not None:
                    self.brownout.attach()
                if events:
                    self.server.env.run(until=AllOf(self.server.env, events))
                if self.brownout is not None:
                    self.brownout.stop()
                self.server.env.run()  # drain abandoned/straggler workers
                break
            except SimulatedCrash as crash:
                self._handle_crash(crash)
        return self._report()

    def _report(self) -> dict:
        stats = self.server.stats
        elapsed_us = self.server.env.now
        ok_ops = sum(state.ok for state in self.states)
        lost = [key for key in self.committed_keys if self.db.lookup(key) is None]
        scrub = scrub_tree(self.db.index)
        return {
            "schedule": self.schedule.describe(),
            "sessions": len(self.states),
            "client_ops": sum(len(state.ops) for state in self.states),
            "ok_ops": ok_ops,
            "gave_up": sum(state.gave_up for state in self.states),
            "client_retries": sum(state.retries for state in self.states),
            "breaker_fast_fails": sum(state.fast_fails for state in self.states),
            "breaker_transitions": [
                [round(at, 3), frm, to] for at, frm, to in (
                    self.breaker.transitions if self.breaker is not None else []
                )
            ],
            "brownout_max_level": self.brownout.max_level if self.brownout is not None else 0,
            "brownout_steps": len(self.brownout.history) if self.brownout is not None else 0,
            "issued": stats.issued,
            "completed": stats.completed,
            "failed": stats.failed,
            "shed": stats.shed_count,
            "timeouts": stats.timeouts,
            "in_flight": stats.in_flight,
            "conserved": stats.conserved(),
            "crashes": stats.crashes,
            "crash_log": self.crash_log,
            "committed_inserts": len(self.committed_keys),
            "lost_inserts": len(lost),
            "scrub_entries": scrub.entries,
            "scrubs": stats.scrubs,
            "scrub_violations": stats.scrub_violations,
            "latch": self.server.latch_counters(),
            "elapsed_us": round(elapsed_us, 3),
            "goodput_ops_s": round(ok_ops / (elapsed_us / 1e6), 3) if elapsed_us > 0 else 0.0,
            "p99_ms": round(stats.percentiles_us()["p99"] / 1e3, 3),
            "snapshot": stats.snapshot(),
        }
