"""Concurrent multi-client serving layer over the MiniDbms.

The pieces, bottom-up:

* :class:`~repro.serve.admission.AdmissionController` — token-based
  concurrency limit with a bounded, shed-on-overflow wait queue (FIFO or
  priority) and queue-time accounting.
* :class:`~repro.serve.server.DbmsServer` — one shared DES substrate
  (environment, disk array, buffer pool, page reader) executing client
  lookups / range scans / inserts as concurrent processes, with per-query
  deadlines.
* :class:`~repro.serve.loadgen.OpenLoopLoadGenerator` /
  :class:`~repro.serve.loadgen.ClosedLoopLoadGenerator` — seeded traffic.
* :class:`~repro.serve.stats.ServerStats` — latency percentiles,
  throughput, shed/timeout counts, and the conservation identity
  ``issued == completed + shed + failed + in_flight``.

Everything is DES-driven and seeded: a serving run is a pure function of
its configuration, so latency percentiles are exactly reproducible.
"""

from .admission import AdmissionController, AdmissionRejected, AdmissionTicket
from .loadgen import ClosedLoopLoadGenerator, OpenLoopLoadGenerator
from .server import DbmsServer, ServedRequest
from .stats import OP_KINDS, SERVE_LATENCY_BOUNDS_US, ServerStats

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "ClosedLoopLoadGenerator",
    "OpenLoopLoadGenerator",
    "DbmsServer",
    "ServedRequest",
    "ServerStats",
    "OP_KINDS",
    "SERVE_LATENCY_BOUNDS_US",
]
