"""Concurrent multi-client serving layer over the MiniDbms.

The pieces, bottom-up:

* :class:`~repro.serve.admission.AdmissionController` — token-based
  concurrency limit with a bounded, shed-on-overflow wait queue (FIFO or
  priority) and queue-time accounting.
* :class:`~repro.serve.server.DbmsServer` — one shared DES substrate
  (environment, disk array, buffer pool, page reader) executing client
  lookups / range scans / inserts as concurrent processes, with per-query
  deadlines.
* :class:`~repro.serve.loadgen.OpenLoopLoadGenerator` /
  :class:`~repro.serve.loadgen.ClosedLoopLoadGenerator` — seeded traffic.
* :class:`~repro.serve.stats.ServerStats` — latency percentiles,
  throughput, shed/timeout counts, and the conservation identity
  ``issued == completed + shed + failed + in_flight``.
* :mod:`~repro.serve.resilience` — client-side retries with backoff, a
  per-server circuit breaker, the brownout degradation ladder, and the
  :class:`~repro.serve.resilience.ChaosRunner` crash-under-load harness.

Everything is DES-driven and seeded: a serving run is a pure function of
its configuration, so latency percentiles are exactly reproducible — even
through injected faults and a mid-run crash.
"""

from .admission import AdmissionController, AdmissionRejected, AdmissionTicket
from .loadgen import ClosedLoopLoadGenerator, OpenLoopLoadGenerator
from .resilience import (
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    ChaosRunner,
    CircuitBreaker,
    ClientRetryPolicy,
)
from .server import BrownoutRejected, DbmsServer, ServedRequest
from .stats import OP_KINDS, SERVE_LATENCY_BOUNDS_US, ServerStats

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutRejected",
    "ChaosRunner",
    "CircuitBreaker",
    "ClientRetryPolicy",
    "ClosedLoopLoadGenerator",
    "OpenLoopLoadGenerator",
    "DbmsServer",
    "ServedRequest",
    "ServerStats",
    "OP_KINDS",
    "SERVE_LATENCY_BOUNDS_US",
]
