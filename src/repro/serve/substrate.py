"""The shared serving-substrate factory.

A *substrate* is everything a server binds to one DES environment: the
:class:`~repro.storage.disk.DiskArray`, the (deliberately small)
:class:`~repro.storage.buffer.BufferPool`, the
:class:`~repro.storage.prefetch.AsyncPageReader` and the
:class:`~repro.serve.admission.AdmissionController`.  Before sharding,
this wiring lived inline in ``DbmsServer._build_substrate`` — and a
second copy would have appeared in the shard builder.  Extracting it
means a single-server build, a crash rebuild and every shard of a
:class:`~repro.shard.ShardRouter` all construct their storage stack
through one path.

The one degree of freedom that sharding adds is the *environment*: a
standalone server owns a fresh :class:`~repro.des.Environment`, while the
N shards of a fleet must share one clock (their scatter–gather fragments
interleave on it).  Pass ``env`` to bind the substrate to an existing
environment instead of creating one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Environment
from ..obs import MetricsRegistry, Observability
from ..storage.buffer import BufferPool
from ..storage.config import StorageConfig
from ..storage.disk import DiskArray
from ..storage.prefetch import AsyncPageReader, RetryPolicy
from .admission import AdmissionController

__all__ = ["ServingSubstrate", "build_serving_substrate"]


@dataclass
class ServingSubstrate:
    """One server's storage + admission stack, bound to one environment."""

    env: Environment
    disks: DiskArray
    pool: BufferPool
    reader: AsyncPageReader
    admission: AdmissionController


def build_serving_substrate(
    config: StorageConfig,
    store,
    *,
    env: Optional[Environment] = None,
    initial_time: float = 0.0,
    injector=None,
    mirrored: bool = False,
    obs: Optional[Observability] = None,
    policy: Optional[RetryPolicy] = None,
    seed: int = 0,
    max_concurrency: int = 16,
    queue_depth: int = 64,
    admission_mode: str = "fifo",
    metrics: Optional[MetricsRegistry] = None,
) -> ServingSubstrate:
    """Wire one complete serving substrate.

    ``env=None`` (the standalone / crash-rebuild path) creates a fresh
    environment starting at ``initial_time`` so a recovered server's clock
    stays monotonic; passing an environment (the shard path) binds this
    substrate — its disk array, reader and admission queue — to the shared
    fleet clock instead.
    """
    if env is None:
        env = Environment(initial_time=initial_time)
    obs = obs if obs is not None else Observability(metrics=metrics)
    disks = DiskArray(env, config, injector=injector, mirrored=mirrored, obs=obs)
    pool = BufferPool(config, store, obs=obs)
    reader = AsyncPageReader(env, disks, pool, policy=policy, seed=seed, obs=obs)
    admission = AdmissionController(
        env,
        max_concurrency=max_concurrency,
        max_queue_depth=queue_depth,
        mode=admission_mode,
        metrics=metrics if metrics is not None else obs.metrics,
    )
    return ServingSubstrate(env=env, disks=disks, pool=pool, reader=reader, admission=admission)
