"""Admission control for the serving layer.

The :class:`AdmissionController` gates every request between arrival and
execution with two knobs:

* a **token pool** of ``max_concurrency`` service slots (a DES
  :class:`~repro.des.Resource`, or :class:`~repro.des.PriorityResource`
  in priority mode), bounding how many operations contend for the buffer
  pool and spindles at once, and
* a **bounded wait queue**: a request arriving when all tokens are busy
  waits in the resource's queue, but only ``max_queue_depth`` waiters are
  tolerated — past the bound the request is **shed** immediately with
  :class:`AdmissionRejected` rather than queued into unbounded latency.

Queue time is accounted per request (``admission.queue_wait_us``
histogram) so latency percentiles can be decomposed into waiting vs
service.  Everything is observational and deterministic: admitting never
advances the DES clock by itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Environment, PriorityResource, Request as ResourceRequest, Resource
from ..obs import MetricsRegistry

__all__ = ["AdmissionController", "AdmissionRejected", "AdmissionTicket"]

#: Queue-wait histogram bounds: 50 us .. ~80 s, factor-1.5 geometric spacing.
QUEUE_WAIT_BOUNDS_US: tuple[float, ...] = tuple(round(50.0 * 1.5**i, 6) for i in range(36))


class AdmissionRejected(RuntimeError):
    """Request shed at admission: the wait queue is at its bound."""

    def __init__(self, queue_depth: int, max_queue_depth: int) -> None:
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"admission queue full ({queue_depth} waiting >= bound {max_queue_depth}); "
            "request shed"
        )


@dataclass
class AdmissionTicket:
    """A granted service slot plus its queue-time accounting."""

    grant: ResourceRequest
    enqueued_at: float
    granted_at: float
    priority: int = 0

    @property
    def queue_wait_us(self) -> float:
        return self.granted_at - self.enqueued_at


class AdmissionController:
    """Token-based concurrency limit with a bounded, shed-on-overflow queue.

    ``mode`` selects the waiter ordering: ``"fifo"`` (default) grants in
    arrival order; ``"priority"`` grants the lowest ``priority`` value
    first (FIFO within a class), for serving mixes where e.g. point
    lookups outrank bulk scans.
    """

    def __init__(
        self,
        env: Environment,
        max_concurrency: int = 16,
        max_queue_depth: int = 64,
        mode: str = "fifo",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        if mode not in ("fifo", "priority"):
            raise ValueError(f"mode must be 'fifo' or 'priority', got {mode!r}")
        self.env = env
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.mode = mode
        if mode == "priority":
            self._resource: Resource = PriorityResource(env, capacity=max_concurrency)
        else:
            self._resource = Resource(env, capacity=max_concurrency)
        #: The configured pool size; :meth:`resize` moves ``max_concurrency``
        #: while this stays the brownout ladder's step-up target.
        self.base_concurrency = max_concurrency
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._capacity_gauge = metrics.gauge("admission.capacity")
        self._capacity_gauge.set(max_concurrency)
        self._admitted = metrics.counter("admission.admitted")
        self._shed = metrics.counter("admission.shed")
        self._queued = metrics.counter("admission.queued")
        self._depth_gauge = metrics.gauge("admission.queue_depth")
        self._in_service_gauge = metrics.gauge("admission.in_service")
        self._queue_wait = metrics.histogram(
            "admission.queue_wait_us", bounds=QUEUE_WAIT_BOUNDS_US
        )

    # -- introspection -----------------------------------------------------

    @property
    def in_service(self) -> int:
        """Requests currently holding a service token."""
        return self._resource.count

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a token."""
        return self._resource.queue_length

    @property
    def shed_count(self) -> int:
        return int(self._shed.value)

    @property
    def admitted_count(self) -> int:
        return int(self._admitted.value)

    # -- the gate ----------------------------------------------------------

    def admit(self, priority: int = 0):
        """Process generator: wait for a service token (or be shed).

        Returns an :class:`AdmissionTicket` once granted; raises
        :class:`AdmissionRejected` *immediately* (no simulated time passes)
        when the wait queue is already at its bound.  The caller must pass
        the ticket to :meth:`release` when its operation finishes.
        """
        if self._resource.queue_length >= self.max_queue_depth and (
            self._resource.count >= self.max_concurrency
        ):
            self._shed.inc()
            raise AdmissionRejected(self._resource.queue_length, self.max_queue_depth)
        enqueued_at = self.env.now
        if self.mode == "priority":
            grant = self._resource.request(priority)
        else:
            grant = self._resource.request()
        if not grant.triggered:
            self._queued.inc()
        self._depth_gauge.set(self._resource.queue_length)
        yield grant
        granted_at = self.env.now
        self._admitted.inc()
        self._depth_gauge.set(self._resource.queue_length)
        self._in_service_gauge.set(self._resource.count)
        self._queue_wait.record(granted_at - enqueued_at)
        return AdmissionTicket(grant, enqueued_at, granted_at, priority)

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket's token, waking the best waiter (if any)."""
        self._resource.release(ticket.grant)
        self._in_service_gauge.set(self._resource.count)
        self._depth_gauge.set(self._resource.queue_length)

    def resize(self, max_concurrency: int) -> None:
        """Change the token-pool size in place (the brownout ladder's knob).

        Shrinking never revokes granted tokens — the pool drains down as
        operations finish; growing admits queued waiters immediately.  The
        shed bound keeps using the same ``max_queue_depth``.
        """
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        self.max_concurrency = max_concurrency
        self._resource.set_capacity(max_concurrency)
        self._capacity_gauge.set(max_concurrency)
        self._in_service_gauge.set(self._resource.count)
        self._depth_gauge.set(self._resource.queue_length)
