"""The multi-client serving layer over :class:`~repro.dbms.MiniDbms`.

:class:`DbmsServer` owns one shared serving substrate — a DES
:class:`~repro.des.Environment`, a :class:`~repro.storage.disk.DiskArray`,
a deliberately small :class:`~repro.storage.buffer.BufferPool` and one
:class:`~repro.storage.prefetch.AsyncPageReader` — and executes client
requests as concurrent DES processes against it.  Every request passes the
:class:`~repro.serve.admission.AdmissionController` before touching
storage, and every outcome lands in :class:`~repro.serve.stats.ServerStats`.

The request life cycle::

    submit() ── admission ──┬── shed (queue full)  -> outcome "shed"
                            └── granted ── execute op ── release token
                                   │                        │
                                   └── deadline_us expired ─┴─> client sees
                                       outcome "timeout"; the op still runs
                                       to completion (the kernel has no
                                       cancellation) and is counted in
                                       ``completed`` with ``timed_out`` set

so the conservation identity ``issued == completed + shed + failed +
in_flight`` holds at every instant of simulated time.  Everything is
seeded and DES-driven: two same-seed runs are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..btree.cc import ConcurrentTreeOps, PageLatchManager
from ..dbms.engine import MiniDbms
from ..des import Environment, Event, WaitTimeout, with_timeout
from ..faults.errors import SimulatedCrash, StorageFault
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..obs import MetricsRegistry, Observability
from ..storage.buffer import BufferPoolExhausted
from ..storage.config import StorageConfig
from ..storage.prefetch import RetryPolicy
from ..workloads.ops import FreshKeys
from .admission import AdmissionRejected
from .stats import ServerStats
from .substrate import build_serving_substrate

__all__ = ["BrownoutRejected", "DbmsServer", "ServedRequest"]


class BrownoutRejected(RuntimeError):
    """An insert shed at submission because the brownout ladder says so."""

    def __init__(self, level: int) -> None:
        super().__init__(f"insert rejected: brownout ladder at level {level}")
        self.level = level


@dataclass
class ServedRequest:
    """One client operation and its full serving history."""

    rid: int
    session: str
    op: tuple
    priority: int = 0
    issued_at: float = 0.0
    admitted_at: float = -1.0
    finished_at: float = -1.0
    #: "pending" -> "ok" | "shed" | "failed"; "timeout" means the *client*
    #: gave up — the server still finishes the op and flips this to "ok"
    #: (with ``timed_out`` kept) or "failed".
    outcome: str = "pending"
    timed_out: bool = False
    rows: int = 0
    queue_wait_us: float = 0.0
    error: Optional[BaseException] = field(default=None, repr=False)

    @property
    def kind(self) -> str:
        return self.op[0]

    @property
    def latency_us(self) -> float:
        """Issue-to-completion latency (valid once finished)."""
        return self.finished_at - self.issued_at


@dataclass
class _LookupBatch:
    """One open batch of point lookups awaiting execution."""

    bid: int
    #: (request, completion event) pairs in arrival order.
    entries: list = field(default_factory=list)
    closed: bool = False


class DbmsServer:
    """Serves concurrent lookup/scan/insert traffic against one MiniDbms.

    The buffer pool is sized by ``pool_frames`` (small relative to the
    table, so concurrent clients genuinely contend for frames and
    spindles); ``max_concurrency``/``queue_depth`` configure admission;
    ``deadline_us`` arms a per-query client deadline.  ``admission_mode``
    is ``"fifo"``, ``"priority"`` (requests then carry a priority class),
    or ``"batch"``: point lookups are collected into size- and
    deadline-bounded batches (``batch_max`` / ``batch_window_us``) and
    executed level-wise through
    :meth:`~repro.dbms.engine.MiniDbms.serve_lookup_batch` — one
    admission token, one prefetch wave per tree level, per-op latency
    attribution.  Scans and inserts flow through the individual path
    unchanged; the underlying admission queue runs FIFO.
    """

    def __init__(
        self,
        db: MiniDbms,
        max_concurrency: int = 16,
        queue_depth: int = 64,
        pool_frames: int = 128,
        page_process_us: float = 150.0,
        deadline_us: Optional[float] = None,
        admission_mode: str = "fifo",
        scan_prefetch_depth: int = 4,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        mirrored: bool = False,
        seed: int = 0,
        obs: Optional[Observability] = None,
        concurrency: str = "none",
        retry_budget: int = 8,
        batch_window_us: float = 2_000.0,
        batch_max: int = 16,
        env: Optional[Environment] = None,
        fresh_keys: Optional[FreshKeys] = None,
    ) -> None:
        if admission_mode not in ("fifo", "priority", "batch"):
            raise ValueError(f"unknown admission mode {admission_mode!r}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if batch_window_us <= 0:
            raise ValueError(f"batch_window_us must be positive, got {batch_window_us}")
        self.db = db
        self.obs = obs if obs is not None else Observability(metrics=MetricsRegistry())
        self._config = StorageConfig(
            page_size=db.page_size,
            num_disks=db.num_disks,
            buffer_pool_pages=pool_frames,
            disk=db.disk_params,
        )
        self.fault_plan = fault_plan
        self.mirrored = mirrored
        #: One injector for the server's lifetime: its per-disk RNG streams
        #: and time-phased profiles carry across a crash-rebuild, so a disk
        #: dead before the crash stays dead after recovery.
        self.injector = FaultInjector(fault_plan) if fault_plan is not None else None
        self._max_concurrency = max_concurrency
        self._queue_depth = queue_depth
        self._admission_mode = admission_mode
        #: Batch admission: lookups are grouped; the queue itself is FIFO.
        self.batching = admission_mode == "batch"
        self.batch_window_us = batch_window_us
        self.batch_max = batch_max
        self._open_batch: Optional[_LookupBatch] = None
        self._next_batch_id = 0
        self._policy = policy
        self._seed = seed
        self.stats = ServerStats(self.obs.metrics)
        self.page_process_us = page_process_us
        self.deadline_us = deadline_us
        self.scan_prefetch_depth = scan_prefetch_depth
        #: The configured depth; the brownout ladder shrinks
        #: ``scan_prefetch_depth`` and steps back up to this.
        self.base_scan_prefetch_depth = scan_prefetch_depth
        #: Brownout knobs (driven by a BrownoutController, if attached).
        self.max_scan_pages: Optional[int] = None
        self.reject_inserts = False
        #: A shard-attached server shares the fleet's DES clock instead of
        #: owning one; its substrate is bound to this environment.
        self._external_env = env
        if fresh_keys is not None:
            # A shard's allocator is range-constrained (RangeFreshKeys) so
            # routed inserts cannot mint keys outside the shard's key range.
            self.fresh_keys = fresh_keys
        else:
            #: Fresh insert keys start one stride past the stored universe.
            max_key = int(db.stored_keys[-1])
            self.fresh_keys = FreshKeys(max_key + 2, stride=2)
        self._next_rid = 0
        self.requests: list[ServedRequest] = []
        #: Concurrency control mode: "none" keeps the legacy serve_* paths
        #: (ops interleave only at yield points, tree mutations are atomic
        #: re-descents); "page" routes ops through
        #: :class:`~repro.btree.cc.ConcurrentTreeOps` — optimistic reads
        #: with version validation plus latch-crabbing writes, so sessions
        #: genuinely race inside the tree; "coarse" serializes every op
        #: behind one global latch (the benchmark baseline); "broken"
        #: disables validation (for seeding known-bad histories).
        if concurrency not in ("none",) + ConcurrentTreeOps.MODES:
            raise ValueError(f"unknown concurrency mode {concurrency!r}")
        self.concurrency = concurrency
        self.retry_budget = retry_budget
        self.latches: Optional[PageLatchManager] = None
        self.cc_ops: Optional[ConcurrentTreeOps] = None
        #: Latch/traversal counters folded across substrate rebuilds.
        self.latch_totals: dict[str, int] = {}
        #: Optional linearizability history recorder (attach_history).
        self.history = None
        self._build_substrate(initial_time=0.0)

    def _build_substrate(self, initial_time: float) -> None:
        """(Re)create the DES environment and everything bound to it.

        The wiring itself lives in
        :func:`~repro.serve.substrate.build_serving_substrate` — the same
        factory a :class:`~repro.shard.ShardRouter` drives (via ``env=``)
        for every shard, so single-server and shard construction cannot
        drift apart.
        """
        substrate = build_serving_substrate(
            self._config,
            self.db.store,
            env=self._external_env,
            initial_time=initial_time,
            injector=self.injector,
            mirrored=self.mirrored,
            obs=self.obs,
            policy=self._policy,
            seed=self._seed,
            max_concurrency=self._max_concurrency,
            queue_depth=self._queue_depth,
            admission_mode="fifo" if self.batching else self._admission_mode,
            metrics=self.obs.metrics,
        )
        self.env = substrate.env
        self.disks = substrate.disks
        self.pool = substrate.pool
        self.reader = substrate.reader
        self.admission = substrate.admission
        #: An open batch's closer timer died with the old environment, so a
        #: crash-rebuild starts with no batch collecting (its requests are
        #: drained by fail_unfinished like every other in-flight op).
        self._open_batch = None
        if self.concurrency != "none":
            self._fold_latch_counters()
            self.latches = PageLatchManager(self.env, self.db.store)
            self.latches.attach_watchdog()
            self.cc_ops = ConcurrentTreeOps(
                self.db,
                self.latches,
                mode=self.concurrency,
                page_process_us=self.page_process_us,
                retry_budget=self.retry_budget,
            )

    def _fold_latch_counters(self) -> None:
        """Fold the outgoing substrate's latch counters into the totals."""
        for source in (self.latches, self.cc_ops):
            if source is None:
                continue
            for name, value in source.counters().items():
                self.latch_totals[name] = self.latch_totals.get(name, 0) + value

    def latch_counters(self) -> dict[str, int]:
        """Cumulative concurrency-control counters (across rebuilds)."""
        totals = dict(self.latch_totals)
        for source in (self.latches, self.cc_ops):
            if source is None:
                continue
            for name, value in source.counters().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def attach_history(self, recorder) -> None:
        """Record every op's invocation/response into ``recorder``.

        The recorder is a
        :class:`~repro.verify.linearizability.HistoryRecorder`; give it a
        clock that chases the live environment (``lambda: server.env.now``)
        so it survives crash rebuilds.  Ops that fail or die in a crash are
        left pending — their effect is ambiguous, which is exactly what the
        checker's completion rule models.
        """
        self.history = recorder

    # -- request construction / submission ---------------------------------

    def make_request(self, op: tuple, session: str = "client", priority: int = 0) -> ServedRequest:
        request = ServedRequest(rid=self._next_rid, session=session, op=op, priority=priority)
        self._next_rid += 1
        return request

    def submit(self, request: ServedRequest):
        """Issue a request; returns the *client-side* process event.

        The event fires when the client is done with the request: on
        completion, on shed, or when the per-query deadline expires (the
        server keeps working past a deadline; the client just stops
        waiting).  The event's value is the request itself.
        """
        request.issued_at = self.env.now
        self.stats.issue()
        self.requests.append(request)
        return self.env.process(self._client(request))

    def _client(self, request: ServedRequest):
        if self.reject_inserts and request.kind == "insert":
            # Brownout ladder level >= 3: background inserts are shed
            # before admission so foreground reads keep the tokens.
            request.outcome = "shed"
            request.error = BrownoutRejected(self.stats.brownout_level)
            request.finished_at = self.env.now
            self.stats.shed()
            self.stats.brownout_rejection()
            return request
        if self.batching and request.kind == "lookup":
            completion = self._join_lookup_batch(request)
            if self.deadline_us is None:
                yield completion
                return request
            try:
                yield with_timeout(
                    self.env, completion, self.deadline_us,
                    detail=f"request {request.rid}",
                )
            except WaitTimeout:
                # The deadline is per op, measured from *issue* — batch
                # window wait included — and client-side only: the batch
                # keeps running and completes the op for its batchmates.
                request.timed_out = True
                request.outcome = "timeout"
                self.stats.timeout()
            return request
        try:
            ticket = yield from self.admission.admit(request.priority)
        except AdmissionRejected as exc:
            request.outcome = "shed"
            request.error = exc
            request.finished_at = self.env.now
            self.stats.shed()
            return request
        request.admitted_at = self.env.now
        request.queue_wait_us = ticket.queue_wait_us
        worker = self.env.process(self._execute(request, ticket))
        if self.deadline_us is None:
            yield worker
            return request
        try:
            yield with_timeout(
                self.env, worker, self.deadline_us, detail=f"request {request.rid}"
            )
        except WaitTimeout:
            # Client abandons; the worker keeps the token until it finishes.
            request.timed_out = True
            request.outcome = "timeout"
            self.stats.timeout()
        return request

    def _execute(self, request: ServedRequest, ticket):
        """Server-side worker: run the op, then release the service token."""
        # Bind the controller that issued the ticket: if a crash rebuilds
        # the substrate while this worker is in flight, its generator is
        # torn down later (GeneratorExit) and must not release a stale
        # ticket against the *new* controller.
        admission = self.admission
        try:
            rows = yield from self._dispatch(request)
        except SimulatedCrash:
            # The whole machine died mid-op, not just this request: let the
            # crash propagate out of the simulation so the crash handler
            # (see fail_unfinished / rebuild_substrate) accounts for every
            # in-flight request at once.  SimulatedCrash subclasses
            # StorageFault, so without this re-raise the crash would be
            # silently absorbed as one failed request.
            raise
        except (StorageFault, WaitTimeout, BufferPoolExhausted) as exc:
            request.outcome = "failed"
            request.error = exc
            request.finished_at = self.env.now
            self.stats.fail(request.kind)
            return request
        except Exception as exc:
            # Catch-all: an unexpected error (an unknown op kind, an engine
            # bug) must still land the request in "failed", or it stays
            # "pending" forever and the conservation identity breaks.
            request.outcome = "failed"
            request.error = exc
            request.finished_at = self.env.now
            self.stats.fail(request.kind)
            return request
        finally:
            if admission is self.admission:
                admission.release(ticket)
        request.rows = rows
        request.outcome = "ok"
        request.finished_at = self.env.now
        self.stats.complete(request.kind, request.latency_us, rows)
        return request

    def _dispatch(self, request: ServedRequest):
        kind = request.op[0]
        owner = f"{request.session}#{request.rid}"
        if kind == "insert" and request.op[1] is None:
            # Materialize the key into the request so clients can track
            # which acknowledged inserts must survive a crash.
            request.op = ("insert", self.fresh_keys.take())
        # History semantics: invoke at dispatch start, respond only on
        # server-side completion.  An op killed by a fault or crash never
        # responds and stays *pending* in the history — its effect is
        # ambiguous (the mutation may have committed before the write-through
        # faulted), which is the checker's completion rule exactly.
        hist_id = None
        if self.history is not None and kind in ("lookup", "scan", "insert"):
            hist_id = self.history.invoke(request.session, kind, request.op[1:])
        if kind == "lookup":
            if self.cc_ops is not None:
                row = yield from self.cc_ops.lookup(
                    self.reader, request.op[1], owner=owner
                )
            else:
                row = yield from self.db.serve_lookup(
                    self.reader, request.op[1],
                    page_process_us=self.page_process_us, owner=owner,
                )
            if hist_id is not None:
                self.history.respond(hist_id, row is not None)
            return 1 if row is not None else 0
        if kind == "scan":
            if self.cc_ops is not None:
                count, truncated = yield from self.cc_ops.scan(
                    self.reader, request.op[1], request.op[2],
                    owner=owner, max_pages=self.max_scan_pages,
                )
            else:
                count = yield from self.db.serve_scan(
                    self.reader, request.op[1], request.op[2],
                    page_process_us=self.page_process_us,
                    prefetch_depth=self.scan_prefetch_depth,
                    max_pages=self.max_scan_pages,
                    owner=owner,
                )
                truncated = self.max_scan_pages is not None
            if hist_id is not None:
                # A truncated scan's count is partial by design: record it
                # as unconstrained rather than as a model violation.
                self.history.respond(hist_id, None if truncated else int(count))
            return count
        if kind == "insert":
            key = request.op[1]
            if self.cc_ops is not None:
                yield from self.cc_ops.insert(
                    self.reader, self.disks, key, owner=owner
                )
            else:
                yield from self.db.serve_insert(
                    self.reader, self.disks, key,
                    page_process_us=self.page_process_us, owner=owner,
                )
            if hist_id is not None:
                self.history.respond(hist_id, True)
            return 1
        raise ValueError(f"unknown op kind {kind!r}")

    # -- batched lookups (admission_mode="batch") ---------------------------

    def _join_lookup_batch(self, request: ServedRequest) -> Event:
        """Add a lookup to the open batch; returns its completion event.

        The first joiner opens a fresh batch and arms its close timer
        (``batch_window_us``); reaching ``batch_max`` closes it early.  The
        completion event fires with the request once the batch resolves it
        — on success, shed, or failure.
        """
        batch = self._open_batch
        if batch is None or batch.closed:
            batch = _LookupBatch(bid=self._next_batch_id)
            self._next_batch_id += 1
            self._open_batch = batch
            self.env.process(self._batch_closer(batch))
        completion = Event(self.env)
        batch.entries.append((request, completion))
        if len(batch.entries) >= self.batch_max:
            self._close_batch(batch)
        return completion

    def _batch_closer(self, batch: _LookupBatch):
        yield self.env.timeout(self.batch_window_us)
        self._close_batch(batch)

    def _close_batch(self, batch: _LookupBatch) -> None:
        if batch.closed:
            return  # the size bound beat the timer (or vice versa)
        batch.closed = True
        if self._open_batch is batch:
            self._open_batch = None
        self.stats.batch_closed(len(batch.entries))
        self.env.process(self._batch_runner(batch))

    def _batch_runner(self, batch: _LookupBatch):
        """Execute one closed batch under a single admission token."""
        admission = self.admission
        entries = batch.entries
        try:
            ticket = yield from admission.admit(0)
        except AdmissionRejected as exc:
            for request, completion in entries:
                request.outcome = "shed"
                request.error = exc
                request.finished_at = self.env.now
                self.stats.shed()
                completion.succeed(request)
            return
        now = self.env.now
        hist_ids: list = []
        for request, __ in entries:
            request.admitted_at = now
            request.queue_wait_us = now - request.issued_at
            hist_ids.append(
                self.history.invoke(request.session, "lookup", request.op[1:])
                if self.history is not None
                else None
            )
        unfinished = set(range(len(entries)))

        def finish(i: int, row) -> None:
            request, completion = entries[i]
            unfinished.discard(i)
            request.rows = 1 if row is not None else 0
            request.outcome = "ok"
            request.finished_at = self.env.now
            self.stats.complete("lookup", request.latency_us, request.rows)
            if hist_ids[i] is not None:
                self.history.respond(hist_ids[i], row is not None)
            completion.succeed(request)

        worker = self.env.process(
            self._batch_worker(
                [request.op[1] for request, __ in entries],
                f"batch#{batch.bid}",
                finish,
            )
        )
        try:
            # Deadlines are not the runner's business: each op's client arms
            # its own issue-to-completion timeout in _client, so a shared
            # traversal never mis-attributes one op's deadline to its
            # batchmates.
            yield worker
        except SimulatedCrash:
            # Machine-wide crash: let it propagate so fail_unfinished
            # accounts for every in-flight request at once (see _execute).
            raise
        except Exception as exc:
            for i in sorted(unfinished):
                request, completion = entries[i]
                request.outcome = "failed"
                request.error = exc
                request.finished_at = self.env.now
                self.stats.fail("lookup")
                completion.succeed(request)
            unfinished.clear()
        finally:
            if admission is self.admission:
                admission.release(ticket)

    def _batch_worker(self, keys, owner, finish):
        yield from self.db.serve_lookup_batch(
            self.reader, keys,
            page_process_us=self.page_process_us,
            owner=owner, cc=self.cc_ops, on_result=finish,
        )

    # -- crash handling ----------------------------------------------------

    def fail_unfinished(self, error: BaseException) -> int:
        """Drain every non-terminal request as failed; returns the count.

        Called by the crash handler the moment a :class:`SimulatedCrash`
        propagates out of the simulation: pending requests (including ones
        whose client already timed out but whose worker was still running)
        get a terminal "failed" outcome so the conservation identity holds
        across the substrate rebuild.
        """
        drained = 0
        for request in self.requests:
            if request.finished_at >= 0:
                continue  # ok / shed / failed: already terminal
            request.outcome = "failed"
            request.error = error
            request.finished_at = self.env.now
            self.stats.fail(request.kind)
            drained += 1
        return drained

    def rebuild_substrate(self, resume_at: Optional[float] = None) -> None:
        """Stand the server back up after a crash.

        The new DES environment starts at ``resume_at`` (default: the
        crash instant) so the serving clock stays monotonic — latencies,
        time-phased fault profiles and stats all keep making sense.  The
        fault injector, stats and metrics registry survive the rebuild;
        the disk array, buffer pool, reader and admission queue are fresh.
        """
        if self._external_env is not None:
            raise RuntimeError(
                "a shard-attached server shares the fleet's DES clock and cannot "
                "rebuild its substrate independently; rebuild the fleet through "
                "its router"
            )
        self._build_substrate(initial_time=self.env.now if resume_at is None else resume_at)

    # -- reporting ---------------------------------------------------------

    @property
    def workload_keys(self):
        """The key universe load generators should draw operations from."""
        return self.db.stored_keys

    def utilization(self) -> list[float]:
        """Per-disk busy fraction over the run so far."""
        return self.disks.utilization()

    def mean_utilization(self) -> float:
        util = self.utilization()
        return sum(util) / len(util) if util else 0.0

    def run(self, until=None):
        """Advance the simulation (thin wrapper over ``env.run``)."""
        return self.env.run(until=until)
