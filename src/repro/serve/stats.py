"""Per-operation serving statistics: latency percentiles, throughput, sheds.

:class:`ServerStats` is the accounting plane of the serving layer.  It
keeps, in one (shared) :class:`~repro.obs.MetricsRegistry`:

* ``serve.issued`` / ``serve.completed`` / ``serve.shed`` /
  ``serve.failed`` counters plus a ``serve.in_flight`` gauge, related by
  the conservation invariant ``issued == completed + shed + failed +
  in_flight`` at every instant of simulated time;
* ``serve.timeouts``: client-abandoned operations (the per-query deadline
  expired while the server was still working; the operation still runs to
  completion and is counted in ``completed``, so timeouts never break the
  conservation identity);
* per-op-kind latency histograms (``serve.latency_us.lookup`` etc.) on a
  fine geometric grid, so p50/p95/p99/p999 are meaningful, plus a
  combined ``serve.latency_us.all``.

Latency is issue-to-completion (queue wait included).  Everything is a
pure function of the DES execution, so two same-seed runs snapshot
byte-identically.
"""

from __future__ import annotations

from typing import Optional

from ..obs import Histogram, MetricsRegistry

__all__ = ["ServerStats", "OP_KINDS", "SERVE_LATENCY_BOUNDS_US"]

#: The operation kinds the serving layer executes.
OP_KINDS: tuple[str, ...] = ("lookup", "scan", "insert")

#: Latency histogram bounds: 100 us .. ~57 s, factor-1.25 geometric spacing
#: (60 buckets) — fine enough that bucket-upper-bound quantiles are within
#: 25% of the true order statistic.
SERVE_LATENCY_BOUNDS_US: tuple[float, ...] = tuple(
    round(100.0 * 1.25**i, 6) for i in range(60)
)

#: The quantiles the serving layer reports, by conventional name.
PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


class ServerStats:
    """Counters, gauges and latency histograms for one serving run."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._issued = self.metrics.counter("serve.issued")
        self._completed = self.metrics.counter("serve.completed")
        self._shed = self.metrics.counter("serve.shed")
        self._failed = self.metrics.counter("serve.failed")
        self._timeouts = self.metrics.counter("serve.timeouts")
        self._in_flight = self.metrics.gauge("serve.in_flight")
        self._rows = self.metrics.counter("serve.rows_returned")
        self._latency: dict[str, Histogram] = {
            kind: self.metrics.histogram(
                f"serve.latency_us.{kind}", bounds=SERVE_LATENCY_BOUNDS_US
            )
            for kind in OP_KINDS
        }
        self._latency_all = self.metrics.histogram(
            "serve.latency_us.all", bounds=SERVE_LATENCY_BOUNDS_US
        )
        # Batch admission plane: closed batches and the ops they carried.
        self._batches = self.metrics.counter("serve.batches")
        self._batched_ops = self.metrics.counter("serve.batched_ops")
        # Resilience plane: client retries, circuit breaker, brownout, crashes.
        self._client_retries = self.metrics.counter("serve.client_retries")
        self._breaker_fast_fails = self.metrics.counter("serve.breaker.fast_fails")
        self._breaker_transitions = self.metrics.counter("serve.breaker.transitions")
        self._breaker_state = self.metrics.gauge("serve.breaker.state")
        self._brownout_level = self.metrics.gauge("serve.brownout.level")
        self._brownout_steps_down = self.metrics.counter("serve.brownout.steps_down")
        self._brownout_steps_up = self.metrics.counter("serve.brownout.steps_up")
        self._brownout_rejected = self.metrics.counter("serve.brownout.rejected")
        self._crashes = self.metrics.counter("serve.crashes")
        self._recoveries = self.metrics.counter("serve.recoveries")
        self._scrubs = self.metrics.counter("serve.scrubs")
        self._scrub_violations = self.metrics.counter("serve.scrub_violations")
        #: Outcome listeners (the brownout SLO monitor registers here): each
        #: is called as ``listener(kind, latency_us, ok)`` on every terminal
        #: server-side outcome — completions with their latency, failures
        #: with ``latency_us=None``.
        self.listeners: list = []

    # -- recording (called by the server) ----------------------------------

    def issue(self) -> None:
        self._issued.inc()
        self._in_flight.inc()

    def shed(self) -> None:
        self._shed.inc()
        self._in_flight.inc(-1)

    def timeout(self) -> None:
        """The client abandoned the op; the server is still running it."""
        self._timeouts.inc()

    def complete(self, kind: str, latency_us: float, rows: int = 0) -> None:
        self._completed.inc()
        self._in_flight.inc(-1)
        self._rows.inc(rows)
        hist = self._latency.get(kind)
        if hist is not None:
            hist.record(latency_us)
        self._latency_all.record(latency_us)
        for listener in self.listeners:
            listener(kind, latency_us, True)

    def batch_closed(self, size: int) -> None:
        """A lookup batch closed (window expired or ``batch_max`` reached).

        Each batched op is still issued/completed individually — batching
        shares I/O and admission, never the accounting — so this counter
        only attributes how the ops were executed.
        """
        self._batches.inc()
        self._batched_ops.inc(size)

    def fail(self, kind: str) -> None:
        self._failed.inc()
        self._in_flight.inc(-1)
        for listener in self.listeners:
            listener(kind, None, False)

    # -- recording (resilience plane) --------------------------------------

    def client_retry(self) -> None:
        """A client re-submitted a failed/shed/timed-out operation."""
        self._client_retries.inc()

    def breaker_fast_fail(self) -> None:
        """An open circuit breaker rejected an op before it was issued."""
        self._breaker_fast_fails.inc()

    def breaker_transition(self, state_code: int) -> None:
        """The breaker changed state (0 closed, 1 open, 2 half-open)."""
        self._breaker_transitions.inc()
        self._breaker_state.set(state_code)

    def brownout_step(self, level: int, down: bool) -> None:
        """The degradation ladder moved to ``level`` (down = degrading)."""
        (self._brownout_steps_down if down else self._brownout_steps_up).inc()
        self._brownout_level.set(level)

    def brownout_rejection(self) -> None:
        """A background op was rejected by the degradation ladder.

        The op is also recorded through :meth:`shed`, which keeps the
        conservation identity; this counter just attributes the shed.
        """
        self._brownout_rejected.inc()

    def crash(self) -> None:
        self._crashes.inc()

    def recovery(self) -> None:
        self._recoveries.inc()

    def scrub_pass(self) -> None:
        """A post-recovery structural scrub ran and found the tree sound."""
        self._scrubs.inc()

    def scrub_violation(self) -> None:
        """A post-recovery scrub found structural corruption.

        Distinct from :meth:`fail`: a scrub violation means recovery itself
        produced a broken tree — a durability bug, not a failed request.
        """
        self._scrubs.inc()
        self._scrub_violations.inc()

    # -- aggregation -------------------------------------------------------

    def merge(self, *others: "ServerStats") -> "ServerStats":
        """Aggregate this stats plane with ``others`` into a fresh one.

        Returns a new :class:`ServerStats` over a new registry holding the
        metric-by-metric sum of every source: counters add, the
        ``in_flight`` gauge adds (a fleet's in-flight total is the sum of
        its members'), and latency/queue-wait histograms merge bucket-wise,
        so percentiles of the merged object are computed over the union of
        the recorded samples — not averaged from per-source percentiles.
        Because each source satisfies the conservation identity on its own
        and every conservation field merges by summation, the merged object
        satisfies it too; this is the fleet-wide invariant the shard router
        asserts.  Sources are left untouched (listeners are not copied),
        and the same call aggregates independent runs' stats offline.
        """
        merged = ServerStats(MetricsRegistry())
        for source in (self, *others):
            merged.metrics.merge_from(source.metrics)
        return merged

    # -- reading -----------------------------------------------------------

    @property
    def issued(self) -> int:
        return int(self._issued.value)

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def shed_count(self) -> int:
        return int(self._shed.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def in_flight(self) -> int:
        return int(self._in_flight.value)

    @property
    def rows_returned(self) -> int:
        return int(self._rows.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batched_ops(self) -> int:
        return int(self._batched_ops.value)

    @property
    def client_retries(self) -> int:
        return int(self._client_retries.value)

    @property
    def breaker_fast_fails(self) -> int:
        return int(self._breaker_fast_fails.value)

    @property
    def breaker_transitions(self) -> int:
        return int(self._breaker_transitions.value)

    @property
    def brownout_level(self) -> int:
        return int(self._brownout_level.value)

    @property
    def brownout_steps_down(self) -> int:
        return int(self._brownout_steps_down.value)

    @property
    def brownout_steps_up(self) -> int:
        return int(self._brownout_steps_up.value)

    @property
    def brownout_rejected(self) -> int:
        return int(self._brownout_rejected.value)

    @property
    def crashes(self) -> int:
        return int(self._crashes.value)

    @property
    def recoveries(self) -> int:
        return int(self._recoveries.value)

    @property
    def scrubs(self) -> int:
        return int(self._scrubs.value)

    @property
    def scrub_violations(self) -> int:
        return int(self._scrub_violations.value)

    def conserved(self) -> bool:
        """The conservation identity every instant must satisfy."""
        return self.issued == self.completed + self.shed_count + self.failed + self.in_flight

    def latency_histogram(self, kind: str = "all") -> Histogram:
        if kind == "all":
            return self._latency_all
        return self._latency[kind]

    def percentiles_us(self, kind: str = "all") -> dict[str, float]:
        """p50/p95/p99/p999 of a kind's issue-to-completion latency."""
        hist = self.latency_histogram(kind)
        return {name: hist.quantile(q) for name, q in PERCENTILES}

    def throughput_ops_s(self, elapsed_us: float) -> float:
        """Completed operations per simulated second."""
        return self.completed / (elapsed_us / 1e6) if elapsed_us > 0 else 0.0

    def queue_wait_histogram(self) -> Optional[Histogram]:
        metric = self.metrics.get("admission.queue_wait_us")
        return metric if isinstance(metric, Histogram) else None

    def snapshot(self) -> dict:
        """Deterministic summary dict (JSON-safe, sorted keys downstream)."""
        out: dict = {
            "issued": self.issued,
            "completed": self.completed,
            "shed": self.shed_count,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "in_flight": self.in_flight,
            "rows_returned": self.rows_returned,
            "batches": self.batches,
            "batched_ops": self.batched_ops,
            "latency_us": {
                kind: {
                    **self.percentiles_us(kind),
                    "count": self.latency_histogram(kind).count,
                    "mean": round(self.latency_histogram(kind).mean, 3),
                }
                for kind in (*OP_KINDS, "all")
            },
            "resilience": {
                "client_retries": self.client_retries,
                "breaker_fast_fails": self.breaker_fast_fails,
                "breaker_transitions": self.breaker_transitions,
                "brownout_level": self.brownout_level,
                "brownout_steps_down": self.brownout_steps_down,
                "brownout_steps_up": self.brownout_steps_up,
                "brownout_rejected": self.brownout_rejected,
                "crashes": self.crashes,
                "recoveries": self.recoveries,
                "scrubs": self.scrubs,
                "scrub_violations": self.scrub_violations,
            },
        }
        wait = self.queue_wait_histogram()
        if wait is not None:
            out["queue_wait_us"] = {
                "count": wait.count,
                "mean": round(wait.mean, 3),
                "p99": wait.quantile(0.99),
            }
        return out
