"""Open- and closed-loop load generators for the serving layer.

Two canonical client models, both seeded and fully deterministic:

* :class:`OpenLoopLoadGenerator` — requests arrive on a Poisson process at
  a fixed *offered* rate, regardless of completions (the "users keep
  clicking" model).  Offered load above the service capacity makes the
  admission queue grow to its bound and shed — the right-hand side of the
  throughput/latency hockey-stick.
* :class:`ClosedLoopLoadGenerator` — N client sessions, each a DES process
  looping *think -> issue -> wait for completion*.  Concurrency is capped
  by construction, so offered load self-throttles to completions — the
  classic interactive-terminal model.

Both draw operations from per-session
:class:`~repro.workloads.ops.MixedOpStream` instances (independent seeded
sequences), and both leave every number in the server's
:class:`~repro.serve.stats.ServerStats`.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Union

from ..workloads.ops import KeyDistribution, MixedOpStream, OpMix
from .server import DbmsServer

__all__ = ["OpenLoopLoadGenerator", "ClosedLoopLoadGenerator"]


class OpenLoopLoadGenerator:
    """Poisson arrivals at a fixed offered rate, independent of completions.

    ``burstiness`` shapes the arrival process without changing its mean
    rate: at the default ``1.0`` arrivals are the classic Poisson stream
    (one exponential gap per request — bit-identical to the historical
    draw sequence); above it, requests arrive in geometric bursts of mean
    size ``burstiness`` separated by exponential gaps stretched by the
    same factor.  The offered load is identical; the *variance* is not —
    bursty traffic slams the admission queue in clumps, the scenario
    axis the paper's steady one-client driver never exercises.
    """

    def __init__(
        self,
        server: DbmsServer,
        rate_ops_s: float,
        duration_s: float,
        mix: Optional[OpMix] = None,
        seed: int = 0,
        session: str = "open",
        distribution: Union[None, str, KeyDistribution] = None,
        burstiness: float = 1.0,
    ) -> None:
        if rate_ops_s <= 0:
            raise ValueError(f"rate_ops_s must be positive, got {rate_ops_s}")
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if burstiness < 1.0:
            raise ValueError(f"burstiness must be >= 1.0, got {burstiness}")
        self.server = server
        self.rate_ops_s = rate_ops_s
        self.duration_us = duration_s * 1e6
        self.mix = mix if mix is not None else OpMix()
        self.seed = seed
        self.session = session
        self.distribution = distribution
        self.burstiness = burstiness
        self.issued = 0

    def _burst_size(self, rng: random.Random) -> int:
        """Geometric burst size with mean ``burstiness`` (one uniform draw)."""
        # P(K = k) = p (1-p)^(k-1) with p = 1/burstiness has mean burstiness;
        # inverse-CDF sampling keeps the draw count at exactly one per burst.
        p = 1.0 / self.burstiness
        u = max(rng.random(), 1e-12)
        return 1 + int(math.log(u) / math.log(1.0 - p))

    def _arrivals(self):
        env = self.server.env
        rng = random.Random((self.seed << 16) ^ 0xA221BA15)
        stream = MixedOpStream(
            self.server.workload_keys, self.mix, seed=self.seed + 1,
            distribution=self.distribution,
        )
        deadline = env.now + self.duration_us
        bursty = self.burstiness > 1.0
        while True:
            # Gaps stretch by the mean burst size so the offered rate is
            # unchanged: (burstiness ops) / (burstiness / rate seconds).
            gap_rate = self.rate_ops_s / self.burstiness if bursty else self.rate_ops_s
            gap_us = rng.expovariate(gap_rate) * 1e6
            if env.now + gap_us >= deadline:
                return
            yield env.timeout(gap_us)
            burst = self._burst_size(rng) if bursty else 1
            for __ in range(burst):
                request = self.server.make_request(stream.next_op(), session=self.session)
                self.server.submit(request)  # fire and forget: open loop never waits
                self.issued += 1

    def start(self):
        """Spawn the arrival process; returns its DES process event."""
        return self.server.env.process(self._arrivals())

    def run(self, until=None):
        """Start arrivals and run the simulation.

        With ``until=None`` the environment drains completely (arrivals
        stop at the configured duration; in-flight requests finish).
        Passing a time freezes the run mid-traffic — useful for sampling
        the conservation identity with requests genuinely in flight.
        """
        self.start()
        self.server.env.run(until=until)
        return self.server.stats


class ClosedLoopLoadGenerator:
    """N looping client sessions: think, issue, wait for the reply."""

    def __init__(
        self,
        server: DbmsServer,
        clients: int,
        ops_per_client: int,
        think_time_us: float = 10_000.0,
        mix: Optional[OpMix] = None,
        seed: int = 0,
        distribution: Union[None, str, KeyDistribution] = None,
    ) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if ops_per_client < 1:
            raise ValueError(f"ops_per_client must be >= 1, got {ops_per_client}")
        if think_time_us < 0:
            raise ValueError(f"think_time_us must be >= 0, got {think_time_us}")
        self.server = server
        self.clients = clients
        self.ops_per_client = ops_per_client
        self.think_time_us = think_time_us
        self.mix = mix if mix is not None else OpMix()
        self.seed = seed
        self.distribution = distribution

    def _session(self, client_id: int):
        env = self.server.env
        rng = random.Random((self.seed << 16) ^ (client_id * 0x9E3779B1) ^ 0xC105ED)
        stream = MixedOpStream(
            self.server.workload_keys, self.mix,
            seed=(self.seed << 8) + client_id,
            distribution=self.distribution,
        )
        name = f"client-{client_id}"
        for __ in range(self.ops_per_client):
            if self.think_time_us:
                yield env.timeout(rng.expovariate(1.0) * self.think_time_us)
            request = self.server.make_request(stream.next_op(), session=name)
            yield self.server.submit(request)  # closed loop: wait for the reply

    def start(self):
        """Spawn every client session; returns their process events."""
        return [
            self.server.env.process(self._session(client_id))
            for client_id in range(self.clients)
        ]

    def run(self, until=None):
        """Start all sessions and run the simulation (drains by default)."""
        self.start()
        self.server.env.run(until=until)
        return self.server.stats
