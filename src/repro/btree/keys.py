"""Key and pointer type definitions shared by all index structures.

The paper's experiments use 4-byte keys, 4-byte page ids, 4-byte tuple ids,
and 2-byte in-page offsets (Section 4.1).  :class:`KeySpec` bundles the key
width with its numpy dtype so page layouts can be computed for other widths
(the technical-report experiments use larger keys).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KeySpec",
    "KEY4",
    "KEY8",
    "PAGE_ID_SIZE",
    "TUPLE_ID_SIZE",
    "INPAGE_OFFSET_SIZE",
    "INVALID_PAGE_ID",
]

PAGE_ID_SIZE = 4
TUPLE_ID_SIZE = 4
INPAGE_OFFSET_SIZE = 2

#: Sentinel for "no page" in sibling links etc.  Kept representable in 4
#: bytes so layouts stay honest.
INVALID_PAGE_ID = 0xFFFFFFFF


@dataclass(frozen=True)
class KeySpec:
    """Width and dtype of index keys."""

    size: int
    dtype: np.dtype

    def __post_init__(self) -> None:
        if np.dtype(self.dtype).itemsize != self.size:
            raise ValueError(
                f"dtype {self.dtype} is {np.dtype(self.dtype).itemsize} bytes, expected {self.size}"
            )

    @property
    def max_key(self) -> int:
        """Largest representable key value."""
        return int(np.iinfo(self.dtype).max)

    def empty(self, capacity: int) -> np.ndarray:
        """A zeroed key array of the given capacity."""
        return np.zeros(capacity, dtype=self.dtype)


KEY4 = KeySpec(4, np.dtype(np.uint32))
KEY8 = KeySpec(8, np.dtype(np.uint64))
