"""The common index interface implemented by every tree in the repo.

All four disk-resident structures (disk-optimized B+-Tree, micro-indexing,
disk-first fpB+-Tree, cache-first fpB+-Tree) implement :class:`Index`, so
experiments iterate over them uniformly.  The contract:

* keys and tuple ids are unsigned ints that fit the tree's
  :class:`repro.btree.keys.KeySpec` / 4-byte tuple-id width;
* duplicate keys are permitted (stored adjacently);
* ``range_scan`` is inclusive on both ends and returns a count plus a tuple-id
  checksum so implementations can be cross-validated without materializing
  results;
* ``validate()`` walks the whole structure checking invariants and raises
  ``IndexCorruptionError`` on any violation (used heavily by tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .keys import KeySpec

__all__ = ["Index", "ScanResult", "IndexCorruptionError", "as_key_array", "chunk_evenly"]


class IndexCorruptionError(AssertionError):
    """A structural invariant was violated."""


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a range scan: entry count and tuple-id checksum."""

    count: int
    tid_sum: int

    def __add__(self, other: "ScanResult") -> "ScanResult":
        return ScanResult(self.count + other.count, self.tid_sum + other.tid_sum)


EMPTY_SCAN = ScanResult(0, 0)


def as_key_array(keys: Sequence[int] | np.ndarray, spec: KeySpec) -> np.ndarray:
    """Validate and convert keys to the spec's dtype (no copy if possible)."""
    array = np.asarray(keys)
    if array.ndim != 1:
        raise ValueError(f"keys must be one-dimensional, got shape {array.shape}")
    if array.size and (int(array.min()) < 0 or int(array.max()) > spec.max_key):
        raise ValueError(f"keys out of range for {spec.size}-byte keys")
    return array.astype(spec.dtype, copy=False)


def chunk_evenly(total: int, max_chunk: int) -> list[int]:
    """Split ``total`` items into near-equal chunks of at most ``max_chunk``.

    Used by bulkload to fill sibling nodes evenly (so later insertions find
    empty slots — Section 3.1.2) while respecting node capacity.
    """
    if max_chunk <= 0:
        raise ValueError(f"max_chunk must be positive, got {max_chunk}")
    if total <= 0:
        return []
    pieces = -(-total // max_chunk)  # ceil division
    base, remainder = divmod(total, pieces)
    return [base + (1 if i < remainder else 0) for i in range(pieces)]


class Index(ABC):
    """Abstract ordered index over (key, tuple-id) entries."""

    #: Human-readable name used in experiment output.
    name: str = "index"

    @abstractmethod
    def bulkload(self, keys: Sequence[int], tids: Sequence[int], fill: float = 1.0) -> None:
        """Build the tree from sorted keys with the given node fill factor."""

    @abstractmethod
    def search(self, key: int) -> Optional[int]:
        """Return the tuple id for ``key``, or None if absent."""

    @abstractmethod
    def insert(self, key: int, tid: int) -> None:
        """Insert an entry (duplicates allowed)."""

    @abstractmethod
    def delete(self, key: int) -> bool:
        """Lazily delete one entry with ``key``; True if one was removed."""

    @abstractmethod
    def range_scan(self, start_key: int, end_key: int) -> ScanResult:
        """Count entries with start_key <= key <= end_key (inclusive)."""

    def range_scan_reverse(self, start_key: int, end_key: int) -> ScanResult:
        """Scan the same range walking leaves right-to-left.

        Mirrors the paper's DB2 integration, which added sibling links in
        both directions to support reverse scans (Section 4.3.3).  The
        result is identical to :meth:`range_scan`; only the access pattern
        differs.  Optional: structures without backward links may not
        implement it.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support reverse scans")

    @abstractmethod
    def leaf_page_ids(self) -> list[int]:
        """Page ids of all leaf pages, in key order (for I/O experiments)."""

    @abstractmethod
    def validate(self) -> None:
        """Check structural invariants; raise IndexCorruptionError if broken."""

    @abstractmethod
    def items(self) -> Iterable[tuple[int, int]]:
        """All (key, tid) entries in key order (untraced; for testing)."""

    def scan_items(self, start_key: int, end_key: int) -> Iterable[tuple[int, int]]:
        """Yield (key, tid) entries with start_key <= key <= end_key, in order.

        A cursor-style companion to :meth:`range_scan` that materializes the
        entries instead of aggregating them (untraced).  Subclasses override
        this with a positioned walk; the default filters :meth:`items` and
        is correct for any implementation.
        """
        if end_key < start_key:
            return
        for key, tid in self.items():
            if key > end_key:
                return
            if key >= start_key:
                yield key, tid

    # -- shared conveniences -------------------------------------------------

    def _update_txn(self):
        """Transaction scope for one update, if crash consistency is on.

        Trees wrap each ``insert``/``delete`` body in this context.  With a
        :class:`~repro.wal.WalManager` attached to the tree's environment it
        returns a WAL transaction (multi-page splits become atomic); without
        one it is a no-op, preserving unlogged behaviour.  Reentrant: an
        outer transaction (e.g. a DBMS-level row operation) absorbs it.
        """
        wal = getattr(getattr(self, "env", None), "wal", None)
        return wal.transaction() if wal is not None else nullcontext()

    @property
    @abstractmethod
    def num_entries(self) -> int:
        """Number of live entries."""

    @property
    @abstractmethod
    def num_pages(self) -> int:
        """Number of allocated disk pages (the Figure 16 space metric)."""

    def check_fill(self, fill: float) -> float:
        if not 0.0 < fill <= 1.0:
            raise ValueError(f"fill factor must be in (0, 1], got {fill}")
        return fill
