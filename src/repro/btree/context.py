"""Per-tree environment: page store, buffer pool, tracer, address space.

Every index owns its own :class:`~repro.storage.PageStore` and
:class:`~repro.storage.BufferPool` (as separate indexes would in a DBMS) but
may share a :class:`~repro.mem.MemorySystem` with other trees in the same
experiment, since the simulated CPU is what's being measured.
"""

from __future__ import annotations

from typing import Optional

from ..mem.hierarchy import MemorySystem
from ..mem.layout import AddressSpace
from ..storage.buffer import BufferPool
from ..storage.config import StorageConfig
from ..storage.pager import PageStore
from .keys import KEY4, KeySpec
from .trace import Tracer

__all__ = ["TreeEnvironment"]


class TreeEnvironment:
    """Bundles the substrate objects an index needs."""

    def __init__(
        self,
        page_size: int = 16 * 1024,
        keyspec: KeySpec = KEY4,
        mem: Optional[MemorySystem] = None,
        buffer_pages: int = 8192,
        address_space: Optional[AddressSpace] = None,
    ) -> None:
        self.page_size = page_size
        self.keyspec = keyspec
        self.mem = mem
        self.tracer = Tracer(mem)
        self.address_space = address_space if address_space is not None else AddressSpace()
        self.storage_config = StorageConfig(
            page_size=page_size, buffer_pool_pages=buffer_pages, num_disks=1
        )
        self.store = PageStore(page_size)
        self.pool = BufferPool(self.storage_config, self.store, mem=mem, address_space=self.address_space)
        #: Write-ahead-log manager, attached by :class:`repro.wal.WalManager`
        #: when crash consistency is enabled; ``None`` means updates are
        #: unlogged (the original fair-weather behaviour).
        self.wal = None

    @property
    def line_size(self) -> int:
        """Cache line size in effect (64 if no memory system attached)."""
        return self.mem.config.line_size if self.mem is not None else 64
