"""Traced binary search over sorted key arrays.

All index structures locate keys with the same binary search so their busy
time and probe counts are directly comparable; what differs between them is
the *addresses* probed, which is exactly what the paper's analysis hinges on
(Section 3: binary search over a page-sized array has no spatial locality,
while a cache-line-sized node turns the last probes into cache hits).
"""

from __future__ import annotations

import numpy as np

from .trace import NULL_TRACER, Tracer

__all__ = ["traced_searchsorted", "child_slot", "insertion_slot"]


def traced_searchsorted(
    keys: np.ndarray,
    count: int,
    key: int,
    base_address: int,
    key_size: int,
    tracer: Tracer = NULL_TRACER,
    side: str = "left",
) -> int:
    """Binary search matching ``np.searchsorted(keys[:count], key, side)``.

    Each probe charges a demand load of the probed key plus compare/branch
    costs.  ``base_address`` is the simulated address of ``keys[0]``.
    """
    if count < 0 or count > len(keys):
        raise ValueError(f"count {count} out of range for capacity {len(keys)}")
    if not tracer.active:
        return int(np.searchsorted(keys[:count], key, side=side))
    lo, hi = 0, count
    if side == "left":
        while lo < hi:
            mid = (lo + hi) // 2
            tracer.probe(base_address + mid * key_size, key_size)
            if int(keys[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
    elif side == "right":
        while lo < hi:
            mid = (lo + hi) // 2
            tracer.probe(base_address + mid * key_size, key_size)
            if key < int(keys[mid]):
                hi = mid
            else:
                lo = mid + 1
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    return lo


def child_slot(
    keys: np.ndarray,
    count: int,
    key: int,
    base_address: int,
    key_size: int,
    tracer: Tracer = NULL_TRACER,
    side: str = "right",
) -> int:
    """Which child to descend into for ``key``.

    Non-leaf nodes store, for each child, the smallest key of its subtree
    (the bulkload convention used throughout): the correct child is the last
    one whose separator is <= key, clamped to the first child.

    ``side="left"`` biases toward the *leftmost* child that may contain the
    key: with duplicate keys spanning a node boundary, the separator of the
    right sibling equals the key, and a range scan's initial descent must
    land before the first duplicate rather than on the sibling.
    """
    position = traced_searchsorted(keys, count, key, base_address, key_size, tracer, side=side)
    return max(position - 1, 0)


def insertion_slot(
    keys: np.ndarray,
    count: int,
    key: int,
    base_address: int,
    key_size: int,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Leaf position for ``key``: first slot with an equal-or-greater key."""
    return traced_searchsorted(keys, count, key, base_address, key_size, tracer, side="left")
