"""Shared B+-Tree infrastructure: keys, tracing, search, the Index interface."""

from .base import Index, IndexCorruptionError, ScanResult, as_key_array, chunk_evenly
from .inspect import TreeReport, inspect_tree
from .keys import (
    INPAGE_OFFSET_SIZE,
    INVALID_PAGE_ID,
    KEY4,
    KEY8,
    PAGE_ID_SIZE,
    TUPLE_ID_SIZE,
    KeySpec,
)
from .search import child_slot, insertion_slot, traced_searchsorted
from .trace import NULL_TRACER, Tracer

__all__ = [
    "Index",
    "TreeReport",
    "inspect_tree",
    "IndexCorruptionError",
    "ScanResult",
    "as_key_array",
    "chunk_evenly",
    "KeySpec",
    "KEY4",
    "KEY8",
    "PAGE_ID_SIZE",
    "TUPLE_ID_SIZE",
    "INPAGE_OFFSET_SIZE",
    "INVALID_PAGE_ID",
    "child_slot",
    "insertion_slot",
    "traced_searchsorted",
    "NULL_TRACER",
    "Tracer",
]
