"""Access tracing: the bridge between index code and the cache simulator.

Index implementations never talk to :class:`repro.mem.MemorySystem`
directly; they go through a :class:`Tracer`, which either forwards accesses
(cache-performance experiments) or swallows them (pure-functional and
I/O-only experiments, where ``mem is None``).  This keeps a single code path
for every tree operation regardless of the measurement plane.

Every forwarded access is *batched*: one ``read_run``/``write_run``/
``prefetch_run``/``probe_run`` call per byte range, so the memory system
walks the covered cache lines in a single tight loop instead of paying a
Python call per line.  The batched entry points are pinned to the scalar
ones by the golden-equivalence tests (DESIGN.md §8) — simulated cycles are
identical, only wall-clock overhead changes.

The tracer also centralizes the CPU cost conventions:

* :meth:`probe` — one binary-search probe: a demand load of the key plus the
  compare/branch busy time and the expected branch-misprediction stall.
* :meth:`move` — shifting ``nbytes`` of entries during insertion/deletion:
  demand-touches the source and destination line ranges and charges the
  per-line copy busy time.  This is the "data movement" cost that dominates
  updates in disk-optimized B+-Trees (paper Section 4.2.2).
"""

from __future__ import annotations

from typing import Optional

from ..mem.hierarchy import MemorySystem

__all__ = ["Tracer", "RecordingTracer", "replay_ops", "NULL_TRACER"]


class Tracer:
    """Forwards simulated memory accesses to an optional memory system."""

    __slots__ = ("mem",)

    def __init__(self, mem: Optional[MemorySystem] = None) -> None:
        self.mem = mem

    @property
    def active(self) -> bool:
        """True when accesses are being accounted."""
        return self.mem is not None and self.mem.enabled

    # -- plain accesses ------------------------------------------------------

    def read(self, address: int, nbytes: int) -> None:
        mem = self.mem
        if mem is not None:
            mem.read_run(address, nbytes)

    def write(self, address: int, nbytes: int) -> None:
        mem = self.mem
        if mem is not None:
            mem.write_run(address, nbytes)

    def prefetch(self, address: int, nbytes: int) -> None:
        mem = self.mem
        if mem is not None:
            mem.prefetch_run(address, nbytes)

    def busy(self, cycles: float) -> None:
        mem = self.mem
        if mem is not None:
            mem.busy(cycles)

    # -- composite costs ------------------------------------------------------

    def probe(self, address: int, nbytes: int = 4) -> None:
        """One binary-search probe: load + compare + branch."""
        mem = self.mem
        if mem is not None:
            mem.probe_run(address, nbytes)

    def scan(self, address: int, nbytes: int, per_line_busy: float = 2.0) -> None:
        """Sequentially read a byte range, with light per-line busy work."""
        mem = self.mem
        if mem is None or nbytes <= 0:
            return
        lines = mem.read_run(address, nbytes)
        mem.busy(per_line_busy * lines)

    def move(self, dst_address: int, src_address: int, nbytes: int) -> None:
        """Copy ``nbytes`` from src to dst (entry shifting / node copying)."""
        mem = self.mem
        if mem is None or nbytes <= 0:
            return
        mem.read_run(src_address, nbytes)
        lines = mem.write_run(dst_address, nbytes)
        mem.busy(mem.cpu.copy_per_line * lines)

    def visit_node(self) -> None:
        """Per-node bookkeeping cost (header decode, bounds setup)."""
        mem = self.mem
        if mem is not None:
            mem.busy(mem.cpu.node_visit)

    def call_overhead(self) -> None:
        """Per-operation dispatch cost."""
        mem = self.mem
        if mem is not None:
            mem.busy(mem.cpu.function_call)


class RecordingTracer(Tracer):
    """A tracer that also records every op for later replay.

    Used by ``benchmarks/bench_selfperf.py`` to capture the exact access
    stream a search workload produces, so the engines can be raced on the
    *same* trace — and by tests, to assert that two replay paths see the
    same ops.  Records are plain tuples, ``(op_name, *args)``, replayable
    via :func:`replay_ops`.
    """

    __slots__ = ("ops",)

    def __init__(self, mem: Optional[MemorySystem] = None) -> None:
        super().__init__(mem)
        self.ops: list[tuple] = []

    def read(self, address: int, nbytes: int) -> None:
        self.ops.append(("read", address, nbytes))
        super().read(address, nbytes)

    def write(self, address: int, nbytes: int) -> None:
        self.ops.append(("write", address, nbytes))
        super().write(address, nbytes)

    def prefetch(self, address: int, nbytes: int) -> None:
        self.ops.append(("prefetch", address, nbytes))
        super().prefetch(address, nbytes)

    def busy(self, cycles: float) -> None:
        self.ops.append(("busy", cycles))
        super().busy(cycles)

    def probe(self, address: int, nbytes: int = 4) -> None:
        self.ops.append(("probe", address, nbytes))
        super().probe(address, nbytes)

    def scan(self, address: int, nbytes: int, per_line_busy: float = 2.0) -> None:
        self.ops.append(("scan", address, nbytes, per_line_busy))
        super().scan(address, nbytes, per_line_busy)

    def move(self, dst_address: int, src_address: int, nbytes: int) -> None:
        self.ops.append(("move", dst_address, src_address, nbytes))
        super().move(dst_address, src_address, nbytes)

    def visit_node(self) -> None:
        self.ops.append(("visit_node",))
        super().visit_node()

    def call_overhead(self) -> None:
        self.ops.append(("call_overhead",))
        super().call_overhead()


def replay_ops(ops, tracer) -> None:
    """Drive a tracer (or duck-typed equivalent) with recorded ops.

    Accepts the tuples produced by :class:`RecordingTracer` and the lists
    loaded from the committed golden-trace fixture.  Two extra op kinds
    address the memory system directly (they have no tracer method):
    ``other_stall`` and ``clear`` (cache flush).
    """
    mem = tracer.mem
    for op in ops:
        kind = op[0]
        # Dispatch ordered by observed frequency in search traces.
        if kind == "probe":
            tracer.probe(op[1], op[2])
        elif kind == "read":
            tracer.read(op[1], op[2])
        elif kind == "prefetch":
            tracer.prefetch(op[1], op[2])
        elif kind == "write":
            tracer.write(op[1], op[2])
        elif kind == "scan":
            tracer.scan(op[1], op[2], op[3])
        elif kind == "move":
            tracer.move(op[1], op[2], op[3])
        elif kind == "busy":
            tracer.busy(op[1])
        elif kind == "visit_node":
            tracer.visit_node()
        elif kind == "call_overhead":
            tracer.call_overhead()
        elif kind == "other_stall":
            mem.other_stall(op[1])
        elif kind == "clear":
            mem.clear_caches()
        else:
            raise ValueError(f"unknown trace op {kind!r}")


#: Shared inactive tracer for untraced use.
NULL_TRACER = Tracer(None)
