"""Access tracing: the bridge between index code and the cache simulator.

Index implementations never talk to :class:`repro.mem.MemorySystem`
directly; they go through a :class:`Tracer`, which either forwards accesses
(cache-performance experiments) or swallows them (pure-functional and
I/O-only experiments, where ``mem is None``).  This keeps a single code path
for every tree operation regardless of the measurement plane.

The tracer also centralizes the CPU cost conventions:

* :meth:`probe` — one binary-search probe: a demand load of the key plus the
  compare/branch busy time and the expected branch-misprediction stall.
* :meth:`move` — shifting ``nbytes`` of entries during insertion/deletion:
  demand-touches the source and destination line ranges and charges the
  per-line copy busy time.  This is the "data movement" cost that dominates
  updates in disk-optimized B+-Trees (paper Section 4.2.2).
"""

from __future__ import annotations

from typing import Optional

from ..mem.hierarchy import MemorySystem

__all__ = ["Tracer", "NULL_TRACER"]


class Tracer:
    """Forwards simulated memory accesses to an optional memory system."""

    __slots__ = ("mem",)

    def __init__(self, mem: Optional[MemorySystem] = None) -> None:
        self.mem = mem

    @property
    def active(self) -> bool:
        """True when accesses are being accounted."""
        return self.mem is not None and self.mem.enabled

    # -- plain accesses ------------------------------------------------------

    def read(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.read(address, nbytes)

    def write(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.write(address, nbytes)

    def prefetch(self, address: int, nbytes: int) -> None:
        if self.mem is not None:
            self.mem.prefetch(address, nbytes)

    def busy(self, cycles: float) -> None:
        if self.mem is not None:
            self.mem.busy(cycles)

    # -- composite costs ------------------------------------------------------

    def probe(self, address: int, nbytes: int = 4) -> None:
        """One binary-search probe: load + compare + branch."""
        if self.mem is None:
            return
        self.mem.read(address, nbytes)
        self.mem.probe_penalty()

    def scan(self, address: int, nbytes: int, per_line_busy: float = 2.0) -> None:
        """Sequentially read a byte range, with light per-line busy work."""
        if self.mem is None or nbytes <= 0:
            return
        self.mem.read(address, nbytes)
        lines = len(self.mem.config.lines_touched(address, nbytes))
        self.mem.busy(per_line_busy * lines)

    def move(self, dst_address: int, src_address: int, nbytes: int) -> None:
        """Copy ``nbytes`` from src to dst (entry shifting / node copying)."""
        if self.mem is None or nbytes <= 0:
            return
        self.mem.read(src_address, nbytes)
        self.mem.write(dst_address, nbytes)
        lines = len(self.mem.config.lines_touched(dst_address, nbytes))
        self.mem.busy(self.mem.cpu.copy_per_line * lines)

    def visit_node(self) -> None:
        """Per-node bookkeeping cost (header decode, bounds setup)."""
        if self.mem is not None:
            self.mem.busy(self.mem.cpu.node_visit)

    def call_overhead(self) -> None:
        """Per-operation dispatch cost."""
        if self.mem is not None:
            self.mem.busy(self.mem.cpu.function_call)


#: Shared inactive tracer for untraced use.
NULL_TRACER = Tracer(None)
