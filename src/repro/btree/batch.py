"""Level-wise batched point lookups over the disk-first fpB+-Tree.

Single-query traversal — even the concurrent one in :mod:`repro.btree.cc`
— chases one root-to-leaf pointer path at a time, so a batch of B lookups
pays B root decodes, B separate descents and B random leaf reads.  This
module applies the paper's core move (fetch a whole fractal level in one
prefetch wave) *across* queries, in the spirit of the FPGA level-wise
batch-search design (arXiv:2604.21117) and BS-tree's data-parallel node
layout (arXiv:2505.01180):

* **Sort and dedup.**  The batch's keys are routed together, so all keys
  that fall into one page share a single demand read, a single
  ``page_process_us`` charge and a single separator decode — upper levels
  (the root above all) collapse to one visit per page per batch.
* **Level-wise waves.**  The frontier of pages needed for the next level
  is issued as one :meth:`~repro.storage.prefetch.AsyncPageReader.prefetch_wave`
  in sorted page-id order before any demand blocks, so the spindles see a
  near-sequential run of short seeks instead of B independent random
  reads, and the per-page latencies overlap.
* **Vectorized in-page search.**  Each visited page's in-page leaf nodes
  are flattened once into sorted separator arrays and every key routed
  with one ``np.searchsorted`` call (:func:`route_batch_in_page`,
  :func:`search_leaf_page_batch`) — bit-equivalent to the scalar
  :func:`~repro.btree.cc._route_in_page` walk, at numpy speed.

Concurrency follows the mode of the :class:`~repro.btree.cc.ConcurrentTreeOps`
the batch is given:

* ``cc=None`` (the serving layer's ``concurrency="none"``): tree mutations
  are atomic between DES yields, but a split can still land *between* the
  batch's yields and stale-route a key.  The batch snapshots
  ``MiniDbms.leaf_map_epoch()`` at the start and, at every leaf visit,
  falls back to an atomic fresh ``index.search`` for the affected keys the
  moment the epoch moved — the batched results are always what a
  per-key ``serve_lookup`` would have returned.
* ``mode="page"``: the optimistic seqlock protocol of
  :meth:`~repro.btree.cc.ConcurrentTreeOps._optimistic_descend`, batched —
  versions are captured via ``read_begin`` before a page is trusted and
  re-validated after its routing; keys whose parent validation fails
  restart from the root, and after ``retry_budget`` failed passes they
  fall back to the single-key concurrent lookup (which always makes
  progress).  Batches therefore stay linearizable per key.
* ``mode="coarse"``: the whole batch runs under the tree-wide latch.
* ``mode="broken"``: validation off (the seeded negative control).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .cc import GLOBAL_LATCH, ConcurrentTreeOps

__all__ = [
    "LevelWiseLookupBatch",
    "page_separator_arrays",
    "route_batch_in_page",
    "search_leaf_page_batch",
]


def page_separator_arrays(page) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a page's in-page leaf nodes into sorted (keys, ptrs) arrays.

    The in-page tree stores its entries across cache-line-sized leaf nodes;
    concatenating them in key order yields one sorted separator array per
    page, which is what makes whole-batch ``searchsorted`` routing possible.
    Decoding is O(entries) once per page per batch, instead of one scalar
    node walk per key.
    """
    nodes = page.leaf_nodes_in_order()
    if not nodes:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = np.concatenate([node.keys[: node.count] for node in nodes])
    ptrs = np.concatenate([node.ptrs[: node.count] for node in nodes])
    return keys, ptrs


def route_batch_in_page(page, keys: np.ndarray) -> np.ndarray:
    """Route a sorted key batch through one interior page to child page ids.

    Equivalent to ``[_route_in_page(page, k) for k in keys]`` (the slot of
    the rightmost separator ``<= k``, clamped to the first child for keys
    below every separator), in one vectorized ``searchsorted``.
    """
    seps, ptrs = page_separator_arrays(page)
    # Compare in signed 64-bit: the stored key dtype may be unsigned, and a
    # below-range probe key must clamp to the first child, not wrap around.
    slots = np.searchsorted(
        seps.astype(np.int64, copy=False),
        np.asarray(keys, dtype=np.int64),
        side="right",
    ) - 1
    np.clip(slots, 0, None, out=slots)
    return ptrs[slots].astype(np.int64, copy=False)


def search_leaf_page_batch(page, keys: np.ndarray) -> np.ndarray:
    """Exact-match a key batch inside one leaf page; 0 marks a miss.

    Tuple ids are 1-based everywhere (see ``MiniDbms.lookup``), so 0 is
    free to encode "not present".  Equivalent to per-key
    :func:`~repro.btree.cc._search_leaf_page`.
    """
    seps, ptrs = page_separator_arrays(page)
    karr = np.asarray(keys, dtype=np.int64)
    if len(seps) == 0:
        return np.zeros(len(karr), dtype=np.int64)
    seps = seps.astype(np.int64, copy=False)  # signed compare (see routing)
    slots = np.searchsorted(seps, karr, side="left")
    clamped = np.minimum(slots, len(seps) - 1)
    found = (slots < len(seps)) & (seps[clamped] == karr)
    return np.where(found, ptrs[clamped], 0).astype(np.int64, copy=False)


class LevelWiseLookupBatch:
    """One batch of point lookups executed level-by-level.

    ``run`` is a DES process generator; results come back aligned with the
    input ``keys`` (rows, or ``None`` for misses).  ``on_result(index, row)``
    fires the moment each key's row (or miss) is decided — per-op latency
    attribution for the serving layer, without waiting for batch stragglers.
    """

    def __init__(
        self,
        db,
        keys,
        page_process_us: float = 150.0,
        owner=None,
        cc: Optional[ConcurrentTreeOps] = None,
    ) -> None:
        self.db = db
        self.keys = [int(k) for k in keys]
        self.page_process_us = page_process_us
        self.owner = owner
        self.cc = cc
        self.mode = "none" if cc is None else cc.mode
        self.retry_budget = 1 if cc is None else cc.retry_budget
        # Batch-shaped instrumentation (read by tests and benchmarks).
        self.pages_visited = 0
        self.restarts = 0
        self.fallback_lookups = 0
        self.epoch_fallbacks = 0

    # -- entry point ---------------------------------------------------------

    def run(self, reader, on_result: Optional[Callable] = None):
        """Process generator: resolve every key; returns the row list."""
        if not self.keys:
            return []
        if self.mode == "coarse":
            latches = self.cc.latches
            yield from latches.write_acquire(GLOBAL_LATCH, self.owner)
            try:
                rows = yield from self._run_batch(reader, on_result, validating=False)
            finally:
                latches.write_release(GLOBAL_LATCH, self.owner)
            return rows
        validating = self.mode == "page"
        rows = yield from self._run_batch(reader, on_result, validating)
        return rows

    # -- level-wise machinery ------------------------------------------------

    def _run_batch(self, reader, on_result, validating: bool):
        env = reader.env
        n = len(self.keys)
        rows: list = [None] * n
        tids: list = [None] * n
        done = [False] * n
        # Key indices in sorted-key order: every per-page array the passes
        # build below is then sorted too, and sibling leaves are visited
        # left-to-right (the near-sequential run the disk model rewards).
        pending = sorted(range(n), key=lambda i: self.keys[i])
        epoch0 = self.db.leaf_map_epoch() if self.mode == "none" else None
        passes = 0
        while pending:
            passes += 1
            if validating and passes > self.retry_budget:
                # The optimistic batch burned its budget: resolve the
                # stragglers through the single-key concurrent lookup,
                # which escalates to pessimistic latching and always
                # terminates.
                self.fallback_lookups += len(pending)
                for i in pending:
                    row = yield from self.cc.lookup(
                        reader, self.keys[i], owner=self.owner
                    )
                    rows[i] = row
                    done[i] = True
                    if on_result is not None:
                        on_result(i, row)
                pending = []
                break
            resolved_misses, retry = yield from self._descend_pass(
                reader, pending, tids, epoch0, validating
            )
            for i in resolved_misses:
                done[i] = True
                if on_result is not None:
                    on_result(i, None)
            if retry:
                self.restarts += 1
            pending = retry
        yield from self._heap_pass(reader, env, rows, tids, done, on_result)
        return rows

    def _descend_pass(self, reader, indices, tids, epoch0, validating: bool):
        """One root-to-leaf level-wise pass over ``indices``.

        Fills ``tids`` for keys whose leaf search concluded, returns
        ``(misses, retry)``: key indices decided absent, and key indices
        whose page validation failed (restart from the root).
        """
        env = reader.env
        tree = self.db.index
        latches = self.cc.latches if self.cc is not None else None
        retry: list[int] = []
        misses: list[int] = []
        versions: dict[int, int] = {}
        root = tree.root_pid
        if validating:
            versions[root] = yield from latches.read_begin(root, self.owner)
            if root != tree.root_pid:
                # The root split while we waited on its latch: restart on
                # the new one (mirrors _optimistic_descend).
                return [], list(indices)
        frontier: dict[int, list[int]] = {root: list(indices)}
        while frontier:
            wave = sorted(frontier)
            reader.prefetch_wave([pid for pid in wave if not reader.pool.contains(pid)])
            next_frontier: dict[int, list[int]] = {}
            for pid in wave:
                idxs = frontier[pid]
                yield from reader.demand(pid)
                with reader.pool.pinned(pid, owner=self.owner):
                    yield env.timeout(self.page_process_us)
                self.pages_visited += 1
                # Everything below here is atomic in simulated time: the
                # page is decoded, routed/searched and (in page mode)
                # validated with no intervening yield.
                page = tree.store.page(pid)
                karr = np.asarray([self.keys[i] for i in idxs], dtype=np.int64)
                if page.level == 0:
                    found = search_leaf_page_batch(page, karr)
                    if validating and not latches.validate(pid, versions[pid]):
                        retry.extend(idxs)
                        continue
                    if epoch0 is not None and self.db.leaf_map_epoch() != epoch0:
                        # A split landed between this batch's yields: the
                        # level-wise routing that led here may be stale, so
                        # re-resolve these keys with atomic fresh descents
                        # (exactly what per-key serve_lookup trusts).
                        self.epoch_fallbacks += len(idxs)
                        for i in idxs:
                            tid = tree.search(self.keys[i])
                            if tid is None:
                                misses.append(i)
                            else:
                                tids[i] = int(tid)
                        continue
                    for i, tid in zip(idxs, found.tolist()):
                        if tid:
                            tids[i] = int(tid)
                        else:
                            misses.append(i)
                    continue
                children = route_batch_in_page(page, karr)
                groups: dict[int, list[int]] = {}
                for i, child in zip(idxs, children.tolist()):
                    groups.setdefault(int(child), []).append(i)
                if validating:
                    child_versions = {}
                    for child in sorted(groups):
                        child_versions[child] = yield from latches.read_begin(
                            child, self.owner
                        )
                    if not latches.validate(pid, versions[pid]):
                        # The parent moved after routing: nothing routed
                        # from it (or the versions just captured) can be
                        # trusted.
                        retry.extend(idxs)
                        continue
                    versions.update(child_versions)
                for child, group in groups.items():
                    next_frontier.setdefault(child, []).extend(group)
            frontier = next_frontier
        return misses, retry

    def _heap_pass(self, reader, env, rows, tids, done, on_result):
        """Fetch every hit's heap page, one wave, one visit per page."""
        by_heap_page: dict[int, list[int]] = {}
        for i, tid in enumerate(tids):
            if done[i] or tid is None:
                continue
            heap_pid, __ = self.db.table.tid_to_location(tid - 1)
            by_heap_page.setdefault(heap_pid, []).append(i)
        heap_pids = sorted(by_heap_page)
        reader.prefetch_wave([pid for pid in heap_pids if not reader.pool.contains(pid)])
        for pid in heap_pids:
            yield from reader.demand(pid)
            yield env.timeout(self.page_process_us)
            self.pages_visited += 1
            for i in by_heap_page[pid]:
                rows[i] = self.db.table.fetch(tids[i] - 1)
                done[i] = True
                if on_result is not None:
                    on_result(i, rows[i])
