"""Page-level concurrency control for the disk-first fpB+-Tree.

Until this module, concurrent sessions in :mod:`repro.serve` interleaved at
*operation* granularity: every tree mutation ran atomically between DES
yields, so a traversal could never observe a half-applied split.  The races
that kill real B+-trees — a parent routing to a child that split while the
reader was waiting on disk, two writers racing for the same leaf, a scan
walking a sibling chain as it is rewired — were unreachable.  This module
makes them reachable, and then survivable:

* :class:`PageLatchManager` keeps a **version latch** per page: an integer
  that is *even while the page is free* and *odd while a writer holds it*,
  bumped on every release and on every unlatched structural mutation.  This
  is the classic optimistic lock coupling / seqlock protocol (FB+-tree,
  arXiv:2503.23397): readers never block writers and never take latches —
  they snapshot versions, do their (yield-spanning) work, and *validate*.
* :class:`ConcurrentTreeOps` implements lookup/scan/insert as DES process
  generators over a shared serving substrate:

  - **Optimistic reads** descend hand-over-hand: snapshot the parent's
    version, route to the child, snapshot the child, then re-validate the
    parent — any intervening split fails validation and restarts the
    descent from the root, up to ``retry_budget`` times, after which the
    reader falls back to pessimistic latch coupling (which always makes
    progress).
  - **Writes** try an optimistic fast path — descend latch-free, write-latch
    only the leaf, validate it — and escalate to **latch crabbing** (write
    latches taken root-to-leaf, ancestors released as soon as the child
    cannot split) when the leaf is split-unsafe or the retry budget runs
    out.  Every page a split touches is therefore either held by the
    crabbing writer or version-bumped through :meth:`PageLatchManager.structural`,
    so concurrent readers detect it.
  - **Scans** validate every visited leaf twice: per page while walking the
    sibling chain, and all of them together at the end, so the returned
    count corresponds to one instant of simulated time (the linearization
    point) rather than a smear across the walk.

* ``mode="coarse"`` serializes every operation behind one global latch —
  the baseline the contended-serve benchmark compares against.
* ``mode="broken"`` deliberately skips validation and applies inserts into
  the traversal's (possibly stale) leaf: the lost updates it manufactures
  are the known-bad histories :mod:`repro.verify.linearizability` must
  reject.

All latch waits are FIFO and purely DES-event-driven, so two same-seed runs
are byte-identical.  If the event queue drains while waiters are still
parked (a latch leak), the manager's deadlock watchdog — registered on
:attr:`Environment.drain_checks` — raises :class:`LatchDeadlockError`
naming every held latch, its holder, and the parked waiters, instead of
letting the simulation end in a silent hang.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from ..des import Environment, Event, SimulationError
from .keys import INVALID_PAGE_ID

__all__ = [
    "GLOBAL_LATCH",
    "ConcurrentTreeOps",
    "LatchDeadlockError",
    "OptimisticRetryExceeded",
    "PageLatchManager",
]

#: Pseudo page id of the tree-wide latch used by ``mode="coarse"`` (real
#: page ids are dense non-negative integers, so -1 can never collide).
GLOBAL_LATCH = -1

#: Default version wrap: even, and large enough that the ABA window (a
#: version re-reaching its old value while a reader is stalled) needs two
#: billion writes inside one traversal — unreachable in any simulated run.
DEFAULT_VERSION_WRAP = 1 << 32


class LatchDeadlockError(SimulationError):
    """The DES queue drained while latch waiters were still parked.

    Raised by the deadlock watchdog (:meth:`PageLatchManager.attach_watchdog`)
    instead of letting ``env.run()`` return with processes silently stuck.
    The message names each held latch with its holder and each parked
    waiter, which is the information needed to find the leaked release.
    """

    def __init__(self, held: dict, parked: list) -> None:
        held_desc = (
            ", ".join(f"page {pid} held by {holder!r}" for pid, holder in sorted(held.items()))
            or "none"
        )
        parked_desc = ", ".join(
            f"page {pid} <- {kind} waiter {owner!r}" for pid, owner, kind in parked
        )
        super().__init__(
            "event queue drained with latch waiters parked: "
            f"held latches: [{held_desc}]; parked waiters: [{parked_desc}]"
        )
        self.held = held
        self.parked = parked


class OptimisticRetryExceeded(RuntimeError):
    """An optimistic traversal burned its whole retry budget.

    Only raised when no pessimistic fallback is possible; the serving paths
    in :class:`ConcurrentTreeOps` fall back to latch coupling instead.
    """


class _Latch:
    """One page's version latch: seqlock counter plus a FIFO wait queue."""

    __slots__ = ("version", "holder", "waiters")

    def __init__(self) -> None:
        self.version = 0
        self.holder: Optional[str] = None
        self.waiters: deque[tuple[Event, Optional[str], str]] = deque()


class PageLatchManager:
    """Per-page version latches over one DES environment.

    ``wrap`` bounds the version counter (must be even so wraparound
    preserves the free/held parity); tests shrink it to exercise the
    wraparound path.  The manager is bound to one environment — a crash
    rebuild creates a fresh manager, and releases issued by torn-down
    generators against the old one are inert by construction (they only
    touch the dead manager's state and schedule on the dead queue).
    """

    def __init__(
        self,
        env: Environment,
        store=None,
        wrap: int = DEFAULT_VERSION_WRAP,
    ) -> None:
        if wrap < 4 or wrap % 2:
            raise ValueError(f"wrap must be an even integer >= 4, got {wrap}")
        self.env = env
        self.store = store
        self.wrap = wrap
        self._latches: dict[int, _Latch] = {}
        # Counters are only ever incremented from live traversal bodies
        # (never from ``finally`` release paths), so generator teardown
        # after a crash cannot perturb them.
        self.optimistic_reads = 0
        self.read_waits = 0
        self.write_acquires = 0
        self.write_waits = 0
        self.validation_failures = 0

    def _latch(self, pid: int) -> _Latch:
        latch = self._latches.get(pid)
        if latch is None:
            latch = self._latches[pid] = _Latch()
        return latch

    # -- optimistic read protocol ------------------------------------------

    def read_begin(self, pid: int, owner: Optional[str] = None):
        """Process generator: wait out any writer, return the even version."""
        latch = self._latch(pid)
        self.optimistic_reads += 1
        while latch.version & 1:
            event = Event(self.env)
            latch.waiters.append((event, owner, "read"))
            self.read_waits += 1
            yield event
        return latch.version

    def version(self, pid: int) -> int:
        """The page's current version (odd while write-held)."""
        return self._latch(pid).version

    def validate(self, pid: int, expected: int) -> bool:
        """True iff the page is unlocked and unchanged since ``expected``."""
        if self._latch(pid).version == expected:
            return True
        self.validation_failures += 1
        return False

    # -- write latching ----------------------------------------------------

    def write_acquire(self, pid: int, owner: Optional[str] = None):
        """Process generator: FIFO write latch; returns the pre-lock version."""
        latch = self._latch(pid)
        self.write_acquires += 1
        if latch.version & 1:
            event = Event(self.env)
            latch.waiters.append((event, owner, "write"))
            self.write_waits += 1
            yield event
            # Direct hand-off: the releaser re-locked the latch on our
            # behalf (no barging), so the version is already odd.
            latch.holder = owner
            return (latch.version - 1) % self.wrap
        pre = latch.version
        latch.version = (latch.version + 1) % self.wrap
        latch.holder = owner
        return pre

    def write_release(self, pid: int, owner: Optional[str] = None) -> None:
        """Release a write latch, bumping the version and waking waiters.

        Parked readers ahead of the next writer are all resumed (they
        re-check and re-park if a writer was granted in the same release);
        the first parked writer gets the latch handed off directly, which
        keeps the queue FIFO.  Intentionally counter-free: this runs from
        ``finally`` blocks during generator teardown after a crash, and
        must not perturb deterministic statistics.
        """
        latch = self._latch(pid)
        if not latch.version & 1:
            raise SimulationError(f"write_release of unheld latch on page {pid} by {owner!r}")
        latch.version = (latch.version + 1) % self.wrap
        latch.holder = None
        while latch.waiters:
            event, w_owner, kind = latch.waiters.popleft()
            if kind == "read":
                event.succeed()
                continue
            # Hand the latch to the next writer before any new arrival can
            # barge: lock now, let the waiter's generator adopt it on resume.
            latch.version = (latch.version + 1) % self.wrap
            latch.holder = w_owner
            event.succeed(True)
            break

    def locked(self, pid: int) -> bool:
        return bool(self._latch(pid).version & 1)

    def bump(self, pid: int) -> None:
        """Advance a page's version by a full cycle without latching it.

        Used for pages a structural change mutates *without* holding their
        latch (freshly allocated split siblings, a rewired neighbor's
        back-pointer, a new root): +2 preserves the free/held parity while
        invalidating every optimistic snapshot of the page.
        """
        latch = self._latch(pid)
        latch.version = (latch.version + 2) % self.wrap

    @contextmanager
    def structural(self, held: Iterator[int] = ()) -> Iterator[None]:
        """Bump the version of every page the enclosed mutation touches.

        Chains onto the store's ``write_observer`` (preserving WAL logging)
        to record the write set, then bumps each mutated or allocated page
        that is not in ``held`` — held pages get their bump from
        :meth:`write_release`.  This is what makes mutations performed by
        the underlying (atomic) tree code visible to optimistic readers.
        """
        if self.store is None:
            raise SimulationError("structural() needs the manager bound to a page store")
        mutated: dict[int, None] = {}
        previous = self.store.write_observer

        def observe(event: str, page_id: int) -> None:
            if previous is not None:
                previous(event, page_id)
            if event in ("alloc", "dirty"):
                mutated[page_id] = None

        self.store.write_observer = observe
        try:
            yield
        finally:
            self.store.write_observer = previous
            held_set = set(held)
            for pid in mutated:
                if pid not in held_set:
                    self.bump(pid)

    # -- watchdog ----------------------------------------------------------

    def held_latches(self) -> dict[int, Optional[str]]:
        """Currently write-held latches: page id -> holder label."""
        return {
            pid: latch.holder for pid, latch in self._latches.items() if latch.version & 1
        }

    def parked_waiters(self) -> list[tuple[int, Optional[str], str]]:
        """Parked waiters as (page id, owner, "read" | "write") triples."""
        return [
            (pid, owner, kind)
            for pid, latch in self._latches.items()
            for __, owner, kind in latch.waiters
        ]

    def attach_watchdog(self, env: Optional[Environment] = None) -> None:
        """Register the deadlock check on the environment's drain hooks."""
        (env if env is not None else self.env).drain_checks.append(self._drain_check)

    def _drain_check(self) -> None:
        parked = self.parked_waiters()
        if parked:
            raise LatchDeadlockError(self.held_latches(), parked)

    def counters(self) -> dict[str, int]:
        """Deterministic counter snapshot (merged across rebuilds upstream)."""
        return {
            "optimistic_reads": self.optimistic_reads,
            "read_waits": self.read_waits,
            "write_acquires": self.write_acquires,
            "write_waits": self.write_waits,
            "validation_failures": self.validation_failures,
        }


# -- untraced in-page helpers (mirror DiskFirstFpTree.page_path) ---------------


def _route_in_page(page, key: int) -> int:
    """Route ``key`` through an interior page to a child page id (atomic)."""
    node = page.root
    while node.kind == 0:  # NONLEAF (repro.core.inpage): walk to an in-page leaf
        slot = max(int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0)
        node = page.nodes[int(node.ptrs[slot])]
    slot = max(int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0)
    return int(node.ptrs[slot])


def _search_leaf_page(page, key: int) -> Optional[int]:
    """Find ``key``'s tuple id inside one leaf page (atomic)."""
    node = page.root
    while node.kind == 0:
        slot = max(int(np.searchsorted(node.keys[: node.count], key, side="right")) - 1, 0)
        node = page.nodes[int(node.ptrs[slot])]
    slot = int(np.searchsorted(node.keys[: node.count], key, side="left"))
    if slot < node.count and int(node.keys[slot]) == key:
        return int(node.ptrs[slot])
    return None


def _scan_leaf_page(page, start_key: int, end_key: int) -> tuple[int, int, bool]:
    """Count entries of one leaf page in [start, end] (atomic).

    Returns ``(count, next_pid, done)`` where ``done`` means some entry past
    ``end_key`` lives in this page, so the walk can stop.
    """
    count = 0
    done = False
    for node in page.leaf_nodes_in_order():
        if node.count == 0:
            continue
        lo = int(np.searchsorted(node.keys[: node.count], start_key, side="left"))
        hi = int(np.searchsorted(node.keys[: node.count], end_key, side="right"))
        count += hi - lo
        if hi < node.count:
            done = True
    return count, int(page.next_page), done


class ConcurrentTreeOps:
    """Concurrent lookup/scan/insert generators over one serving substrate.

    ``mode`` is ``"page"`` (optimistic reads + latch crabbing writes),
    ``"coarse"`` (one global latch around whole operations — the benchmark
    baseline), or ``"broken"`` (validation off, inserts applied into the
    traversal's stale leaf — the deliberately unsound mode whose histories
    the linearizability checker must reject).

    The tree must be a :class:`~repro.core.disk_first.DiskFirstFpTree` (the
    serving layer's default index); the in-page routing helpers mirror its
    untraced ``page_path`` logic.
    """

    MODES = ("page", "coarse", "broken")

    def __init__(
        self,
        db,
        latches: PageLatchManager,
        mode: str = "page",
        page_process_us: float = 150.0,
        retry_budget: int = 8,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {retry_budget}")
        self.db = db
        self.latches = latches
        self.mode = mode
        self.page_process_us = page_process_us
        self.retry_budget = retry_budget
        # Traversal outcome counters (live-path only; see PageLatchManager).
        self.read_restarts = 0
        self.write_restarts = 0
        self.pessimistic_reads = 0
        self.pessimistic_writes = 0
        self.scan_restarts = 0

    @property
    def tree(self):
        # Resolved per call: a crash-recovery swaps ``db.index`` wholesale.
        return self.db.index

    def counters(self) -> dict[str, int]:
        return {
            "read_restarts": self.read_restarts,
            "write_restarts": self.write_restarts,
            "scan_restarts": self.scan_restarts,
            "pessimistic_reads": self.pessimistic_reads,
            "pessimistic_writes": self.pessimistic_writes,
        }

    # -- shared descent machinery ------------------------------------------

    def _optimistic_descend(self, reader, key: int, owner):
        """Hand-over-hand versioned descent to the leaf page for ``key``.

        Returns ``(ok, path)`` with ``path`` a list of ``(pid, version)``
        from root to leaf.  On success the leaf has been demand-paged,
        charged, and its version validated *after* the paging waits, so the
        caller may read its content atomically right away.  ``ok=False``
        means some validation failed mid-descent and the caller should
        restart (in ``"broken"`` mode validation is skipped, so descents
        never fail — that is the point).
        """
        tree = self.tree
        latches = self.latches
        env = reader.env
        validating = self.mode != "broken"
        root = tree.root_pid
        version = yield from latches.read_begin(root, owner)
        if validating and root != tree.root_pid:
            # The root split while we waited on its latch: restart on the new one.
            return False, []
        path = [(root, version)]
        pid = root
        while True:
            yield from reader.demand(pid)
            with reader.pool.pinned(pid, owner=owner):
                yield env.timeout(self.page_process_us)
            # The waits above are the race window: nothing read from this
            # page can be trusted until its version still matches.
            page = tree.store.page(pid)
            if page.level == 0:
                if validating and not latches.validate(pid, path[-1][1]):
                    return False, path
                return True, path
            child = _route_in_page(page, key)
            child_version = yield from latches.read_begin(child, owner)
            if validating and not latches.validate(pid, path[-1][1]):
                return False, path
            path.append((child, child_version))
            pid = child

    def _pessimistic_descend(self, reader, key: int, owner, crabbing_for_insert: bool):
        """Write-latched descent (latch coupling / crabbing); returns state.

        Returns ``(leaf_pid, held, path)``: the leaf page id, the list of
        latches still held (the unsafe suffix for inserts; just the leaf
        for reads), and the full pid path for split propagation.  Latches
        are acquired strictly root-to-leaf, which is what keeps writers
        and pessimistic readers deadlock-free against each other.
        """
        tree = self.tree
        latches = self.latches
        env = reader.env
        while True:
            root = tree.root_pid
            yield from latches.write_acquire(root, owner)
            if root == tree.root_pid:
                break
            # A root split slipped in before our latch landed: chase it.
            latches.write_release(root, owner)
        held = [root]
        path = [root]
        pid = root
        try:
            while True:
                yield from reader.demand(pid)
                with reader.pool.pinned(pid, owner=owner):
                    yield env.timeout(self.page_process_us)
                page = tree.store.page(pid)
                if page.level == 0:
                    return pid, held, path
                child = _route_in_page(page, key)
                yield from latches.write_acquire(child, owner)
                path.append(child)
                if not crabbing_for_insert or self._page_safe(tree.store.page(child)):
                    # The child cannot split (or we only need read
                    # isolation): ancestors are released, crab-style.
                    for ancestor in held:
                        latches.write_release(ancestor, owner)
                    held = [child]
                else:
                    held.append(child)
                pid = child
        except BaseException:
            for ancestor in reversed(held):
                latches.write_release(ancestor, owner)
            raise

    def _page_safe(self, page) -> bool:
        """True if one more entry cannot page-split this page.

        Mirrors ``DiskFirstFpTree._insert_entry``: below this threshold a
        full page reorganizes in place (touching only itself); at or above
        it, an insert may split — so a crabbing writer must keep the
        parent latched.
        """
        layout = self.tree.layout
        return page.total < layout.page_fanout - layout.max_leaf_nodes

    # -- lookup ------------------------------------------------------------

    def lookup(self, reader, key: int, owner=None):
        """Process generator: concurrent point lookup; returns the row."""
        if self.mode == "coarse":
            yield from self.latches.write_acquire(GLOBAL_LATCH, owner)
            try:
                row = yield from self.db.serve_lookup(
                    reader, key, page_process_us=self.page_process_us, owner=owner
                )
            finally:
                self.latches.write_release(GLOBAL_LATCH, owner)
            return row
        env = reader.env
        tree = self.tree
        restarts = 0
        tid = None
        while True:
            ok, path = yield from self._optimistic_descend(reader, key, owner)
            if ok:
                leaf_pid = path[-1][0]
                tid = _search_leaf_page(tree.store.page(leaf_pid), key)
                break
            restarts += 1
            self.read_restarts += 1
            if restarts >= self.retry_budget:
                self.pessimistic_reads += 1
                leaf_pid, held, __ = yield from self._pessimistic_descend(
                    reader, key, owner, crabbing_for_insert=False
                )
                try:
                    tid = _search_leaf_page(tree.store.page(leaf_pid), key)
                finally:
                    for pid in reversed(held):
                        self.latches.write_release(pid, owner)
                break
        if tid is None:
            return None
        heap_pid, __ = self.db.table.tid_to_location(int(tid) - 1)
        yield from reader.demand(heap_pid)
        yield env.timeout(self.page_process_us)
        return self.db.table.fetch(int(tid) - 1)

    # -- scan --------------------------------------------------------------

    def scan(
        self,
        reader,
        start_key: int,
        end_key: int,
        owner=None,
        max_pages: Optional[int] = None,
    ):
        """Process generator: inclusive range count; returns (count, truncated).

        The optimistic walk re-validates every visited leaf at the end, so
        an untruncated count is consistent as of one instant (its
        linearization point).  With duplicate keys spanning a page boundary
        a restarted walk could double-count; the serving workload's keys
        are unique, and the sequential ``range_scan`` keeps full duplicate
        semantics for everything else.
        """
        if self.mode == "coarse":
            yield from self.latches.write_acquire(GLOBAL_LATCH, owner)
            try:
                count = yield from self.db.serve_scan(
                    reader, start_key, end_key,
                    page_process_us=self.page_process_us,
                    max_pages=max_pages, owner=owner,
                )
            finally:
                self.latches.write_release(GLOBAL_LATCH, owner)
            return count, max_pages is not None
        restarts = 0
        while True:
            result = yield from self._optimistic_scan(
                reader, start_key, end_key, owner, max_pages
            )
            if result is not None:
                return result
            restarts += 1
            self.scan_restarts += 1
            if restarts >= self.retry_budget:
                self.pessimistic_reads += 1
                return (
                    yield from self._pessimistic_scan(
                        reader, start_key, end_key, owner, max_pages
                    )
                )

    def _optimistic_scan(self, reader, start_key, end_key, owner, max_pages):
        tree = self.tree
        latches = self.latches
        env = reader.env
        validating = self.mode != "broken"
        ok, path = yield from self._optimistic_descend(reader, start_key, owner)
        if not ok:
            return None
        pid, version = path[-1]
        visited: list[tuple[int, int]] = []
        count = 0
        truncated = False
        while True:
            count_here, next_pid, done = _scan_leaf_page(
                tree.store.page(pid), start_key, end_key
            )
            if validating and not latches.validate(pid, version):
                return None
            visited.append((pid, version))
            count += count_here
            if done or next_pid == INVALID_PAGE_ID:
                break
            if max_pages is not None and len(visited) >= max_pages:
                truncated = True
                break
            next_version = yield from latches.read_begin(next_pid, owner)
            if validating and not latches.validate(pid, version):
                # The sibling pointer we just followed is no longer current.
                return None
            yield from reader.demand(next_pid)
            with reader.pool.pinned(next_pid, owner=owner):
                yield env.timeout(self.page_process_us)
            pid, version = next_pid, next_version
        if validating and not truncated:
            # End-to-end revalidation: all pages unchanged since first read
            # means the union snapshot is consistent *now* — the scan
            # linearizes at this instant.
            for seen_pid, seen_version in visited:
                if not latches.validate(seen_pid, seen_version):
                    return None
        return count, truncated

    def _pessimistic_scan(self, reader, start_key, end_key, owner, max_pages):
        """Latch the whole covered leaf chain (a range lock), then count."""
        tree = self.tree
        latches = self.latches
        env = reader.env
        leaf_pid, held, __ = yield from self._pessimistic_descend(
            reader, start_key, owner, crabbing_for_insert=False
        )
        count = 0
        truncated = False
        try:
            pid = leaf_pid
            while True:
                count_here, next_pid, done = _scan_leaf_page(
                    tree.store.page(pid), start_key, end_key
                )
                count += count_here
                if done or next_pid == INVALID_PAGE_ID:
                    break
                if max_pages is not None and len(held) >= max_pages:
                    truncated = True
                    break
                # Left-to-right leaf coupling: writers latch leaves before
                # splitting them, so holding the visited chain freezes the
                # counted range until release.
                yield from latches.write_acquire(next_pid, owner)
                held.append(next_pid)
                yield from reader.demand(next_pid)
                with reader.pool.pinned(next_pid, owner=owner):
                    yield env.timeout(self.page_process_us)
                pid = next_pid
        finally:
            for pid in reversed(held):
                latches.write_release(pid, owner)
        return count, truncated

    # -- insert ------------------------------------------------------------

    def insert(self, reader, disks, key: int, k2: int = 0, k3: int = 0, owner=None):
        """Process generator: concurrent insert; returns the new row id."""
        if self.mode == "coarse":
            yield from self.latches.write_acquire(GLOBAL_LATCH, owner)
            try:
                row = yield from self.db.serve_insert(
                    reader, disks, key, k2, k3,
                    page_process_us=self.page_process_us, owner=owner,
                )
            finally:
                self.latches.write_release(GLOBAL_LATCH, owner)
            return row
        if self.mode == "broken":
            return (yield from self._broken_insert(reader, disks, key, k2, k3, owner))
        restarts = 0
        while True:
            applied, row = yield from self._optimistic_insert(
                reader, disks, key, k2, k3, owner
            )
            if applied:
                return row
            if applied is None:
                # Split-unsafe leaf: retrying optimistically cannot help.
                break
            restarts += 1
            self.write_restarts += 1
            if restarts >= self.retry_budget:
                break
        self.pessimistic_writes += 1
        return (yield from self._crabbing_insert(reader, disks, key, k2, k3, owner))

    def _apply_insert(self, leaf_pid: int, key: int, k2: int, k3: int, path_above, held):
        """Atomically apply the mutation into the traversal's leaf.

        Unlike ``MiniDbms.insert`` this does *not* re-descend: the leaf the
        (validated, latched) traversal located is mutated directly, which
        is exactly what makes the latches load-bearing — with them gone
        (``"broken"``), a split between traversal and apply puts the entry
        in the wrong page.
        """
        tree = self.tree
        db = self.db
        page, base = tree._page(leaf_pid)
        with self.latches.structural(held=held):
            with db._txn():
                row = db.table.insert_row(key, k2, k3)
                tree._insert_entry(leaf_pid, page, base, key, row + 1, list(path_above))
                tree._entries += 1
        return row

    def _finish_write(self, reader, disks, leaf_pid: int):
        """Charge WAL commit latency and the leaf's write-through."""
        env = reader.env
        wal = self.db.wal
        if wal is not None and wal.last_commit_write_us > 0:
            yield env.timeout(wal.last_commit_write_us)
        yield disks.write_page(leaf_pid)

    def _optimistic_insert(self, reader, disks, key, k2, k3, owner):
        """Fast path: latch-free descent, write-latch + validate the leaf."""
        tree = self.tree
        latches = self.latches
        ok, path = yield from self._optimistic_descend(reader, key, owner)
        if not ok:
            return False, None
        leaf_pid, leaf_version = path[-1]
        pre = yield from latches.write_acquire(leaf_pid, owner)
        try:
            if pre != leaf_version:
                # Someone changed the leaf between our validation and the
                # latch landing: the routed position may be stale.
                return False, None
            if not self._page_safe(tree.store.page(leaf_pid)):
                # A split would touch unlatched ancestors: escalate to
                # crabbing (which latches the unsafe suffix top-down).
                return None, None
            row = self._apply_insert(
                leaf_pid, key, k2, k3,
                path_above=[pid for pid, __ in path[:-1]], held=(leaf_pid,),
            )
        finally:
            latches.write_release(leaf_pid, owner)
        yield from self._finish_write(reader, disks, leaf_pid)
        return True, row

    def _crabbing_insert(self, reader, disks, key, k2, k3, owner):
        """Slow path: root-to-leaf write latching with safe-child release."""
        leaf_pid, held, path = yield from self._pessimistic_descend(
            reader, key, owner, crabbing_for_insert=True
        )
        try:
            row = self._apply_insert(
                leaf_pid, key, k2, k3, path_above=path[:-1], held=held
            )
        finally:
            for pid in reversed(held):
                self.latches.write_release(pid, owner)
        yield from self._finish_write(reader, disks, leaf_pid)
        return row

    def _broken_insert(self, reader, disks, key, k2, k3, owner):
        """No latches, no validation: apply into the stale traversal leaf.

        This is the seeded known-bad path: when a concurrent split moves
        the leaf's key range mid-descent, the entry lands in a page proper
        descents no longer route to — an acknowledged-then-lost update the
        linearizability checker must catch.
        """
        ok, path = yield from self._optimistic_descend(reader, key, owner)
        assert ok, "broken mode never validates, so descents cannot fail"
        leaf_pid = path[-1][0]
        tree = self.tree
        db = self.db
        page, base = tree._page(leaf_pid)
        with db._txn():
            row = db.table.insert_row(key, k2, k3)
            tree._insert_entry(
                leaf_pid, page, base, key, row + 1, [pid for pid, __ in path[:-1]]
            )
            tree._entries += 1
        yield from self._finish_write(reader, disks, leaf_pid)
        return row
