"""Index introspection: occupancy and layout statistics.

``inspect_tree`` walks any of the four disk-resident structures and reports
what a DBA would ask of a real index: page counts per level, leaf fill
factors, storage efficiency, and — for fpB+-Trees — how well the
cache-granularity machinery is utilized (in-page nodes, line slots,
overflow pages).  Used by the examples and handy when debugging space
results like the paper's Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .base import Index

__all__ = ["TreeReport", "inspect_tree"]


@dataclass
class TreeReport:
    """Occupancy summary of one index."""

    kind: str
    num_entries: int
    num_pages: int
    height: int
    page_size: int
    leaf_pages: int
    avg_leaf_fill: float  # fraction of leaf entry slots used
    min_leaf_fill: float
    max_leaf_fill: float
    bytes_per_entry: float  # total index bytes / entries
    # fpB+-Tree specifics (zero/None for sorted-array pages).
    inpage_nodes: int = 0
    avg_node_fill: float = 0.0
    line_utilization: Optional[float] = None  # disk-first: used lines / lines
    overflow_pages: int = 0
    notes: list = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"{self.kind}: {self.num_entries:,} entries in {self.num_pages} pages "
            f"({self.page_size // 1024}KB), height {self.height}",
            f"  leaf pages {self.leaf_pages}, fill avg {self.avg_leaf_fill:.0%} "
            f"(min {self.min_leaf_fill:.0%}, max {self.max_leaf_fill:.0%})",
            f"  {self.bytes_per_entry:.1f} bytes/entry",
        ]
        if self.inpage_nodes:
            lines.append(
                f"  {self.inpage_nodes} cache-optimized nodes, node fill {self.avg_node_fill:.0%}"
            )
        if self.line_utilization is not None:
            lines.append(f"  line-slot utilization {self.line_utilization:.0%}")
        if self.overflow_pages:
            lines.append(f"  {self.overflow_pages} overflow pages (leaf parents)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def inspect_tree(tree: Index) -> TreeReport:
    """Produce a :class:`TreeReport` for any supported index."""
    from ..baselines.disk_btree import DiskBPlusTree
    from ..core.cache_first import CacheFirstFpTree
    from ..core.disk_first import DiskFirstFpTree

    if isinstance(tree, DiskFirstFpTree):
        return _inspect_disk_first(tree)
    if isinstance(tree, CacheFirstFpTree):
        return _inspect_cache_first(tree)
    if isinstance(tree, DiskBPlusTree):  # covers micro-indexing
        return _inspect_disk_like(tree)
    raise TypeError(f"cannot inspect index type {type(tree).__name__}")


def _fill_stats(fills: list[float]) -> tuple[float, float, float]:
    if not fills:
        return 0.0, 0.0, 0.0
    return float(np.mean(fills)), float(min(fills)), float(max(fills))


def _inspect_disk_like(tree) -> TreeReport:
    leaf_pids = tree.leaf_page_ids()
    fills = [tree.store.page(pid).count / tree.layout.capacity for pid in leaf_pids]
    avg, low, high = _fill_stats(fills)
    total_bytes = tree.num_pages * tree.env.page_size
    return TreeReport(
        kind=tree.name,
        num_entries=tree.num_entries,
        num_pages=tree.num_pages,
        height=tree.height,
        page_size=tree.env.page_size,
        leaf_pages=len(leaf_pids),
        avg_leaf_fill=avg,
        min_leaf_fill=low,
        max_leaf_fill=high,
        bytes_per_entry=total_bytes / max(1, tree.num_entries),
    )


def _inspect_disk_first(tree) -> TreeReport:
    leaf_pids = tree.leaf_page_ids()
    fills = [tree.store.page(pid).total / tree.layout.page_fanout for pid in leaf_pids]
    avg, low, high = _fill_stats(fills)
    node_count = 0
    node_fill_total = 0.0
    used_lines = 0
    total_lines = 0
    for pid in tree.store.page_ids():
        page = tree.store.page(pid)
        total_lines += tree.layout.total_lines - 1  # header line excluded
        used_lines += (tree.layout.total_lines - 1) - page.alloc.free_lines
        for node in page.nodes.values():
            node_count += 1
            node_fill_total += node.count / node.capacity
    total_bytes = tree.num_pages * tree.env.page_size
    return TreeReport(
        kind=tree.name,
        num_entries=tree.num_entries,
        num_pages=tree.num_pages,
        height=tree.height,
        page_size=tree.env.page_size,
        leaf_pages=len(leaf_pids),
        avg_leaf_fill=avg,
        min_leaf_fill=low,
        max_leaf_fill=high,
        bytes_per_entry=total_bytes / max(1, tree.num_entries),
        inpage_nodes=node_count,
        avg_node_fill=node_fill_total / max(1, node_count),
        line_utilization=used_lines / max(1, total_lines),
    )


def _inspect_cache_first(tree) -> TreeReport:
    leaf_pids = tree.leaf_page_ids()
    page_capacity = tree.slots_per_page * tree.leaf_capacity
    fills = []
    for pid in leaf_pids:
        page = tree.store.page(pid)
        entries = sum(node.count for node in page.nodes())
        fills.append(entries / page_capacity)
    avg, low, high = _fill_stats(fills)
    node_count = 0
    node_fill_total = 0.0
    for pid in tree.store.page_ids():
        for node in tree.store.page(pid).nodes():
            capacity = tree.leaf_capacity if node.is_leaf else tree.nonleaf_capacity
            node_count += 1
            node_fill_total += node.count / capacity
    total_bytes = tree.num_pages * tree.env.page_size
    return TreeReport(
        kind=tree.name,
        num_entries=tree.num_entries,
        num_pages=tree.num_pages,
        height=tree.height,
        page_size=tree.env.page_size,
        leaf_pages=len(leaf_pids),
        avg_leaf_fill=avg,
        min_leaf_fill=low,
        max_leaf_fill=high,
        bytes_per_entry=total_bytes / max(1, tree.num_entries),
        inpage_nodes=node_count,
        avg_node_fill=node_fill_total / max(1, node_count),
        overflow_pages=tree.overflow_page_count(),
    )
