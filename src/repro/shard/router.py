"""Key-range-sharded serving: a router over N independent shard servers.

:class:`ShardRouter` stands in front of N :class:`~repro.serve.DbmsServer`
instances, each owning its own slice of the key universe (a
``key_range``-sliced :class:`~repro.dbms.MiniDbms`), its own buffer pool,
disk array, page reader and admission controller — but all bound to ONE
shared DES :class:`~repro.des.Environment`, so fleet-wide execution stays
a deterministic function of the seed and scatter–gather fragments
genuinely interleave on one clock.

Routing semantics:

* **point lookups** and keyed inserts go to the shard owning the key
  (``plan.shard_for_key``), after ``route_cpu_us`` of router CPU;
* **keyless inserts** round-robin across shards; each shard's
  :class:`~repro.workloads.ops.RangeFreshKeys` allocator mints a key
  provably inside that shard's range;
* **range scans** split into per-shard fragments
  (``plan.fragments``).  A single-fragment scan takes the fast path —
  routed like a lookup, no scatter state.  A cross-shard scan scatters:
  fragments dispatch in shard order, ``fan_out_us`` apart, each with the
  *residual* client deadline (total deadline minus time already burned on
  routing and earlier dispatches), and the gather merges per-fragment row
  counts in shard order.

The router runs the same client/worker accounting protocol as a single
server — its own :class:`~repro.serve.ServerStats` satisfies the
conservation identity ``issued == completed + shed + failed + in_flight``
at every instant — and every shard's stats plane does too, so the
fleet-wide aggregate (:meth:`ShardRouter.fleet_stats`, a
:meth:`~repro.serve.ServerStats.merge` across router and shards) is
conserved by construction.  :meth:`check_conservation` asserts all of it
at once, mid-run or at drain.

Deadlines are owned by the router: shard servers are always built with
``deadline_us=None``, so a fragment abandoned by the router (residual
deadline expired) still runs to completion on its shard and lands in the
shard's ``completed`` — exactly the client-abandonment semantics of the
single-server ``timeout`` outcome, lifted one level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dbms.engine import MiniDbms
from ..des import Environment, WaitTimeout, with_timeout
from ..obs import MetricsRegistry
from ..serve.server import DbmsServer, ServedRequest
from ..serve.stats import ServerStats
from ..workloads.ops import RangeFreshKeys
from .planner import ShardPlan

__all__ = ["ShardRouter", "build_fleet"]


class ShardRouter:
    """Routes client operations across key-range shards on one DES clock."""

    def __init__(
        self,
        shards,
        plan: ShardPlan,
        env: Environment,
        deadline_us: Optional[float] = None,
        route_cpu_us: float = 20.0,
        fan_out_us: float = 25.0,
    ) -> None:
        if len(shards) != plan.shard_count:
            raise ValueError(
                f"plan places {plan.shard_count} shards, got {len(shards)} servers"
            )
        for i, shard in enumerate(shards):
            if shard.env is not env:
                raise ValueError(f"shard {i} is not bound to the fleet environment")
            if shard.deadline_us is not None:
                raise ValueError(
                    f"shard {i} has its own deadline; deadlines are router-owned"
                )
        if route_cpu_us < 0 or fan_out_us < 0:
            raise ValueError("route_cpu_us and fan_out_us must be >= 0")
        self.shards = list(shards)
        self.plan = plan
        self.env = env
        self.deadline_us = deadline_us
        self.route_cpu_us = route_cpu_us
        self.fan_out_us = fan_out_us
        #: Router-plane accounting, independent of every shard's.
        self.stats = ServerStats(MetricsRegistry())
        metrics = self.stats.metrics
        self._scan_fragments = metrics.counter("router.scan_fragments")
        self._single_shard_scans = metrics.counter("router.single_shard_scans")
        self._cross_shard_scans = metrics.counter("router.cross_shard_scans")
        self._fragment_timeouts = metrics.counter("router.fragment_timeouts")
        self._fragment_failures = metrics.counter("router.fragment_failures")
        self._rr_inserts = metrics.counter("router.rr_inserts")
        self._next_rid = 0
        self._rr = 0
        self.requests: list[ServedRequest] = []
        #: The full key universe, reassembled from the shards' slices — what
        #: fleet-level load generators draw from.
        self.workload_keys = np.concatenate(
            [shard.db.stored_keys for shard in self.shards]
        )

    # -- counters (read by benches and tests) --------------------------------

    @property
    def scan_fragments(self) -> int:
        return int(self._scan_fragments.value)

    @property
    def single_shard_scans(self) -> int:
        return int(self._single_shard_scans.value)

    @property
    def cross_shard_scans(self) -> int:
        return int(self._cross_shard_scans.value)

    @property
    def fragment_timeouts(self) -> int:
        return int(self._fragment_timeouts.value)

    @property
    def fragment_failures(self) -> int:
        return int(self._fragment_failures.value)

    @property
    def rr_inserts(self) -> int:
        return int(self._rr_inserts.value)

    # -- request construction / submission (the DbmsServer protocol) ---------

    def make_request(self, op: tuple, session: str = "client", priority: int = 0) -> ServedRequest:
        request = ServedRequest(rid=self._next_rid, session=session, op=op, priority=priority)
        self._next_rid += 1
        return request

    def submit(self, request: ServedRequest):
        """Issue a request; returns the client-side process event.

        Same contract as :meth:`~repro.serve.DbmsServer.submit`: the event
        fires when the *client* is done — completion, shed, failure, or
        router deadline expiry.  The router worker keeps running past a
        client timeout and lands the op in a terminal outcome, so the
        router's conservation identity holds at drain.
        """
        request.issued_at = self.env.now
        self.stats.issue()
        self.requests.append(request)
        return self.env.process(self._client(request))

    def _client(self, request: ServedRequest):
        worker = self.env.process(self._route(request))
        if self.deadline_us is None:
            yield worker
            return request
        try:
            yield with_timeout(
                self.env, worker, self.deadline_us, detail=f"routed request {request.rid}"
            )
        except WaitTimeout:
            request.timed_out = True
            if request.outcome == "pending":
                request.outcome = "timeout"
            self.stats.timeout()
        return request

    def _residual_deadline(self, request: ServedRequest) -> Optional[float]:
        """Client budget left right now (None when the router is undeadlined)."""
        if self.deadline_us is None:
            return None
        return max(0.0, self.deadline_us - (self.env.now - request.issued_at))

    def _route(self, request: ServedRequest):
        """Router worker: burn routing CPU, then dispatch by op kind."""
        yield self.env.timeout(self.route_cpu_us)
        kind = request.op[0]
        if kind == "lookup":
            target = self.plan.shard_for_key(request.op[1])
            yield from self._forward(request, target)
        elif kind == "insert":
            if request.op[1] is None:
                target = self._rr % len(self.shards)
                self._rr += 1
                self._rr_inserts.inc()
            else:
                target = self.plan.shard_for_key(request.op[1])
            yield from self._forward(request, target)
        elif kind == "scan":
            yield from self._scatter_gather(request)
        else:
            request.outcome = "failed"
            request.error = ValueError(f"unknown op kind {kind!r}")
            request.finished_at = self.env.now
            self.stats.fail(kind)
        return request

    def _forward(self, request: ServedRequest, target: int):
        """Single-shard path: forward the op, mirror the shard's outcome.

        The shard does its own full accounting (issue, admission, terminal
        outcome); the router waits for the shard-side *client* event —
        bounded by the residual deadline — and mirrors the outcome into
        its own plane.  An abandoned forward (residual expired) leaves the
        shard still working; the router op fails at the deadline and the
        shard op completes on its own clock.
        """
        shard = self.shards[target]
        sub = shard.make_request(request.op, session=f"{request.session}@r{request.rid}")
        done = shard.submit(sub)
        residual = self._residual_deadline(request)
        if residual is not None:
            try:
                yield with_timeout(
                    self.env, done, residual, detail=f"forward {request.rid} to shard {target}"
                )
            except WaitTimeout:
                self._fragment_timeouts.inc()
                request.outcome = "failed"
                request.error = WaitTimeout(
                    residual, f"shard {target} missed the residual deadline"
                )
                request.finished_at = self.env.now
                self.stats.fail(request.kind)
                return request
        else:
            yield done
        request.op = sub.op  # materialized insert keys propagate back
        request.finished_at = self.env.now
        if sub.outcome == "ok":
            request.rows = sub.rows
            request.outcome = "ok"
            self.stats.complete(request.kind, request.latency_us, request.rows)
        elif sub.outcome == "shed":
            request.outcome = "shed"
            request.error = sub.error
            self.stats.shed()
        else:
            request.outcome = "failed"
            request.error = sub.error
            self.stats.fail(request.kind)
        return request

    def _scatter_gather(self, request: ServedRequest):
        """Cross-shard scan: scatter per-shard fragments, gather in order."""
        start_key, end_key = request.op[1], request.op[2]
        fragments = self.plan.fragments(start_key, end_key)
        self._scan_fragments.inc(len(fragments))
        if len(fragments) == 1:
            # Fast path: the scan lives entirely on one shard — no scatter
            # state, no fan-out cost, just a routed forward.
            self._single_shard_scans.inc()
            yield from self._forward(request, fragments[0][0])
            return request
        self._cross_shard_scans.inc()
        results: dict[int, int] = {}
        outcomes: dict[int, str] = {}
        waiters = []
        for index, (shard_id, frag_start, frag_end) in enumerate(fragments):
            if index > 0:
                # Fan-out is sequential router work: each extra fragment
                # costs dispatch time, which (with route_cpu_us) is what
                # makes residual deadlines genuinely shrink per fragment.
                yield self.env.timeout(self.fan_out_us)
            shard = self.shards[shard_id]
            sub = shard.make_request(
                ("scan", frag_start, frag_end),
                session=f"{request.session}@r{request.rid}.f{index}",
            )
            done = shard.submit(sub)
            waiters.append(
                self.env.process(
                    self._gather_fragment(request, shard_id, sub, done, results, outcomes)
                )
            )
        yield self.env.all_of(waiters)
        # Ordered merge: per-fragment row counts combine in shard order, so
        # the merged result is deterministic and reassembles the key order
        # a single-shard scan would have produced.
        request.rows = sum(results[shard_id] for shard_id in sorted(results))
        request.finished_at = self.env.now
        failed = [shard_id for shard_id in sorted(outcomes) if outcomes[shard_id] != "ok"]
        if failed:
            # Partial failure: the merged count is incomplete, so the op
            # fails — but the fragments that did complete are still in
            # request.rows and in their shards' stats (nothing is lost or
            # double-counted in the conservation planes).
            request.outcome = "failed"
            request.error = WaitTimeout(
                self.deadline_us,
                f"scan fragments on shards {failed} did not complete in time",
            ) if any(outcomes[s] == "timeout" for s in failed) else RuntimeError(
                f"scan fragments on shards {failed} failed"
            )
            self.stats.fail("scan")
        else:
            request.outcome = "ok"
            self.stats.complete("scan", request.latency_us, request.rows)
        return request

    def _gather_fragment(self, request, shard_id, sub, done, results, outcomes):
        """Await one fragment under the residual deadline; record its fate."""
        residual = self._residual_deadline(request)
        try:
            if residual is not None:
                yield with_timeout(
                    self.env, done, residual,
                    detail=f"fragment of request {request.rid} on shard {shard_id}",
                )
            else:
                yield done
        except WaitTimeout:
            # Abandon the fragment: the shard still finishes it server-side
            # (and counts it completed); the gather records a timeout.
            self._fragment_timeouts.inc()
            outcomes[shard_id] = "timeout"
            results[shard_id] = 0
            return
        if sub.outcome == "ok":
            outcomes[shard_id] = "ok"
            results[shard_id] = sub.rows
        else:
            self._fragment_failures.inc()
            outcomes[shard_id] = sub.outcome
            results[shard_id] = 0

    # -- fleet-wide accounting ----------------------------------------------

    def fleet_stats(self) -> ServerStats:
        """Aggregate stats: router plane + every shard plane, merged."""
        return self.stats.merge(*[shard.stats for shard in self.shards])

    def check_conservation(self) -> None:
        """Assert every plane's conservation identity, and the merged one."""
        assert self.stats.conserved(), "router conservation identity violated"
        for i, shard in enumerate(self.shards):
            assert shard.stats.conserved(), f"shard {i} conservation identity violated"
        assert self.fleet_stats().conserved(), "fleet conservation identity violated"

    def run(self, until=None):
        """Advance the shared fleet clock (thin wrapper over ``env.run``)."""
        return self.env.run(until=until)


def build_fleet(
    num_rows: int,
    plan: ShardPlan,
    num_disks: int = 8,
    page_size: int = 4096,
    db_seed: int = 7,
    max_concurrency: int = 16,
    queue_depth: int = 48,
    pool_frames: int = 64,
    page_process_us: float = 150.0,
    admission_mode: str = "fifo",
    batch_window_us: float = 2_000.0,
    batch_max: int = 16,
    deadline_us: Optional[float] = None,
    route_cpu_us: float = 20.0,
    fan_out_us: float = 25.0,
    seed: int = 0,
) -> ShardRouter:
    """Stand up a complete fleet: one environment, N shards, one router.

    Every shard gets the *same* per-shard hardware (disk count, pool
    frames, admission tokens), so comparing fleets of different sizes
    measures scaling, not provisioning.  Each shard's database stores only
    its key-range slice (row payloads identical to the unsharded
    database's), bulkloads its index from it, and mints insert keys
    through a range-constrained allocator.
    """
    env = Environment()
    shards = []
    for shard_id, (lo, hi) in enumerate(plan.key_ranges()):
        db = MiniDbms(
            num_rows=num_rows,
            num_disks=num_disks,
            page_size=page_size,
            seed=db_seed,
            mature=False,
            key_range=(lo, hi),
        )
        fresh = RangeFreshKeys(db.stored_keys, lo, hi)
        shards.append(
            DbmsServer(
                db,
                max_concurrency=max_concurrency,
                queue_depth=queue_depth,
                pool_frames=pool_frames,
                page_process_us=page_process_us,
                deadline_us=None,
                admission_mode=admission_mode,
                batch_window_us=batch_window_us,
                batch_max=batch_max,
                seed=seed + shard_id,
                env=env,
                fresh_keys=fresh,
            )
        )
    return ShardRouter(
        shards,
        plan,
        env,
        deadline_us=deadline_us,
        route_cpu_us=route_cpu_us,
        fan_out_us=fan_out_us,
    )
