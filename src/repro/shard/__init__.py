"""Key-range-sharded serving: boundary planning, routing, scatter–gather.

The fleet layer scales the single-machine serving stack horizontally:

* :class:`~repro.shard.planner.BoundaryPlanner` places N-1 shard-boundary
  cuts over the sorted key universe — naively at equal key-value widths,
  or optimized from a sampled operation distribution to balance per-shard
  load while splitting as few range scans as possible.  Cuts are always
  snapped to stored key values so per-shard insert-key allocation stays
  provably in-range.
* :class:`~repro.shard.router.ShardRouter` routes point lookups and
  inserts to the owning shard, round-robins keyless inserts, and executes
  cross-shard range scans as scatter–gather with residual-deadline
  propagation and an ordered merge.  All N shards share one DES clock, so
  a fleet run is byte-identical given its seed.
* :func:`~repro.shard.router.build_fleet` wires the whole thing: N
  key-range-sliced databases, N servers on one environment, one router.

Fleet-wide accounting is the same conservation identity the single
server keeps — ``issued == completed + shed + failed + in_flight`` — now
summed across the router plane and every shard plane via
:meth:`~repro.serve.ServerStats.merge`.
"""

from .planner import BoundaryPlanner, ShardPlan
from .router import ShardRouter, build_fleet

__all__ = ["BoundaryPlanner", "ShardPlan", "ShardRouter", "build_fleet"]
