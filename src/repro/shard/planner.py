"""Shard-boundary placement over a key universe.

A fleet of N shards partitions the sorted key universe into N contiguous
key ranges by N-1 *cut values*.  Where the cuts go decides two costs at
once:

* **load balance** — the fraction of lookup and scan work each shard
  absorbs.  A shard owning a hot region saturates while its siblings
  idle, and fleet throughput degrades toward single-shard throughput.
* **scan fan-out** — every range scan that straddles a cut becomes a
  multi-shard scatter–gather: one fragment per shard touched, each paying
  routing, dispatch and merge overhead.

:class:`BoundaryPlanner` computes both placements the experiment
compares:

* :meth:`~BoundaryPlanner.equal_width` — the naive baseline: cuts at
  equal key-*value* widths, blind to the workload.
* :meth:`~BoundaryPlanner.optimized` — cuts at equal-*load* quantiles of
  a sampled operation distribution (:class:`~repro.workloads.ops.OpSample`),
  then, within a tolerance window around each quantile, slid to the
  position crossed by the fewest sampled scans.  Balance is the primary
  objective; fan-out is minimized subject to it.

Every cut is snapped to a stored key value.  This is load-bearing, not
cosmetic: the key universe keeps gaps >= 2 between stored keys, so with
cuts on stored keys each shard's
:class:`~repro.workloads.ops.RangeFreshKeys` allocator can mint
``stored_key + 1`` insert keys that provably stay inside the shard's
range — a routed insert can never land on the wrong shard.

Everything here is pure array math over a seeded sample: same inputs,
same plan, byte-identical fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workloads.ops import OpSample

__all__ = ["ShardPlan", "BoundaryPlanner"]


@dataclass(frozen=True)
class ShardPlan:
    """An immutable placement of shard boundaries over a key universe.

    ``cuts`` are the N-1 boundary key values, each a stored key; shard
    ``i`` owns the half-open key range ``[cuts[i-1], cuts[i])`` (the
    first shard is unbounded below, the last unbounded above).
    ``cut_positions`` are the same boundaries as ranks into the sorted
    key universe — shard ``i`` owns positions
    ``[cut_positions[i-1], cut_positions[i])``.
    """

    shard_count: int
    placement: str
    cuts: tuple = ()
    cut_positions: tuple = ()
    universe_size: int = 0
    _cuts_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _pos_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if len(self.cuts) != self.shard_count - 1:
            raise ValueError(
                f"{self.shard_count} shards need {self.shard_count - 1} cuts, "
                f"got {len(self.cuts)}"
            )
        if list(self.cuts) != sorted(set(self.cuts)):
            raise ValueError(f"cuts must be strictly increasing, got {self.cuts}")
        object.__setattr__(self, "_cuts_arr", np.asarray(self.cuts, dtype=np.int64))
        object.__setattr__(self, "_pos_arr", np.asarray(self.cut_positions, dtype=np.int64))

    # -- routing -----------------------------------------------------------

    def shard_for_key(self, key: int) -> int:
        """The shard owning ``key`` (a key equal to a cut goes *above* it)."""
        return int(np.searchsorted(self._cuts_arr, key, side="right"))

    def shard_for_position(self, position: int) -> int:
        """The shard owning universe rank ``position``."""
        return int(np.searchsorted(self._pos_arr, position, side="right"))

    def key_ranges(self) -> list:
        """Per-shard ``(lo, hi)`` half-open key ranges (``None`` = unbounded)."""
        edges = [None, *self.cuts, None]
        return [(edges[i], edges[i + 1]) for i in range(self.shard_count)]

    def fragments(self, start_key: int, end_key: int) -> list:
        """Split an inclusive key-range scan into per-shard fragments.

        Returns ``[(shard, frag_start, frag_end), ...]`` in shard order,
        covering ``[start_key, end_key]`` exactly.  With gaps >= 2 between
        stored keys, ``cut - 1`` never collides with a stored key of the
        shard above, so fragment ends stay inclusive and disjoint.
        """
        lo = self.shard_for_key(start_key)
        hi = self.shard_for_key(end_key)
        out = []
        for shard in range(lo, hi + 1):
            frag_start = start_key if shard == lo else int(self.cuts[shard - 1])
            frag_end = end_key if shard == hi else int(self.cuts[shard]) - 1
            out.append((shard, frag_start, frag_end))
        return out

    # -- plan evaluation (used by the planner and the tests) ----------------

    def predicted_load(self, sample: OpSample) -> np.ndarray:
        """Per-shard load weight of a sample (lookups + scan coverage)."""
        weights = BoundaryPlanner.position_load(sample, self.universe_size)
        edges = [0, *self.cut_positions, self.universe_size]
        return np.asarray(
            [weights[edges[i]:edges[i + 1]].sum() for i in range(self.shard_count)]
        )

    def predicted_fragments(self, sample: OpSample) -> int:
        """Total fragments the sample's scans would dispatch under this plan."""
        if sample.scan_starts.size == 0:
            return 0
        first = np.searchsorted(self._pos_arr, sample.scan_starts, side="right")
        last = np.searchsorted(
            self._pos_arr, sample.scan_starts + sample.scan_span - 1, side="right"
        )
        return int((last - first + 1).sum())


class BoundaryPlanner:
    """Places shard boundaries over a sorted key universe."""

    def __init__(self, keys: np.ndarray, shard_count: int) -> None:
        self.keys = np.asarray(keys, dtype=np.int64)
        if self.keys.size < shard_count:
            raise ValueError(
                f"{shard_count} shards need at least {shard_count} keys, "
                f"have {self.keys.size}"
            )
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = int(shard_count)

    # -- sample statistics --------------------------------------------------

    @staticmethod
    def position_load(sample: OpSample, universe_size: int) -> np.ndarray:
        """Load weight per universe position.

        A lookup weighs 1 at its position; a scan weighs 1 at every
        position it covers (computed with a prefix-sum difference trick,
        so cost is O(sample + universe), not O(sample * span)).
        """
        weights = np.zeros(universe_size, dtype=np.float64)
        np.add.at(weights, sample.lookups, 1.0)
        if sample.scan_starts.size:
            delta = np.zeros(universe_size + 1, dtype=np.float64)
            np.add.at(delta, sample.scan_starts, 1.0)
            ends = np.minimum(sample.scan_starts + sample.scan_span, universe_size)
            np.add.at(delta, ends, -1.0)
            weights += np.cumsum(delta[:universe_size])
        return weights

    @staticmethod
    def straddle_costs(sample: OpSample, universe_size: int) -> np.ndarray:
        """``s[i]`` = sampled scans a cut at position ``i`` would split.

        A scan starting at ``a`` covers ``[a, a + span - 1]``; a cut at
        ``i`` (boundary between positions ``i - 1`` and ``i``) splits it
        iff ``a <= i - 1`` and ``a + span - 1 >= i``, i.e.
        ``a in [i - span + 1, i - 1]`` — a sliding-window sum over the
        scan-start counts.
        """
        starts = np.zeros(universe_size, dtype=np.float64)
        if sample.scan_starts.size:
            np.add.at(starts, sample.scan_starts, 1.0)
        prefix = np.concatenate([[0.0], np.cumsum(starts)])  # prefix[i] = sum < i
        positions = np.arange(universe_size)
        window_lo = np.maximum(positions - sample.scan_span + 1, 0)
        return prefix[positions] - prefix[window_lo]

    # -- placements ---------------------------------------------------------

    def equal_width(self) -> ShardPlan:
        """Naive baseline: cuts at equal key-value widths, snapped to keys."""
        positions = []
        lo, hi = int(self.keys[0]), int(self.keys[-1])
        for j in range(1, self.shard_count):
            raw = lo + (hi - lo) * j / self.shard_count
            positions.append(int(np.searchsorted(self.keys, raw, side="left")))
        positions = self._separate(positions)
        return self._plan("equal_width", positions)

    def optimized(self, sample: OpSample, tolerance: float = 0.25) -> ShardPlan:
        """Equal-load quantile cuts, slid to minimize scan straddling.

        Each cut starts at the position where cumulative sampled load
        crosses ``j/N`` of the total; within the window of positions whose
        cumulative load stays within ``tolerance`` of a perfect quantile
        (as a fraction of one shard's target load), the cut slides to the
        position splitting the fewest sampled scans (ties to the lowest
        position).  Balance first, fan-out second.
        """
        if not 0.0 <= tolerance <= 1.0:
            raise ValueError(f"tolerance must be in [0, 1], got {tolerance}")
        n = self.keys.size
        weights = self.position_load(sample, n)
        if weights.sum() <= 0:
            # A sample with no lookups or scans carries no signal; fall
            # back to uniform position quantiles (still snapped to keys).
            weights = np.ones(n, dtype=np.float64)
        straddle = self.straddle_costs(sample, n)
        cumulative = np.cumsum(weights)
        target = cumulative[-1] / self.shard_count
        slack = tolerance * target
        positions = []
        previous = 0
        for j in range(1, self.shard_count):
            ideal = j * target
            window_lo = int(np.searchsorted(cumulative, ideal - slack, side="left")) + 1
            window_hi = int(np.searchsorted(cumulative, ideal + slack, side="right")) + 1
            # Every shard must keep at least one key.
            window_lo = max(window_lo, previous + 1)
            window_hi = min(window_hi, n - (self.shard_count - 1 - j))
            if window_lo >= window_hi:
                best = min(max(previous + 1, window_lo), n - (self.shard_count - j))
            else:
                # Fewest scans split first; among those, best balance; a
                # remaining tie goes to the lowest position (determinism).
                window = np.arange(window_lo, window_hi)
                cost = straddle[window]
                tied = window[cost == cost.min()]
                best = int(tied[np.argmin(np.abs(cumulative[tied - 1] - ideal))])
            positions.append(best)
            previous = best
        return self._plan("optimized", positions)

    # -- helpers -------------------------------------------------------------

    def _separate(self, positions: list) -> list:
        """Force cut positions strictly increasing inside ``(0, n)``."""
        n = self.keys.size
        out = []
        previous = 0
        for j, pos in enumerate(positions):
            pos = max(pos, previous + 1)
            pos = min(pos, n - (len(positions) - j))
            out.append(pos)
            previous = pos
        return out

    def _plan(self, placement: str, positions: list) -> ShardPlan:
        return ShardPlan(
            shard_count=self.shard_count,
            placement=placement,
            cuts=tuple(int(self.keys[p]) for p in positions),
            cut_positions=tuple(int(p) for p in positions),
            universe_size=int(self.keys.size),
        )
