"""Fractal Prefetching B+-Trees — a full reproduction of Chen, Gibbons,
Mowry & Valentin, *"Fractal Prefetching B+-Trees: Optimizing Both Cache and
Disk Performance"* (SIGMOD 2002).

Quick start::

    from repro import DiskFirstFpTree, TreeEnvironment, MemorySystem

    mem = MemorySystem()                      # Table 1 cache hierarchy
    tree = DiskFirstFpTree(TreeEnvironment(page_size=16 * 1024, mem=mem))
    tree.bulkload(range(0, 1_000_000, 2), range(500_000))
    tree.search(42)                           # simulated cycles accumulate
    print(mem.stats)

The package layers:

* :mod:`repro.des` — discrete-event simulation kernel;
* :mod:`repro.mem` — cache-hierarchy simulator with prefetch modelling;
* :mod:`repro.storage` — page store, CLOCK buffer pool, multi-disk array;
* :mod:`repro.btree` — shared index infrastructure;
* :mod:`repro.baselines` — disk-optimized B+-Tree, micro-indexing, pB+-Tree;
* :mod:`repro.core` — the fpB+-Trees (disk-first and cache-first) and the
  node-width optimizer (paper Table 2);
* :mod:`repro.dbms` — mini DBMS for the Figure 19 experiment;
* :mod:`repro.workloads` / :mod:`repro.bench` — experiment harness
  (``python -m repro.bench list``).
"""

from .baselines import DiskBPlusTree, MicroIndexTree, PrefetchingBPlusTree
from .btree import KEY4, KEY8, Index, IndexCorruptionError, KeySpec, ScanResult, TreeReport, inspect_tree
from .btree.context import TreeEnvironment
from .core import (
    CacheFirstFpTree,
    DiskFirstFpTree,
    ExternalJumpPointerArray,
    optimize_cache_first,
    optimize_disk_first,
    optimize_micro_index,
)
from .dbms import HeapTable, MiniDbms
from .image import ImageFormatError, dump_tree_bytes, load_tree, load_tree_bytes, save_tree
from .mem import CpuCostModel, MemoryConfig, MemorySystem
from .scrub import ScrubReport, scrub_tree
from .storage import BufferPool, DiskArray, PageStore, StorageConfig
from .wal import (
    CrashImage,
    RecoveryError,
    RecoveryStats,
    WalManager,
    WriteAheadLog,
    recover,
)
from .workloads import KeyWorkload, build_mature_tree

__version__ = "1.0.0"

__all__ = [
    "DiskBPlusTree",
    "MicroIndexTree",
    "PrefetchingBPlusTree",
    "Index",
    "IndexCorruptionError",
    "KeySpec",
    "KEY4",
    "KEY8",
    "ScanResult",
    "TreeReport",
    "inspect_tree",
    "TreeEnvironment",
    "CacheFirstFpTree",
    "DiskFirstFpTree",
    "ExternalJumpPointerArray",
    "optimize_cache_first",
    "optimize_disk_first",
    "optimize_micro_index",
    "HeapTable",
    "MiniDbms",
    "ImageFormatError",
    "dump_tree_bytes",
    "load_tree",
    "load_tree_bytes",
    "save_tree",
    "CpuCostModel",
    "MemoryConfig",
    "MemorySystem",
    "BufferPool",
    "DiskArray",
    "PageStore",
    "StorageConfig",
    "ScrubReport",
    "scrub_tree",
    "CrashImage",
    "RecoveryError",
    "RecoveryStats",
    "WalManager",
    "WriteAheadLog",
    "recover",
    "KeyWorkload",
    "build_mature_tree",
    "__version__",
]
