"""Unit and property tests for level-wise batched lookups (repro.btree.batch).

The batch executor must be *bit-equivalent* to the scalar paths it
amortizes: same routing, same leaf verdicts, same rows — only the I/O
schedule changes.  These tests pin that equivalence (enumerated and
property-based), the dedup/wave accounting, the epoch fallback that keeps
``concurrency="none"`` batches correct across concurrent splits, and the
prefetch-wave interaction with the brownout cap.

Regression note (verified to fail pre-fix): ``prefetch_wave`` originally
fast-pathed straight to ``_start_read`` and ignored
``max_outstanding_prefetches`` — a brownout-shrunken cap was silently
bypassed by batched traversals (a wave of 8 fresh pages issued all 8 reads
and ``prefetches_suppressed`` stayed 0).
``test_prefetch_wave_respects_outstanding_cap`` pins the fix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.batch import (
    LevelWiseLookupBatch,
    page_separator_arrays,
    route_batch_in_page,
    search_leaf_page_batch,
)
from repro.btree.cc import _route_in_page, _search_leaf_page
from repro.des import Environment
from repro.dbms.engine import MiniDbms
from repro.serve.server import DbmsServer
from repro.storage import AsyncPageReader, BufferPool, DiskArray, StorageConfig


def make_db(num_rows=400, seed=7, page_size=512, num_disks=2) -> MiniDbms:
    return MiniDbms(
        num_rows=num_rows, num_disks=num_disks, page_size=page_size,
        seed=seed, mature=False,
    )


def make_substrate(db: MiniDbms, frames: int = 48, seed: int = 0):
    env = Environment()
    config = StorageConfig(
        page_size=db.page_size, num_disks=db.num_disks,
        buffer_pool_pages=frames, disk=db.disk_params,
    )
    disks = DiskArray(env, config)
    pool = BufferPool(config, db.store)
    reader = AsyncPageReader(env, disks, pool, seed=seed)
    return env, reader, disks


def run_process(env, gen):
    return env.run(until=env.process(gen))


def walk_pages(tree):
    """Yield every index page, root first (BFS via in-page child pointers)."""
    frontier = [tree.root_pid]
    while frontier:
        next_frontier = []
        for pid in frontier:
            page = tree.store.page(pid)
            yield page
            if page.level > 0:
                __, ptrs = page_separator_arrays(page)
                next_frontier.extend(int(p) for p in ptrs)
        frontier = next_frontier


def probe_keys(db: MiniDbms) -> list[int]:
    """Existing keys plus below-range, above-range, and gap probes."""
    keys = [int(k) for k in db._workload.keys]
    probes = keys[:: max(1, len(keys) // 40)]
    probes += [-5, 0, keys[0] - 1, keys[-1] + 7]
    probes += [k + 1 for k in keys[:: max(1, len(keys) // 10)]]
    return probes


# -- vectorized in-page search equals the scalar walk -------------------------


def test_vectorized_routing_matches_scalar_walk():
    db = make_db()
    probes = np.asarray(sorted(probe_keys(db)), dtype=np.int64)
    checked_interior = checked_leaf = 0
    for page in walk_pages(db.index):
        if page.level > 0:
            got = route_batch_in_page(page, probes)
            want = [_route_in_page(page, int(k)) for k in probes]
            assert got.tolist() == want, f"routing mismatch on page {page}"
            checked_interior += 1
        else:
            got = search_leaf_page_batch(page, probes)
            want = [(_search_leaf_page(page, int(k)) or 0) for k in probes]
            assert got.tolist() == want
            checked_leaf += 1
    assert checked_interior >= 1 and checked_leaf >= 2


_PROP_DB = make_db(num_rows=300, seed=3)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-(10**6), max_value=10**6), min_size=1, max_size=32))
def test_vectorized_routing_property(keys):
    """Arbitrary probe batches (negatives included) route and search
    identically to the scalar helpers on every page of a real tree."""
    probes = np.asarray(sorted(keys), dtype=np.int64)
    for page in walk_pages(_PROP_DB.index):
        if page.level > 0:
            got = route_batch_in_page(page, probes)
            want = [_route_in_page(page, int(k)) for k in probes]
        else:
            got = search_leaf_page_batch(page, probes)
            want = [(_search_leaf_page(page, int(k)) or 0) for k in probes]
        assert got.tolist() == want


# -- batch execution equals individual lookups --------------------------------


def batch_keys(db: MiniDbms, stride: int = 9) -> list[int]:
    keys = [int(k) for k in db._workload.keys]
    picked = keys[::stride]
    picked += [keys[0] - 3, keys[-1] + 11, keys[3] + 1]  # guaranteed misses
    return picked


def test_batch_results_match_individual_lookups():
    db = make_db()
    env, reader, __ = make_substrate(db)
    keys = batch_keys(db)
    expected = [db.lookup(k) for k in keys]
    fired: list[tuple[int, object]] = []
    batch = LevelWiseLookupBatch(db, keys)
    rows = run_process(env, batch.run(reader, on_result=lambda i, row: fired.append((i, row))))
    assert rows == expected
    # on_result fired exactly once per key, with that key's row.
    assert sorted(i for i, __ in fired) == list(range(len(keys)))
    assert {i: row for i, row in fired} == {i: rows[i] for i in range(len(keys))}


def test_batch_dedups_shared_pages():
    db = make_db()
    env, reader, __ = make_substrate(db)
    keys = batch_keys(db)
    levels = {}  # pid -> key indices is rebuilt per level; count distinct pages
    expected_pages = set()
    for k in keys:
        expected_pages.update(db.index.page_path(k))
    for k in keys:
        tid = db.index.search(k)
        if tid is not None:
            heap_pid, __slot = db.table.tid_to_location(int(tid) - 1)
            expected_pages.add(heap_pid)
    del levels
    batch = LevelWiseLookupBatch(db, keys)
    run_process(env, batch.run(reader))
    height = db.index.height
    # Shared pages (the root above all) are visited once per batch, so the
    # page count is the number of *distinct* pages, far below B * path_len.
    assert batch.pages_visited == len(expected_pages)
    assert batch.pages_visited < len(keys) * (height + 1)
    # Each tree level and the heap went out as prefetch waves.
    assert reader.prefetch_waves >= 2
    assert reader.prefetch_wave_pages >= reader.prefetch_waves


@pytest.mark.parametrize("mode", ["page", "coarse"])
def test_latched_batch_modes_match_individual_lookups(mode):
    db = make_db()
    server = DbmsServer(
        db, max_concurrency=8, queue_depth=64, pool_frames=48,
        page_process_us=50.0, seed=5, concurrency=mode,
    )
    keys = batch_keys(db)
    expected = [db.lookup(k) for k in keys]
    rows = server.env.run(
        until=server.env.process(
            db.serve_lookup_batch(server.reader, keys, owner="t", cc=server.cc_ops)
        )
    )
    assert rows == expected


def test_batch_is_deterministic_across_runs():
    db = make_db()
    keys = batch_keys(db)
    snaps = []
    for __ in range(2):
        env, reader, __disks = make_substrate(db)
        batch = LevelWiseLookupBatch(db, keys)
        rows = run_process(env, batch.run(reader))
        snaps.append(
            (
                rows, env.now, batch.pages_visited,
                int(reader.demand_reads), int(reader.prefetches),
                int(reader.prefetch_waves), int(reader.prefetch_wave_pages),
            )
        )
    assert snaps[0] == snaps[1]


# -- epoch fallback: splits landing between a batch's yields ------------------


def gap_keys_in_range(db: MiniDbms, lo: int, hi: int) -> list[int]:
    existing = set(int(k) for k in db._workload.keys)
    return [k for k in range(lo + 1, hi) if k not in existing]


def test_epoch_fallback_keeps_batch_correct_across_split():
    """A split landing between the batch's yields moves keys off the page
    the level-wise routing chose; the epoch fallback must re-resolve them
    (``concurrency="none"`` semantics: same answers as per-key serve_lookup)."""
    db = make_db()
    env, reader, __ = make_substrate(db)
    firsts, pids = db.leaf_key_map()
    mid = len(pids) // 2
    lo, hi = int(firsts[mid]), int(firsts[mid + 1])
    keys = [int(k) for k in db._workload.keys if lo <= int(k) < hi]
    expected = [db.lookup(k) for k in keys]
    gaps = gap_keys_in_range(db, lo, hi)
    assert len(gaps) >= 4, "the probed leaf needs insertable gap keys"

    def inserter():
        # Fire mid-batch: the batch is deep in its (multi-ms) root demand
        # at t=500us, so the split lands between its yields.
        yield env.timeout(500.0)
        before = db.index.page_splits
        for gap in gaps:
            db.insert(gap)
            if db.index.page_splits > before:
                return

    env.process(inserter())
    batch = LevelWiseLookupBatch(db, keys)
    rows = run_process(env, batch.run(reader))
    assert db.index.page_splits > 0, "the inserter must have split the leaf"
    assert rows == expected
    assert batch.epoch_fallbacks > 0, "the moved epoch must have been noticed"


# -- prefetch waves vs the reader's degradation knobs -------------------------


def test_prefetch_wave_skips_resident_and_inflight_pages():
    db = make_db()
    env, reader, __ = make_substrate(db)
    leaves = db.index.leaf_page_ids()
    run_process(env, reader.demand(leaves[0]))  # resident
    reader.prefetch(leaves[1])  # in flight
    before = int(reader.prefetches)
    issued = reader.prefetch_wave(leaves[:4])
    assert issued == 2  # leaves[2], leaves[3]
    assert int(reader.prefetches) == before + 2
    assert int(reader.prefetch_waves) == 1
    assert int(reader.prefetch_wave_pages) == 2


def test_prefetch_wave_respects_prefetch_disabled():
    db = make_db()
    __, reader, __disks = make_substrate(db)
    reader.prefetch_enabled = False
    assert reader.prefetch_wave(db.index.leaf_page_ids()[:4]) == 0
    assert int(reader.prefetches) == 0
    assert int(reader.prefetch_waves) == 0


def test_prefetch_wave_respects_outstanding_cap():
    """Regression (satellite: brownout vs waves): a shrunken
    ``max_outstanding_prefetches`` must bound wave issue exactly as it
    bounds single prefetches, counting the rest as suppressed.

    Pre-fix, ``prefetch_wave`` bypassed the cap entirely: the wave below
    issued all 8 reads (outstanding == 8 > 2) and suppressed stayed 0.
    """
    db = make_db()
    __, reader, __disks = make_substrate(db)
    reader.max_outstanding_prefetches = 2
    wave = db.index.leaf_page_ids()[:8]
    issued = reader.prefetch_wave(wave)
    assert issued == 2
    assert reader.outstanding == 2
    assert int(reader.prefetches_suppressed) == len(wave) - issued == 6
    # The wave counters record what was actually issued, not the attempt.
    assert int(reader.prefetch_wave_pages) == issued
